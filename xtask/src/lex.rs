//! A small dependency-free Rust lexer for the lint engine.
//!
//! The old line-grep lints were "naive about `//` inside string
//! literals" by their own admission: `let s = "unsafe";` looked like an
//! unsafe site, and a doc comment quoting `Ordering::SeqCst` tripped
//! the ordering ban. This module fixes that class of false positive
//! once, for every lint, by splitting each source line into its **code
//! text** and its **comment text**:
//!
//! * [`LineView::code`] — the line with comments removed and the
//!   *contents* of string/char literals blanked to spaces (the
//!   delimiting quotes survive, so token boundaries do). Lints match
//!   their patterns here and can no longer fire inside literals or
//!   comments.
//! * [`LineView::comment`] — the concatenated text of every comment
//!   overlapping the line (line comments, doc comments, block-comment
//!   interiors). Justification markers (`SAFETY:`, `ordering:`,
//!   `xtask:allow(...)`, `hotpath:allow(...)`) are searched here, so a
//!   marker is *only* a marker when it is actually commentary.
//!
//! The lexer understands what a lint needs and nothing more: line
//! comments (`//`, `///`, `//!`), **nested** block comments
//! (`/* /* */ */`, `/** */`, `/*! */`), string literals with escapes,
//! raw strings (`r"…"`, `r#"…"#`, any hash depth), byte strings and
//! byte chars (`b"…"`, `br#"…"#`, `b'x'`), char literals, and the
//! char-vs-lifetime ambiguity (`'a'` is a literal, `&'a str` is not).
//! It does not build an AST — token-level truth is exactly the
//! altitude these lints live at.
//!
//! [`tokenize`] then lexes the blanked code into a flat [`Token`]
//! stream (identifier-ish words and single-char punctuation, each
//! tagged with its 1-based line) for the lints that need more than a
//! substring — the atomic release/acquire pairing pass walks this
//! stream to attribute an `Ordering::…` argument to the atomic field
//! it orders.

/// One source line, split into code text and comment text.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Concatenated text of every comment overlapping this line.
    pub comment: String,
}

/// Lexer state that can span line boundaries.
enum Mode {
    Code,
    /// Inside a block comment, at the given nesting depth.
    Block(u32),
    /// Inside a `"…"` string (escapes active).
    Str,
    /// Inside a raw string closed by `"` + this many `#`s.
    RawStr(u32),
}

/// Splits `src` into per-line code/comment views. See the module docs.
pub fn lex_lines(src: &str) -> Vec<LineView> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut cur = LineView::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    macro_rules! newline {
        () => {{
            out.push(std::mem::take(&mut cur));
        }};
    }

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            newline!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                match c {
                    b'/' if b.get(i + 1) == Some(&b'/') => {
                        // Line comment (incl. /// and //!): rest of line.
                        let end = line_end(b, i);
                        cur.comment.push_str(&src[i + 2..end]);
                        i = end;
                    }
                    b'/' if b.get(i + 1) == Some(&b'*') => {
                        mode = Mode::Block(1);
                        i += 2;
                    }
                    b'"' => {
                        cur.code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    b'r' | b'b' if !prev_is_ident(b, i) => {
                        if let Some((hashes, after)) = raw_string_start(b, i) {
                            // Keep the prefix chars as code, then blank.
                            cur.code.push_str(&src[i..after]);
                            mode = Mode::RawStr(hashes);
                            i = after;
                        } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
                            cur.code.push_str("b\"");
                            mode = Mode::Str;
                            i += 2;
                        } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                            // Byte char literal: b'x' / b'\n'.
                            let end = char_literal_end(b, i + 1);
                            cur.code.push_str("b''");
                            i = end;
                        } else {
                            cur.code.push(c as char);
                            i += 1;
                        }
                    }
                    b'\'' => {
                        if let Some(end) = char_literal(b, i) {
                            // Literal: keep the quotes, blank the body.
                            cur.code.push('\'');
                            blank_into(&mut cur.code, end - i - 2);
                            cur.code.push('\'');
                            i = end;
                        } else {
                            // Lifetime tick: ordinary code.
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c as char);
                        i += 1;
                    }
                }
            }
            Mode::Block(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c as char);
                    i += 1;
                }
            }
            Mode::Str => match c {
                b'\\' => {
                    // Escape: blank the backslash and the escaped char
                    // (handles \" and \\) — but leave an escaped
                    // newline (string continuation) to the main loop so
                    // line accounting stays exact.
                    cur.code.push(' ');
                    i += 1;
                    if i < b.len() && b[i] != b'\n' {
                        cur.code.push(' ');
                        i += 1;
                    }
                }
                b'"' => {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    cur.code.push(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == b'"' && hashes_follow(b, i + 1, hashes) {
                    cur.code.push('"');
                    blank_into(&mut cur.code, hashes as usize);
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without a trailing newline.
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        newline!();
    }
    out
}

fn line_end(b: &[u8], from: usize) -> usize {
    b[from..]
        .iter()
        .position(|&c| c == b'\n')
        .map(|p| from + p)
        .unwrap_or(b.len())
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && {
        let c = b[i - 1];
        c.is_ascii_alphanumeric() || c == b'_'
    }
}

/// If a raw (byte) string starts at `i` (`r"`, `r#"`, `br##"`, …),
/// returns `(hash_count, index_just_past_the_opening_quote)`.
fn raw_string_start(b: &[u8], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&b'"')).then_some((hashes, j + 1))
}

fn hashes_follow(b: &[u8], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| b.get(from + k) == Some(&b'#'))
}

/// If a char literal starts at the `'` at `i`, returns the index just
/// past its closing quote. A lone lifetime tick returns `None`.
fn char_literal(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i + 1) {
        Some(b'\\') => Some(char_literal_end(b, i)),
        // 'x' (incl. '_' — a valid char literal, unlike the lifetime
        // '_ which is never followed by a quote).
        Some(_) if b.get(i + 2) == Some(&b'\'') => Some(i + 3),
        _ => None,
    }
}

/// Index just past the closing quote of the char literal whose opening
/// `'` is at `i` (escape-aware; unterminated literals run to EOF).
fn char_literal_end(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // unterminated; don't eat the line
            _ => j += 1,
        }
    }
    b.len()
}

fn blank_into(s: &mut String, n: usize) {
    for _ in 0..n {
        s.push(' ');
    }
}

/// One lexed token of the blanked code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text: an identifier/number word, or one punctuation
    /// character.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether this is an identifier-ish word (letters, digits, `_`).
    pub is_ident: bool,
}

/// Lexes the blanked code of `lines` into a flat token stream.
pub fn tokenize(lines: &[LineView]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, lv) in lines.iter().enumerate() {
        let line = idx + 1;
        let s = lv.code.as_bytes();
        let mut i = 0;
        while i < s.len() {
            let c = s[i];
            if c.is_ascii_whitespace() {
                i += 1;
            } else if c.is_ascii_alphanumeric() || c == b'_' {
                let start = i;
                while i < s.len() && (s[i].is_ascii_alphanumeric() || s[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    text: lv.code[start..i].to_string(),
                    line,
                    is_ident: true,
                });
            } else {
                out.push(Token {
                    text: (c as char).to_string(),
                    line,
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> Vec<String> {
        lex_lines(src).into_iter().map(|l| l.code).collect()
    }

    fn comments(src: &str) -> Vec<String> {
        lex_lines(src).into_iter().map(|l| l.comment).collect()
    }

    #[test]
    fn line_comments_are_stripped_from_code() {
        let got = code("let x = 1; // trailing\n// whole line\n");
        assert_eq!(got[0], "let x = 1; ");
        assert_eq!(got[1], "");
        let com = comments("let x = 1; // trailing\n");
        assert!(com[0].contains("trailing"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let got = code("let s = \"unsafe // not a comment\";\n");
        assert!(!got[0].contains("unsafe"));
        assert!(!got[0].contains("//"));
        assert!(got[0].contains('"'));
        assert!(got[0].ends_with(';'));
    }

    // The three documented false-positive cases the old line-grep
    // lints were naive about (ISSUE satellite): each must vanish from
    // the code view when it appears inside a string literal.
    #[test]
    fn lint_trigger_words_inside_string_literals_are_blanked() {
        for needle in ["unsafe", "Instant::now()", "Ordering::SeqCst"] {
            let src = format!("let s = \"{needle}\";\n");
            let got = code(&src);
            assert!(
                !got[0].contains(needle),
                "{needle:?} leaked into code view: {:?}",
                got[0]
            );
        }
    }

    #[test]
    fn doc_comments_are_comment_text_not_code() {
        let src = "/// Uses `Ordering::SeqCst` (quoted, not real).\nfn f() {}\n";
        let got = lex_lines(src);
        assert!(!got[0].code.contains("SeqCst"));
        assert!(got[0].comment.contains("SeqCst"));
        assert_eq!(got[1].code, "fn f() {}");
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let got = lex_lines(src);
        assert_eq!(got[0].code.trim(), "let x = 1;");
        assert!(got[0].comment.contains("inner"));
        assert!(got[0].comment.contains("still comment"));
    }

    #[test]
    fn multi_line_block_comment_spans_lines() {
        let src = "a();\n/* one\ntwo SAFETY: ok\n*/\nb();\n";
        let got = lex_lines(src);
        assert_eq!(got[0].code, "a();");
        assert_eq!(got[2].code, "");
        assert!(got[2].comment.contains("SAFETY: ok"));
        assert_eq!(got[4].code, "b();");
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"has \" quote and unsafe\"#;\nlet t = r\"plain\";\n";
        let got = code(src);
        assert!(!got[0].contains("unsafe"));
        assert!(got[0].ends_with(';'));
        assert!(!got[1].contains("plain"));
    }

    #[test]
    fn multi_line_string_keeps_blanking() {
        let src = "let s = \"line one\nInstant::now()\nend\";\nf();\n";
        let got = code(src);
        assert!(!got[1].contains("Instant::now"));
        assert_eq!(got[3], "f();");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let got = code("let s = \"a \\\" b unsafe\"; g();\n");
        assert!(!got[0].contains("unsafe"));
        assert!(got[0].contains("g();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let got = code("let c = 'x'; let u = '_'; fn f<'a>(s: &'a str) {}\n");
        assert!(!got[0].contains('x'), "char body blanked: {:?}", got[0]);
        // Lifetime names are code, not literals.
        assert!(got[0].contains("'a"));
        assert!(got[0].contains("&'a str"));
        let esc = code("let n = '\\n'; h();\n");
        assert!(esc[0].contains("h();"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let got = code("let b = b\"unsafe\"; let c = b'x'; i();\n");
        assert!(!got[0].contains("unsafe"));
        assert!(!got[0].contains('x'));
        assert!(got[0].contains("i();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        // `var"` would be nonsense Rust, but `for r in` / `super::r#"`
        // shapes must not confuse the prefix detection.
        let got = code("let xr = 1; let s = \"lit\"; j();\n");
        assert!(got[0].contains("xr = 1"));
        assert!(got[0].contains("j();"));
    }

    #[test]
    fn tokenizer_emits_words_and_punct_with_lines() {
        let toks = tokenize(&lex_lines("a.load(\n  Ordering::Acquire);\n"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["a", ".", "load", "(", "Ordering", ":", ":", "Acquire", ")", ";"]
        );
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[4].line, 2);
        assert!(toks[4].is_ident);
    }

    #[test]
    fn tuple_field_receivers_tokenize_as_words() {
        let toks = tokenize(&lex_lines("self.0.fetch_add(1, Ordering::Release);\n"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.windows(3).any(|w| w == ["self", ".", "0"]));
    }
}
