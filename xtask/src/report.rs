//! Report rendering: `--format text` for humans, `json` for scripts,
//! `sarif` (2.1.0) for GitHub code-scanning annotations. All
//! hand-rolled — the workspace builds without crates.io, so no serde.

use crate::engine::Analysis;
use crate::lints::all_lints;

/// Output format selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
    Sarif,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }
}

/// Renders `analysis` in the chosen format.
pub fn render(analysis: &Analysis, format: Format) -> String {
    match format {
        Format::Text => render_text(analysis),
        Format::Json => render_json(analysis),
        Format::Sarif => render_sarif(analysis),
    }
}

fn render_text(a: &Analysis) -> String {
    let mut out = String::new();
    for f in &a.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.lint, f.message
        ));
    }
    for s in &a.stale_baseline {
        out.push_str(&format!("analyze.toml: stale baseline entry: {s}\n"));
    }
    out.push_str(&format!(
        "xtask analyze: {} file(s), {} finding(s), {} baselined, {} stale baseline entr{}\n",
        a.files_scanned,
        a.findings.len(),
        a.baselined.len(),
        a.stale_baseline.len(),
        if a.stale_baseline.len() == 1 {
            "y"
        } else {
            "ies"
        },
    ));
    out
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(a: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in a.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.lint,
            esc(&f.message),
            if i + 1 < a.findings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"baselined\": [\n");
    for (i, (f, reason)) in a.baselined.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"reason\": \"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.lint,
            esc(reason),
            if i + 1 < a.baselined.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"stale_baseline\": [");
    for (i, s) in a.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", esc(s)));
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
        a.files_scanned,
        a.is_clean(),
    ));
    out
}

fn render_sarif(a: &Analysis) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\n      \
         \"name\": \"twofd-xtask-analyze\",\n      \"informationUri\": \
         \"https://example.invalid/twofd\",\n      \"rules\": [\n",
    );
    let lints = all_lints();
    for (i, lint) in lints.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            lint.name(),
            esc(lint.description()),
            if i + 1 < lints.len() { "," } else { "" },
        ));
    }
    out.push_str("      ]\n    }},\n    \"results\": [\n");
    for (i, f) in a.findings.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            f.lint,
            esc(&f.message),
            esc(&f.file),
            f.line,
            if i + 1 < a.findings.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                file: "crates/core/src/slab.rs".into(),
                line: 7,
                lint: "hotpath-panic",
                message: "`unwrap` with a \"quote\"".into(),
            }],
            baselined: vec![(
                Finding {
                    file: "crates/net/src/shard.rs".into(),
                    line: 3,
                    lint: "blocking-call",
                    message: "mutex acquisition".into(),
                },
                "per-shard design".into(),
            )],
            stale_baseline: Vec::new(),
            files_scanned: 2,
        }
    }

    #[test]
    fn text_report_lists_findings_and_summary() {
        let t = render(&sample(), Format::Text);
        assert!(t.contains("crates/core/src/slab.rs:7: [hotpath-panic]"));
        assert!(t.contains("2 file(s), 1 finding(s), 1 baselined"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let j = render(&sample(), Format::Json);
        assert!(j.contains("\\\"quote\\\""), "{j}");
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"files_scanned\": 2"));
    }

    #[test]
    fn sarif_report_has_schema_rules_and_results() {
        let s = render(&sample(), Format::Sarif);
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"id\": \"atomic-pairing\""));
        assert!(s.contains("\"ruleId\": \"hotpath-panic\""));
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn format_parse_round_trips() {
        assert_eq!(Format::parse("text"), Some(Format::Text));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("sarif"), Some(Format::Sarif));
        assert_eq!(Format::parse("xml"), None);
    }
}
