//! The analysis driver: collects `.rs` files from the configured
//! roots, lexes each into a [`FileContext`], runs the full lint
//! catalogue (per-file passes, then the cross-file passes), and
//! partitions the findings against the suppression baseline.

use crate::config::{Config, ConfigError};
use crate::lex::{lex_lines, tokenize};
use crate::lints::{all_lints, FileContext, Finding};
use std::path::{Path, PathBuf};

/// The outcome of one analysis run.
pub struct Analysis {
    /// Findings not covered by any baseline entry — these fail the run.
    pub findings: Vec<Finding>,
    /// Findings matched (and absorbed) by a baseline entry, with the
    /// entry's written reason.
    pub baselined: Vec<(Finding, String)>,
    /// Baseline entries that matched nothing: stale entries fail the
    /// run too, so the baseline can only ratchet down.
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether the run is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_baseline.is_empty()
    }
}

/// Builds the per-file lint context for one source text.
pub fn file_context(rel: &str, src: &str) -> FileContext {
    let lines = lex_lines(src);
    let tokens = tokenize(&lines);
    let production_end = lines
        .iter()
        .position(|l| l.code.trim_start().starts_with("#[cfg(test)"))
        .unwrap_or(lines.len());
    FileContext {
        rel: rel.to_string(),
        lines,
        tokens,
        production_end,
    }
}

/// Runs the whole catalogue over in-memory sources. This is the entry
/// point the golden-file harness uses; [`analyze_workspace`] is the
/// same thing fed from disk.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Analysis {
    let contexts: Vec<FileContext> = sources
        .iter()
        .map(|(rel, src)| file_context(rel, src))
        .collect();
    let mut findings = Vec::new();
    for lint in all_lints() {
        for ctx in &contexts {
            lint.check_file(ctx, cfg, &mut findings);
        }
        lint.check_workspace(&contexts, cfg, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));

    // Partition against the baseline; every entry must earn its keep.
    let mut used = vec![false; cfg.baseline.len()];
    let mut unbaselined = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        match cfg
            .baseline
            .iter()
            .position(|b| b.file == f.file && b.lint == f.lint)
        {
            Some(i) => {
                used[i] = true;
                let reason = cfg.baseline[i].reason.clone();
                baselined.push((f, reason));
            }
            None => unbaselined.push(f),
        }
    }
    let stale_baseline = cfg
        .baseline
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(b, _)| format!("{} / {} ({})", b.file, b.lint, b.reason))
        .collect();

    Analysis {
        findings: unbaselined,
        baselined,
        stale_baseline,
        files_scanned: contexts.len(),
    }
}

/// Runs the catalogue over the on-disk workspace rooted at `repo`.
pub fn analyze_workspace(repo: &Path, cfg: &Config) -> Result<Analysis, ConfigError> {
    let mut files = Vec::new();
    for root in &cfg.roots {
        let dir = repo.join(root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files);
        } else if dir.is_file() {
            files.push(dir);
        }
    }
    files.sort();

    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg
            .exclude
            .iter()
            .any(|e| rel == *e || rel.starts_with(&format!("{}/", e.trim_end_matches('/'))))
        {
            continue;
        }
        let src = std::fs::read_to_string(&path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {rel}: {e}"),
        })?;
        sources.push((rel, src));
    }
    Ok(analyze_sources(&sources, cfg))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaselineEntry;

    fn cfg_with_hot_path() -> Config {
        Config {
            hot_path: vec!["crates/core/src/slab.rs".into()],
            ..Config::default()
        }
    }

    #[test]
    fn baseline_absorbs_matching_findings() {
        let mut cfg = cfg_with_hot_path();
        cfg.baseline.push(BaselineEntry {
            file: "crates/core/src/slab.rs".into(),
            lint: "hotpath-panic".into(),
            reason: "legacy debt, tracked".into(),
        });
        let a = analyze_sources(
            &[(
                "crates/core/src/slab.rs".into(),
                "fn f() { x.unwrap(); }\n".into(),
            )],
            &cfg,
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.baselined.len(), 1);
        assert!(a.is_clean());
    }

    #[test]
    fn stale_baseline_entries_fail_the_run() {
        let mut cfg = cfg_with_hot_path();
        cfg.baseline.push(BaselineEntry {
            file: "crates/core/src/slab.rs".into(),
            lint: "hotpath-panic".into(),
            reason: "was fixed; entry forgotten".into(),
        });
        let a = analyze_sources(
            &[("crates/core/src/slab.rs".into(), "fn f() {}\n".into())],
            &cfg,
        );
        assert!(a.findings.is_empty());
        assert_eq!(a.stale_baseline.len(), 1);
        assert!(!a.is_clean());
    }

    #[test]
    fn findings_are_sorted_and_counted() {
        let cfg = cfg_with_hot_path();
        let a = analyze_sources(
            &[
                (
                    "crates/core/src/slab.rs".into(),
                    "fn f() { x.unwrap(); }\nfn g() { let v = vec![1]; }\n".into(),
                ),
                ("crates/core/src/qos.rs".into(), "fn h() {}\n".into()),
            ],
            &cfg,
        );
        assert_eq!(a.files_scanned, 2);
        assert_eq!(a.findings.len(), 2);
        assert!(a.findings[0].line <= a.findings[1].line);
    }
}
