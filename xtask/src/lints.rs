//! The lint catalogue: a [`Lint`] trait and the eight rules the engine
//! enforces (DESIGN.md §17 is the narrative version).
//!
//! Every lint runs on the lexed views of [`crate::lex`] — code with
//! literals blanked and comments split out — so none of them can fire
//! on tokens inside string literals or doc comments. Justification
//! markers are searched in **comment text only**, on the site's line or
//! within the one configured lookback window (`lookback` in
//! `analyze.toml`) above it.
//!
//! | lint | scope | allow marker |
//! |------|-------|--------------|
//! | `safety-comment`     | everywhere               | `SAFETY:` |
//! | `unsafe-isolation`   | everywhere               | (scope: `unsafe_allowed`) |
//! | `wall-clock`         | `scopes.wall_clock`      | `xtask:allow(wall_clock)` |
//! | `atomic-ordering`    | src dirs minus exempt    | `ordering:` (Relaxed; SeqCst unappealable) |
//! | `hotpath-panic`      | `scopes.hot_path`        | `hotpath:allow(panic)` |
//! | `hotpath-alloc`      | `scopes.hot_path`        | `hotpath:allow(alloc)` |
//! | `blocking-call`      | `scopes.blocking`        | `hotpath:allow(block)` |
//! | `atomic-pairing`     | src dirs minus exempt    | `xtask:allow(one_sided)` |
//!
//! Lines past the first `#[cfg(test)]` in a file are test code and
//! exempt from everything except `safety-comment` and
//! `unsafe-isolation` (unsoundness is unsoundness, in tests too).

use crate::config::{in_scope, Config};
use crate::lex::{LineView, Token};
use std::collections::BTreeMap;

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable lint name (`Lint::name`).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything a lint may look at for one file.
pub struct FileContext {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// Per-line code/comment views.
    pub lines: Vec<LineView>,
    /// Token stream of the blanked code.
    pub tokens: Vec<Token>,
    /// Index of the first `#[cfg(test)]` line (== `lines.len()` when
    /// the file has no test module): the production prefix ends here.
    pub production_end: usize,
}

impl FileContext {
    /// Whether 0-based line `idx` is production (pre-`#[cfg(test)]`) code.
    pub fn is_production(&self, idx: usize) -> bool {
        idx < self.production_end
    }

    /// Whether a justification `marker` covers 0-based line `idx`: in
    /// the comment text of the same line, or of any of the `lookback`
    /// lines above it.
    pub fn justified(&self, idx: usize, marker: &str, lookback: usize) -> bool {
        let lo = idx.saturating_sub(lookback);
        self.lines[lo..=idx]
            .iter()
            .any(|l| l.comment.contains(marker))
    }
}

/// A single rule. Per-file rules implement [`Lint::check_file`];
/// cross-file rules (the atomic-pairing pass) implement
/// [`Lint::check_workspace`], which runs once with every file context.
pub trait Lint {
    /// Stable name, used in reports, SARIF rule ids and baseline entries.
    fn name(&self) -> &'static str;
    /// One-line description for SARIF rule metadata.
    fn description(&self) -> &'static str;
    /// Per-file pass.
    fn check_file(&self, _ctx: &FileContext, _cfg: &Config, _out: &mut Vec<Finding>) {}
    /// Cross-file pass, called once after all files are lexed.
    fn check_workspace(&self, _files: &[FileContext], _cfg: &Config, _out: &mut Vec<Finding>) {}
}

/// The full catalogue, in reporting order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(SafetyComment),
        Box::new(UnsafeIsolation),
        Box::new(WallClock),
        Box::new(AtomicOrdering),
        Box::new(HotPathPanic),
        Box::new(HotPathAlloc),
        Box::new(BlockingCall),
        Box::new(AtomicPairing),
    ]
}

/// Whether `haystack` contains `word` with non-identifier characters
/// (or string boundaries) on both sides.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    find_word(haystack, word, 0).is_some()
}

fn find_word(haystack: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut start = from;
    while let Some(pos) = haystack[start..].find(word) {
        let i = start + pos;
        let before_ok = i == 0 || {
            let c = bytes[i - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        let j = i + word.len();
        let after_ok = j >= bytes.len() || {
            let c = bytes[j];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok && after_ok {
            return Some(i);
        }
        start = i + 1;
    }
    None
}

/// Whether the code calls macro `name` (word followed by `!`).
fn calls_macro(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(i) = find_word(code, name, from) {
        let j = i + name.len();
        if code.as_bytes().get(j) == Some(&b'!') {
            return true;
        }
        from = j;
    }
    false
}

/// Whether the production ordering/pairing lints apply to `rel`:
/// production code under a `src/` directory, minus the configured
/// exemptions (the model checker implements the orderings; benches are
/// measurement harnesses).
fn in_ordering_scope(cfg: &Config, rel: &str) -> bool {
    (rel.starts_with("src/") || rel.contains("/src/"))
        && !cfg
            .ordering_exempt
            .iter()
            .any(|p| rel.starts_with(p.trim_end_matches('/')))
}

// ---------------------------------------------------------------- 1/8

/// Every `unsafe` site carries a `SAFETY:` justification.
pub struct SafetyComment;

impl Lint for SafetyComment {
    fn name(&self) -> &'static str {
        "safety-comment"
    }
    fn description(&self) -> &'static str {
        "every `unsafe` site needs a `// SAFETY:` justification on or above it"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        for (idx, l) in ctx.lines.iter().enumerate() {
            // `unsafe_code` / `unsafe_op_in_unsafe_fn` never match: the
            // `_` fails the word boundary.
            if contains_word(&l.code, "unsafe") && !ctx.justified(idx, "SAFETY:", cfg.lookback) {
                out.push(Finding {
                    file: ctx.rel.clone(),
                    line: idx + 1,
                    lint: self.name(),
                    message: "`unsafe` without a `// SAFETY:` comment on or above it".into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- 2/8

/// Crate roots forbid/deny `unsafe_code`; `unsafe` tokens appear only
/// in the configured `unsafe_allowed` files.
pub struct UnsafeIsolation;

fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || ((rel.starts_with("crates/") || rel.starts_with("vendor/") || rel.starts_with("xtask/"))
            && rel.ends_with("/src/lib.rs"))
}

impl Lint for UnsafeIsolation {
    fn name(&self) -> &'static str {
        "unsafe-isolation"
    }
    fn description(&self) -> &'static str {
        "crate roots must forbid/deny unsafe_code; `unsafe` only in designated modules"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if is_crate_root(&ctx.rel) {
            let has_attr = ctx.lines.iter().any(|l| {
                l.code.contains("#![forbid(unsafe_code)]")
                    || l.code.contains("#![deny(unsafe_code)]")
            });
            if !has_attr {
                out.push(Finding {
                    file: ctx.rel.clone(),
                    line: 1,
                    lint: self.name(),
                    message: "crate root without `#![forbid(unsafe_code)]` or \
                              `#![deny(unsafe_code)]`"
                        .into(),
                });
            }
        }
        if in_scope(&cfg.unsafe_allowed, &ctx.rel) || cfg.unsafe_allowed.contains(&ctx.rel) {
            return;
        }
        for (idx, l) in ctx.lines.iter().enumerate() {
            if contains_word(&l.code, "unsafe") {
                out.push(Finding {
                    file: ctx.rel.clone(),
                    line: idx + 1,
                    lint: self.name(),
                    message: format!(
                        "`unsafe` outside the designated boundary ({})",
                        cfg.unsafe_allowed.join(", ")
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- 3/8

/// No wall-clock reads in the declared deterministic scopes: hot paths
/// route through the shard clock, the core layer is a pure function of
/// the timestamps it is handed, and the simulators run virtual time.
pub struct WallClock;

impl Lint for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }
    fn description(&self) -> &'static str {
        "Instant::now()/SystemTime::now() banned in deterministic scopes"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !in_scope(&cfg.wall_clock, &ctx.rel) || in_scope(&cfg.wall_clock_exempt, &ctx.rel) {
            return;
        }
        for (idx, l) in ctx.lines.iter().enumerate() {
            if !ctx.is_production(idx) {
                break;
            }
            if !(l.code.contains("Instant::now()") || l.code.contains("SystemTime::now()")) {
                continue;
            }
            if !ctx.justified(idx, "xtask:allow(wall_clock)", cfg.lookback) {
                out.push(Finding {
                    file: ctx.rel.clone(),
                    line: idx + 1,
                    lint: self.name(),
                    message: "wall-clock read in deterministic production code (route \
                              through the shard clock, or mark \
                              `// xtask:allow(wall_clock)` with a reason)"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- 4/8

/// `Ordering::Relaxed` needs a written `ordering:` justification;
/// `Ordering::SeqCst` is banned outright (the last use — the clock
/// watermark — was demoted to Acquire/Release, model-checked in
/// `crates/check/tests/clock_model.rs`).
pub struct AtomicOrdering;

/// Whether any comment in `lines` carries an `ordering:` marker.
/// `Ordering::` lowercases to `ordering::` — the double colon
/// disqualifies it, so quoting the type in a doc comment is never its
/// own justification.
fn has_ordering_marker(lines: &[LineView]) -> bool {
    lines.iter().any(|l| {
        let low = l.comment.to_ascii_lowercase();
        let mut start = 0;
        while let Some(pos) = low[start..].find("ordering:") {
            let i = start + pos;
            let j = i + "ordering:".len();
            if low.as_bytes().get(j) != Some(&b':') {
                return true;
            }
            start = j;
        }
        false
    })
}

impl Lint for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }
    fn description(&self) -> &'static str {
        "Relaxed needs an `ordering:` justification; SeqCst is banned"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !in_ordering_scope(cfg, &ctx.rel) {
            return;
        }
        for (idx, l) in ctx.lines.iter().enumerate() {
            if !ctx.is_production(idx) {
                break;
            }
            if l.code.contains("Ordering::SeqCst") {
                out.push(Finding {
                    file: ctx.rel.clone(),
                    line: idx + 1,
                    lint: self.name(),
                    message: "`Ordering::SeqCst` in production code (use Acquire/Release; \
                              the clock-watermark demotion is model-checked in \
                              crates/check/tests/clock_model.rs)"
                        .into(),
                });
            }
            if l.code.contains("Ordering::Relaxed") {
                let lo = idx.saturating_sub(cfg.lookback);
                if !has_ordering_marker(&ctx.lines[lo..=idx]) {
                    out.push(Finding {
                        file: ctx.rel.clone(),
                        line: idx + 1,
                        lint: self.name(),
                        message: format!(
                            "`Ordering::Relaxed` without an `ordering:` justification \
                             comment within the preceding {} lines",
                            cfg.lookback
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------- 5/8

/// Hot-path panic freedom: a hidden panic in the per-heartbeat path
/// turns one malformed input into a dead shard worker and a fleet of
/// false suspicions — the QoS bounds assume the monitor stays up.
pub struct HotPathPanic;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

impl Lint for HotPathPanic {
    fn name(&self) -> &'static str {
        "hotpath-panic"
    }
    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/todo!/unimplemented!/unreachable! banned in hot-path modules"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !in_scope(&cfg.hot_path, &ctx.rel) {
            return;
        }
        for (idx, l) in ctx.lines.iter().enumerate() {
            if !ctx.is_production(idx) {
                break;
            }
            let what = if contains_word(&l.code, "unwrap") {
                Some("`unwrap`")
            } else if contains_word(&l.code, "expect") {
                Some("`expect`")
            } else {
                PANIC_MACROS
                    .iter()
                    .find(|m| calls_macro(&l.code, m))
                    .map(|m| match *m {
                        "panic" => "`panic!`",
                        "todo" => "`todo!`",
                        "unimplemented" => "`unimplemented!`",
                        _ => "`unreachable!`",
                    })
            };
            if let Some(what) = what {
                if !ctx.justified(idx, "hotpath:allow(panic)", cfg.lookback) {
                    out.push(Finding {
                        file: ctx.rel.clone(),
                        line: idx + 1,
                        lint: self.name(),
                        message: format!(
                            "{what} in a hot-path module: a panic here kills the shard \
                             worker and voids the QoS bounds (make it infallible, or \
                             mark `// hotpath:allow(panic)` with the invariant that \
                             rules it out)"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------- 6/8

/// Allocation discipline: the per-heartbeat path must not allocate —
/// an allocator call is an unbounded-latency excursion (lock, page
/// fault, madvise) hiding inside a nanosecond budget.
pub struct HotPathAlloc;

const ALLOC_PATHS: &[&str] = &["Box::new", "Vec::new", "String::from"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

impl Lint for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hotpath-alloc"
    }
    fn description(&self) -> &'static str {
        "Box::new/Vec::new/vec!/format!/String::from/to_vec banned in hot-path modules"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !in_scope(&cfg.hot_path, &ctx.rel) {
            return;
        }
        for (idx, l) in ctx.lines.iter().enumerate() {
            if !ctx.is_production(idx) {
                break;
            }
            let path_hit = ALLOC_PATHS.iter().find(|p| l.code.contains(*p)).copied();
            let hit = path_hit
                .or_else(|| {
                    ALLOC_MACROS
                        .iter()
                        .find(|m| calls_macro(&l.code, m))
                        .map(|m| if *m == "vec" { "vec!" } else { "format!" })
                })
                .or_else(|| contains_word(&l.code, "to_vec").then_some("to_vec"));
            if let Some(what) = hit {
                if !ctx.justified(idx, "hotpath:allow(alloc)", cfg.lookback) {
                    out.push(Finding {
                        file: ctx.rel.clone(),
                        line: idx + 1,
                        lint: self.name(),
                        message: format!(
                            "`{what}` in a hot-path module: allocator calls are \
                             unbounded-latency and banned per-heartbeat (preallocate \
                             at construction, or mark `// hotpath:allow(alloc)` with \
                             why this runs off the heartbeat path)"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------- 7/8

/// Blocking-call ban in the shard-worker/sweep scope: a sleep or a
/// contended mutex inside the worker loop stretches sweep tail latency
/// directly into late suspicions.
pub struct BlockingCall;

impl Lint for BlockingCall {
    fn name(&self) -> &'static str {
        "blocking-call"
    }
    fn description(&self) -> &'static str {
        "thread::sleep and mutex acquisition banned in shard-worker/sweep scope"
    }
    fn check_file(&self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !in_scope(&cfg.blocking, &ctx.rel) {
            return;
        }
        for (idx, l) in ctx.lines.iter().enumerate() {
            if !ctx.is_production(idx) {
                break;
            }
            let what = if l.code.contains("thread::sleep") || l.code.contains("::sleep(") {
                Some("`thread::sleep`")
            } else if l.code.contains(".lock(") {
                Some("mutex acquisition")
            } else {
                None
            };
            if let Some(what) = what {
                if !ctx.justified(idx, "hotpath:allow(block)", cfg.lookback) {
                    out.push(Finding {
                        file: ctx.rel.clone(),
                        line: idx + 1,
                        lint: self.name(),
                        message: format!(
                            "{what} in shard-worker/sweep scope: blocking here adds \
                             directly to sweep tail latency (restructure, or mark \
                             `// hotpath:allow(block)` with the bound on the wait)"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------- 8/8

/// Cross-file atomic release/acquire pairing: a `Release` store whose
/// field is never `Acquire`-loaded (or vice versa) publishes to — or
/// synchronizes with — nobody. This is the static version of the
/// `Counter` ordering bug the model checker caught dynamically in PR 5.
pub struct AtomicPairing;

/// Atomic method names whose ordering argument we attribute.
const ATOMIC_METHODS: &[&str] = &[
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

#[derive(Default)]
struct PairSides {
    /// `(file, line)` of Release-side uses (store/RMW with Release|AcqRel).
    release: Vec<(usize, usize)>,
    /// `(file, line)` of Acquire-side uses (load/RMW with Acquire|AcqRel).
    acquire: Vec<(usize, usize)>,
}

impl AtomicPairing {
    /// Scans one file's production tokens for `Ordering::{Release,
    /// Acquire, AcqRel}` arguments, attributing each to the atomic
    /// field it orders. `file_idx` indexes into the engine's context
    /// slice.
    fn index_file(ctx: &FileContext, file_idx: usize, sides: &mut BTreeMap<String, PairSides>) {
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            // Match `Ordering :: <which>` in production code.
            if !(toks[i].is_ident && toks[i].text == "Ordering") {
                continue;
            }
            if toks[i].line > ctx.production_end {
                break;
            }
            let which = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
                (Some(c1), Some(c2), Some(w)) if c1.text == ":" && c2.text == ":" => {
                    match w.text.as_str() {
                        "Release" | "Acquire" | "AcqRel" => w.text.clone(),
                        _ => continue,
                    }
                }
                _ => continue,
            };
            let Some((field, method)) = receiver_of_enclosing_call(toks, i) else {
                continue; // bare `Ordering::X` (helper fn, const): unattributable
            };
            let entry = sides.entry(field).or_default();
            let line = toks[i].line;
            let releases = which == "AcqRel" || (which == "Release" && method != "load");
            let acquires = which == "AcqRel" || (which == "Acquire" && method != "store");
            if releases {
                entry.release.push((file_idx, line));
            }
            if acquires {
                entry.acquire.push((file_idx, line));
            }
        }
    }
}

/// Walks backwards from token `i` (inside a call's argument list) to
/// the call's opening `(`, and extracts `(receiver_field, method)`
/// from the `field . method (` shape before it. Returns `None` when
/// the enclosing context is not an atomic method call.
fn receiver_of_enclosing_call(toks: &[Token], i: usize) -> Option<(String, String)> {
    // Find the unmatched `(` that opens the argument list we are in.
    let mut depth = 0i32;
    let mut j = i;
    let open = loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match toks[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" if depth > 0 => depth -= 1,
            "(" => break j,
            "[" | "{" => return None, // enclosing context is not a call
            _ => {}
        }
    };
    // `<field> . <method> (` — method directly before the paren.
    let method = toks.get(open.checked_sub(1)?)?;
    if !(method.is_ident && ATOMIC_METHODS.contains(&method.text.as_str())) {
        return None;
    }
    let dot = toks.get(open.checked_sub(2)?)?;
    if dot.text != "." {
        return None;
    }
    // Receiver: an ident, or a `]`-closed index (`buckets[i]`).
    let mut k = open.checked_sub(3)?;
    if toks[k].text == "]" {
        let mut d = 1;
        loop {
            k = k.checked_sub(1)?;
            match toks[k].text.as_str() {
                "]" => d += 1,
                "[" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        k = k.checked_sub(1)?;
    }
    let recv = &toks[k];
    (recv.is_ident).then(|| (recv.text.clone(), method.text.clone()))
}

impl Lint for AtomicPairing {
    fn name(&self) -> &'static str {
        "atomic-pairing"
    }
    fn description(&self) -> &'static str {
        "Release stores and Acquire loads of an atomic field must pair up across the workspace"
    }
    fn check_workspace(&self, files: &[FileContext], cfg: &Config, out: &mut Vec<Finding>) {
        let mut sides: BTreeMap<String, PairSides> = BTreeMap::new();
        for (idx, ctx) in files.iter().enumerate() {
            if in_ordering_scope(cfg, &ctx.rel) {
                Self::index_file(ctx, idx, &mut sides);
            }
        }
        for (field, s) in &sides {
            let orphaned: (&[(usize, usize)], &str, &str) = if s.acquire.is_empty() {
                (&s.release, "Release", "no Acquire/AcqRel load")
            } else if s.release.is_empty() {
                (&s.acquire, "Acquire", "no Release/AcqRel store")
            } else {
                continue;
            };
            let (sites, side, missing) = orphaned;
            for &(file_idx, line) in sites {
                let ctx = &files[file_idx];
                if ctx.justified(line - 1, "xtask:allow(one_sided)", cfg.lookback) {
                    continue;
                }
                out.push(Finding {
                    file: ctx.rel.clone(),
                    line,
                    lint: self.name(),
                    message: format!(
                        "one-sided {side} ordering on atomic `{field}`: {missing} of \
                         `{field}` anywhere in scope, so this ordering synchronizes \
                         with nothing (pair it, demote to Relaxed with an `ordering:` \
                         justification, or mark `// xtask:allow(one_sided)` naming \
                         the pairing site)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex_lines, tokenize};

    pub(crate) fn ctx_for(rel: &str, src: &str) -> FileContext {
        let lines = lex_lines(src);
        let tokens = tokenize(&lines);
        let production_end = lines
            .iter()
            .position(|l| l.code.trim_start().starts_with("#[cfg(test)"))
            .unwrap_or(lines.len());
        FileContext {
            rel: rel.to_string(),
            lines,
            tokens,
            production_end,
        }
    }

    fn test_cfg() -> Config {
        Config {
            lookback: 12,
            wall_clock: vec!["crates/net/src".into(), "crates/core/src".into()],
            wall_clock_exempt: vec!["crates/net/src/clock.rs".into()],
            unsafe_allowed: vec!["crates/net/src/intake.rs".into()],
            hot_path: vec!["crates/core/src/slab.rs".into()],
            blocking: vec!["crates/net/src/shard.rs".into()],
            ordering_exempt: vec!["crates/check".into(), "crates/bench".into()],
            ..Config::default()
        }
    }

    fn run_file(lint: &dyn Lint, rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint.check_file(&ctx_for(rel, src), &test_cfg(), &mut out);
        out
    }

    fn run_pairing(files: &[(&str, &str)]) -> Vec<Finding> {
        let ctxs: Vec<FileContext> = files.iter().map(|(r, s)| ctx_for(r, s)).collect();
        let mut out = Vec::new();
        AtomicPairing.check_workspace(&ctxs, &test_cfg(), &mut out);
        out
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let got = run_file(
            &SafetyComment,
            "crates/net/src/intake.rs",
            "fn f() {\n    let p = unsafe { std::ptr::null::<u8>() };\n}\n",
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        for src in [
            "fn f() {\n    // SAFETY: null is valid.\n    let p = unsafe { null() };\n}\n",
            "unsafe { go() } // SAFETY: go has no preconditions.\n",
            "// SAFETY: fd owned.\n#[inline]\n\nunsafe fn close_it(fd: i32) {}\n",
        ] {
            assert!(run_file(&SafetyComment, "crates/net/src/intake.rs", src).is_empty());
        }
    }

    // ISSUE satellite regression: the three documented string-literal /
    // doc-comment false positives, pinned one by one.
    #[test]
    fn unsafe_inside_string_literal_does_not_fire() {
        let src = "fn f() { let s = \"unsafe\"; }\n";
        assert!(run_file(&SafetyComment, "src/lib.rs", src).is_empty());
        assert!(run_file(&UnsafeIsolation, "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn instant_now_inside_string_literal_does_not_fire() {
        let src = "fn f() { let s = \"Instant::now()\"; }\n";
        assert!(run_file(&WallClock, "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_inside_string_or_doc_comment_does_not_fire() {
        let in_str = "fn f() { let s = \"Ordering::SeqCst\"; }\n";
        assert!(run_file(&AtomicOrdering, "crates/core/src/x.rs", in_str).is_empty());
        let in_doc = "/// Quotes `Ordering::SeqCst` in prose.\nfn f() {}\n";
        assert!(run_file(&AtomicOrdering, "crates/core/src/x.rs", in_doc).is_empty());
    }

    #[test]
    fn lint_attributes_are_not_unsafe_sites() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#![forbid(unsafe_code)]\n";
        assert!(run_file(&SafetyComment, "src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_the_boundary_is_flagged() {
        let src = "// SAFETY: still not allowed here.\nunsafe impl Send for X {}\n";
        let got = run_file(&UnsafeIsolation, "crates/core/src/slab.rs", src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("intake.rs"));
    }

    #[test]
    fn crate_root_attr_detection() {
        let got = run_file(&UnsafeIsolation, "crates/net/src/lib.rs", "pub mod x;\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 1);
        assert!(run_file(
            &UnsafeIsolation,
            "crates/net/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n"
        )
        .is_empty());
    }

    #[test]
    fn wall_clock_flagged_without_marker_allowed_with() {
        let bare = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            run_file(&WallClock, "crates/net/src/shard.rs", bare).len(),
            1
        );
        let marked = "// xtask:allow(wall_clock) — metric duration only.\n\
                      fn f() { let t = std::time::Instant::now(); }\n";
        assert!(run_file(&WallClock, "crates/net/src/shard.rs", marked).is_empty());
        // Out of scope / exempt / test code:
        assert!(run_file(&WallClock, "crates/net/src/clock.rs", bare).is_empty());
        assert!(run_file(&WallClock, "crates/bench/src/x.rs", bare).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n";
        assert!(run_file(&WallClock, "crates/net/src/shard.rs", test_only).is_empty());
    }

    #[test]
    fn relaxed_needs_justification_seqcst_is_banned() {
        let src = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert_eq!(
            run_file(&AtomicOrdering, "crates/core/src/x.rs", src).len(),
            1
        );
        let ok = "fn f(a: &AtomicU64) {\n    // ordering: single-cell stat.\n    \
                  a.load(Ordering::Relaxed);\n}\n";
        assert!(run_file(&AtomicOrdering, "crates/core/src/x.rs", ok).is_empty());
        let seq = "fn f(a: &AtomicU64) {\n    a.load(Ordering::SeqCst);\n}\n";
        assert_eq!(
            run_file(&AtomicOrdering, "crates/core/src/x.rs", seq).len(),
            1
        );
        // A bare use is not its own justification (`ordering::`).
        let bare = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n    \
                    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(
            run_file(&AtomicOrdering, "crates/core/src/x.rs", bare).len(),
            2
        );
    }

    #[test]
    fn acquire_release_are_free_and_exempt_scopes_skip() {
        let src = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Release);\n    \
                   a.load(Ordering::Acquire);\n    a.fetch_add(1, Ordering::AcqRel);\n}\n";
        assert!(run_file(&AtomicOrdering, "crates/core/src/x.rs", src).is_empty());
        let seq = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert!(run_file(&AtomicOrdering, "crates/check/src/engine.rs", seq).is_empty());
        assert!(run_file(&AtomicOrdering, "crates/bench/src/x.rs", seq).is_empty());
    }

    #[test]
    fn hotpath_panic_fires_on_each_construct() {
        for (frag, what) in [
            ("x.unwrap();", "unwrap"),
            ("x.expect(\"m\");", "expect"),
            ("panic!(\"boom\");", "panic!"),
            ("todo!();", "todo!"),
            ("unimplemented!();", "unimplemented!"),
            ("unreachable!();", "unreachable!"),
        ] {
            let src = format!("fn f() {{ {frag} }}\n");
            let got = run_file(&HotPathPanic, "crates/core/src/slab.rs", &src);
            assert_eq!(got.len(), 1, "{frag}");
            assert!(got[0].message.contains(what), "{frag}: {}", got[0].message);
        }
    }

    #[test]
    fn hotpath_panic_allow_and_scope_and_lookalikes() {
        let ok = "// hotpath:allow(panic) — len < u32::MAX by construction.\n\
                  fn f() { x.unwrap(); }\n";
        assert!(run_file(&HotPathPanic, "crates/core/src/slab.rs", ok).is_empty());
        // Not a hot-path module:
        let src = "fn f() { x.unwrap(); }\n";
        assert!(run_file(&HotPathPanic, "crates/core/src/qos.rs", src).is_empty());
        // `unwrap_or` / `should_panic` / `expected` are not panic sites.
        let lookalike = "fn f() { x.unwrap_or(0); }\n#[should_panic]\nfn g(expected: u32) {}\n";
        assert!(run_file(&HotPathPanic, "crates/core/src/slab.rs", lookalike).is_empty());
    }

    #[test]
    fn hotpath_alloc_fires_and_allows() {
        for frag in [
            "let b = Box::new(1);",
            "let v: Vec<u8> = Vec::new();",
            "let v = vec![1, 2];",
            "let s = format!(\"x{}\", 1);",
            "let s = String::from(\"x\");",
            "let v = s.to_vec();",
        ] {
            let src = format!("fn f() {{ {frag} }}\n");
            assert_eq!(
                run_file(&HotPathAlloc, "crates/core/src/slab.rs", &src).len(),
                1,
                "{frag}"
            );
        }
        let ok = "// hotpath:allow(alloc) — construction path, runs once.\n\
                  fn f() { let v: Vec<u8> = Vec::new(); }\n";
        assert!(run_file(&HotPathAlloc, "crates/core/src/slab.rs", ok).is_empty());
        // `Vec::with_capacity` is the sanctioned preallocation: not flagged.
        let cap = "fn f() { let v: Vec<u8> = Vec::with_capacity(64); }\n";
        assert!(run_file(&HotPathAlloc, "crates/core/src/slab.rs", cap).is_empty());
    }

    #[test]
    fn blocking_call_fires_on_sleep_and_lock() {
        let sleep = "fn f() { thread::sleep(Duration::from_millis(1)); }\n";
        assert_eq!(
            run_file(&BlockingCall, "crates/net/src/shard.rs", sleep).len(),
            1
        );
        let lock = "fn f() { let g = self.set.lock(); }\n";
        assert_eq!(
            run_file(&BlockingCall, "crates/net/src/shard.rs", lock).len(),
            1
        );
        let ok = "// hotpath:allow(block) — uncontended per-shard mutex.\n\
                  fn f() { let g = self.set.lock(); }\n";
        assert!(run_file(&BlockingCall, "crates/net/src/shard.rs", ok).is_empty());
        // `Mutex::new` is construction, not acquisition.
        let new = "fn f() { let m = Mutex::new(0); }\n";
        assert!(run_file(&BlockingCall, "crates/net/src/shard.rs", new).is_empty());
    }

    #[test]
    fn pairing_flags_orphaned_release() {
        let got = run_pairing(&[(
            "crates/net/src/x.rs",
            "fn f(s: &S) { s.ready.store(true, Ordering::Release); }\n",
        )]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("`ready`"));
        assert!(got[0].message.contains("no Acquire"));
    }

    #[test]
    fn pairing_accepts_cross_file_pairs() {
        let got = run_pairing(&[
            (
                "crates/net/src/a.rs",
                "fn f(s: &S) { s.ready.store(true, Ordering::Release); }\n",
            ),
            (
                "crates/net/src/b.rs",
                "fn g(s: &S) { let _ = s.ready.load(Ordering::Acquire); }\n",
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn pairing_acqrel_rmw_pairs_with_acquire_load() {
        let got = run_pairing(&[(
            "crates/net/src/clock.rs",
            "fn f(s: &S) {\n    s.now.fetch_max(1, Ordering::AcqRel);\n    \
             let _ = s.now.load(Ordering::Acquire);\n}\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn pairing_flags_orphaned_acquire_and_allows_with_marker() {
        let bare = "fn f(s: &S) { let _ = s.count.load(Ordering::Acquire); }\n";
        let got = run_pairing(&[("crates/obs/src/m.rs", bare)]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("no Release"));
        let ok = "fn f(s: &S) {\n    // xtask:allow(one_sided) — paired via helper.\n    \
                  let _ = s.count.load(Ordering::Acquire);\n}\n";
        assert!(run_pairing(&[("crates/obs/src/m.rs", ok)]).is_empty());
    }

    #[test]
    fn pairing_ignores_relaxed_and_unattributable_orderings() {
        // Relaxed-only traffic is rule 4's business, not pairing's.
        let relaxed = "fn f(s: &S) {\n    // ordering: stat cell.\n    \
                       s.hits.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run_pairing(&[("crates/obs/src/m.rs", relaxed)]).is_empty());
        // A bare `Ordering::Release` in a helper fn attributes to no
        // field and must not invent one.
        let helper = "fn ord() -> Ordering { Ordering::Release }\n";
        assert!(run_pairing(&[("crates/obs/src/m.rs", helper)]).is_empty());
    }

    #[test]
    fn pairing_attributes_multiline_and_indexed_receivers() {
        // Receiver on the line above the ordering (the shard.rs shape).
        let multiline = "fn f(s: &S) {\n    s.obs_applied\n        .fetch_add(1, \
                         Ordering::Release);\n    let _ = s.obs_applied.load(Ordering::Acquire);\n}\n";
        assert!(run_pairing(&[("crates/net/src/s.rs", multiline)]).is_empty());
        // Indexed receiver: buckets[i].fetch_add — field is `buckets`.
        let indexed = "fn f(s: &S, i: usize) {\n    s.buckets[idx(i)].store(1, \
                       Ordering::Release);\n}\n";
        let got = run_pairing(&[("crates/obs/src/m.rs", indexed)]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("`buckets`"), "{}", got[0].message);
    }

    #[test]
    fn pairing_skips_test_code_and_exempt_scopes() {
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t(s: &S) { s.x.store(1, \
                         Ordering::Release); }\n}\n";
        assert!(run_pairing(&[("crates/net/src/s.rs", test_only)]).is_empty());
        let in_check = "fn f(s: &S) { s.x.store(1, Ordering::Release); }\n";
        assert!(run_pairing(&[("crates/check/src/engine.rs", in_check)]).is_empty());
    }
}
