//! `analyze.toml` — declarative configuration for the lint engine.
//!
//! The scopes the lints enforce (which modules are hot paths, where
//! wall-clock reads are banned, where `unsafe` may live) are *policy*,
//! not code, so they live in a checked-in config file at the workspace
//! root instead of being hard-wired into lint implementations. The
//! file also carries the one unified justification-comment lookback
//! window (the old driver searched 10 lines for `SAFETY:` but 12 for
//! `ordering:` — a trap for contributors) and the suppression
//! baseline: accepted findings listed with a written reason, so
//! `cargo xtask analyze` can insist on **zero un-baselined findings**
//! while a legacy debt item is being worked off.
//!
//! The parser handles the small TOML subset the file actually uses —
//! `[section]` / `[[array-of-tables]]` headers, integers, quoted
//! strings and arrays of quoted strings, `#` comments — and rejects
//! everything else loudly. Dependency-free by the same rule as the
//! rest of the workspace: the build environment has no crates.io.

use std::fmt;
use std::path::Path;

/// One baselined (accepted, but still tracked) finding class.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Repo-relative file the findings live in.
    pub file: String,
    /// Lint name (`Lint::name`) being suppressed there.
    pub lint: String,
    /// Written justification — required; an unexplained suppression
    /// defeats the point of the baseline.
    pub reason: String,
}

/// Parsed `analyze.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Lines searched *above* a site for a justification comment
    /// (`SAFETY:`, `ordering:`, `xtask:allow(...)`, `hotpath:allow(...)`).
    /// One value for every lint.
    pub lookback: usize,
    /// Top-level directories scanned for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan (lint-fixture corpora).
    pub exclude: Vec<String>,
    /// Wall-clock ban scope (dirs or files).
    pub wall_clock: Vec<String>,
    /// Files inside the wall-clock scope that *are* allowed to read the
    /// wall clock (the clock module itself).
    pub wall_clock_exempt: Vec<String>,
    /// The only files allowed to contain `unsafe` tokens.
    pub unsafe_allowed: Vec<String>,
    /// Hot-path modules: panic-freedom and allocation discipline.
    pub hot_path: Vec<String>,
    /// Shard-worker/sweep scope: blocking calls banned.
    pub blocking: Vec<String>,
    /// Path prefixes exempt from the ordering + atomic-pairing lints.
    pub ordering_exempt: Vec<String>,
    /// Accepted findings (see [`BaselineEntry`]).
    pub baseline: Vec<BaselineEntry>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            lookback: 12,
            roots: vec![
                "src".into(),
                "tests".into(),
                "crates".into(),
                "vendor".into(),
            ],
            exclude: Vec::new(),
            wall_clock: Vec::new(),
            wall_clock_exempt: Vec::new(),
            unsafe_allowed: Vec::new(),
            hot_path: Vec::new(),
            blocking: Vec::new(),
            ordering_exempt: Vec::new(),
            baseline: Vec::new(),
        }
    }
}

/// A config-load or parse error, with the line it happened on.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `analyze.toml` (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "analyze.toml: {}", self.message)
        } else {
            write!(f, "analyze.toml:{}: {}", self.line, self.message)
        }
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError {
        line,
        message: message.into(),
    })
}

impl Config {
    /// Loads and parses the config file at `path`.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(e) => err(0, format!("unreadable ({e}) at {}", path.display())),
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        // The [[baseline]] entry currently being accumulated.
        #[derive(Default)]
        struct Pending {
            at: usize,
            file: Option<String>,
            lint: Option<String>,
            reason: Option<String>,
        }
        let mut section = String::new();
        let mut entry: Option<Pending> = None;

        macro_rules! flush_entry {
            () => {
                if let Some(p) = entry.take() {
                    match (p.file, p.lint, p.reason) {
                        (Some(file), Some(lint), Some(reason)) => {
                            cfg.baseline.push(BaselineEntry { file, lint, reason });
                        }
                        _ => {
                            return err(
                                p.at,
                                "[[baseline]] entry needs `file`, `lint` and `reason`",
                            )
                        }
                    }
                }
            };
        }

        let raw_lines: Vec<&str> = text.lines().collect();
        let mut idx = 0;
        while idx < raw_lines.len() {
            let lineno = idx + 1;
            let mut joined;
            let mut line = strip_comment(raw_lines[idx]).trim();
            // Join a multi-line array: `key = [` … `]` possibly spread
            // over several lines.
            if line.contains('[') && line.contains('=') && !line.contains(']') {
                joined = line.to_string();
                loop {
                    idx += 1;
                    let Some(next) = raw_lines.get(idx) else {
                        return err(lineno, "unterminated array");
                    };
                    joined.push(' ');
                    joined.push_str(strip_comment(next).trim());
                    if joined.contains(']') {
                        break;
                    }
                }
                line = &joined;
            }
            idx += 1;
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if header != "baseline" {
                    return err(lineno, format!("unknown array-of-tables [[{header}]]"));
                }
                flush_entry!();
                section = "baseline".into();
                entry = Some(Pending {
                    at: lineno,
                    ..Pending::default()
                });
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush_entry!();
                match header {
                    "engine" | "scopes" => section = header.into(),
                    other => return err(lineno, format!("unknown section [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lineno, "expected `key = value`");
            };
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), key) {
                ("engine", "lookback") => {
                    cfg.lookback = value
                        .parse::<usize>()
                        .map_err(|_| ConfigError {
                            line: lineno,
                            message: format!("lookback must be an integer, got `{value}`"),
                        })?
                        .max(1);
                }
                ("engine", "roots") => cfg.roots = parse_string_array(value, lineno)?,
                ("engine", "exclude") => cfg.exclude = parse_string_array(value, lineno)?,
                ("scopes", "wall_clock") => cfg.wall_clock = parse_string_array(value, lineno)?,
                ("scopes", "wall_clock_exempt") => {
                    cfg.wall_clock_exempt = parse_string_array(value, lineno)?
                }
                ("scopes", "unsafe_allowed") => {
                    cfg.unsafe_allowed = parse_string_array(value, lineno)?
                }
                ("scopes", "hot_path") => cfg.hot_path = parse_string_array(value, lineno)?,
                ("scopes", "blocking") => cfg.blocking = parse_string_array(value, lineno)?,
                ("scopes", "ordering_exempt") => {
                    cfg.ordering_exempt = parse_string_array(value, lineno)?
                }
                ("baseline", "file" | "lint" | "reason") => {
                    let s = parse_string(value, lineno)?;
                    let slot = entry
                        .as_mut()
                        .expect("in [[baseline]] section, an entry is open");
                    match key {
                        "file" => slot.file = Some(s),
                        "lint" => slot.lint = Some(s),
                        _ => slot.reason = Some(s),
                    }
                }
                (sec, key) => {
                    return err(lineno, format!("unknown key `{key}` in section [{sec}]"))
                }
            }
        }
        flush_entry!();
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or(ConfigError {
            line,
            message: format!("expected a quoted string, got `{v}`"),
        })
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return err(line, format!("expected an array of strings, got `{v}`"));
    };
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, line)?);
    }
    Ok(out)
}

/// Whether `rel` falls under a scope `entry`: an exact match for file
/// entries (`….rs`), a directory-prefix match otherwise.
pub fn scope_matches(entry: &str, rel: &str) -> bool {
    if entry.ends_with(".rs") {
        rel == entry
    } else {
        rel.strip_prefix(entry)
            .is_some_and(|rest| rest.starts_with('/'))
    }
}

/// Whether `rel` falls under any entry of `scope`.
pub fn in_scope(scope: &[String], rel: &str) -> bool {
    scope.iter().any(|e| scope_matches(e, rel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(
            r#"
# comment
[engine]
lookback = 7
roots = ["src", "crates"]
exclude = ["xtask/tests"] # trailing comment

[scopes]
wall_clock = ["crates/net/src", "crates/core/src"]
wall_clock_exempt = ["crates/net/src/clock.rs"]
unsafe_allowed = ["crates/net/src/intake.rs"]
hot_path = ["crates/core/src/slab.rs"]
blocking = ["crates/net/src/shard.rs"]
ordering_exempt = ["crates/check", "crates/bench"]

[[baseline]]
file = "crates/foo/src/bar.rs"
lint = "blocking-call"
reason = "legacy sleep, tracked in #42"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.lookback, 7);
        assert_eq!(cfg.roots, ["src", "crates"]);
        assert_eq!(cfg.wall_clock_exempt, ["crates/net/src/clock.rs"]);
        assert_eq!(cfg.baseline.len(), 1);
        assert_eq!(cfg.baseline[0].lint, "blocking-call");
        assert!(cfg.baseline[0].reason.contains("#42"));
    }

    #[test]
    fn parses_multi_line_arrays() {
        let cfg = Config::parse(
            "[scopes]\nhot_path = [\n    \"a.rs\", # per-heartbeat\n    \"b.rs\",\n]\n",
        )
        .expect("parses");
        assert_eq!(cfg.hot_path, ["a.rs", "b.rs"]);
        assert!(Config::parse("[scopes]\nhot_path = [\n    \"a.rs\",\n").is_err());
    }

    #[test]
    fn rejects_unknown_keys_and_sections() {
        assert!(Config::parse("[engine]\nbogus = 3\n").is_err());
        assert!(Config::parse("[mystery]\n").is_err());
        assert!(Config::parse("[engine]\nlookback = \"ten\"\n").is_err());
    }

    #[test]
    fn baseline_requires_all_three_fields() {
        let r = Config::parse("[[baseline]]\nfile = \"a.rs\"\nlint = \"x\"\n");
        assert!(r.is_err(), "reason is mandatory");
    }

    #[test]
    fn scope_matching_is_exact_for_files_and_prefix_for_dirs() {
        assert!(scope_matches("crates/net/src", "crates/net/src/shard.rs"));
        assert!(!scope_matches("crates/net/src", "crates/net/srcx/f.rs"));
        assert!(scope_matches(
            "crates/net/src/clock.rs",
            "crates/net/src/clock.rs"
        ));
        assert!(!scope_matches(
            "crates/net/src/clock.rs",
            "crates/net/src/clock.rs2"
        ));
        assert!(in_scope(
            &["crates/core/src".into()],
            "crates/core/src/wheel.rs"
        ));
    }

    #[test]
    fn hash_inside_quoted_string_is_not_a_comment() {
        let cfg = Config::parse(
            "[[baseline]]\nfile = \"a.rs\"\nlint = \"x\"\nreason = \"tracked in #7\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.baseline[0].reason, "tracked in #7");
    }
}
