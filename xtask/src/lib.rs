//! `twofd`'s static-analysis engine, driven by `cargo xtask analyze`.
//!
//! Structure (DESIGN.md §17):
//!
//! - [`lex`] — a dependency-free Rust lexer that splits each line into
//!   a blanked *code* view and a *comment* view, so lints run on real
//!   code tokens instead of substring matches.
//! - [`config`] — `analyze.toml`: lint scopes, the unified
//!   justification lookback window, and the suppression baseline.
//! - [`lints`] — the [`lints::Lint`] trait and the eight-rule
//!   catalogue (SAFETY comments, unsafe isolation, wall-clock ban,
//!   atomic-ordering allowlist, hot-path panic freedom, allocation
//!   discipline, blocking-call ban, atomic release/acquire pairing).
//! - [`engine`] — file collection, per-file context construction,
//!   catalogue execution, baseline partitioning.
//! - [`report`] — `text` / `json` / `sarif` rendering.
//!
//! The library form exists so `xtask/tests/` (the golden-file harness)
//! can drive [`engine::analyze_sources`] directly on fixture corpora.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lex;
pub mod lints;
pub mod report;
