//! `cargo xtask analyze` — the repo's static-analysis driver.
//!
//! Pure-std, dependency-free, line-based lints that CI enforces on
//! every push (see DESIGN.md §13). Four rules:
//!
//! 1. **SAFETY comments.** Every `unsafe` site must carry a
//!    `// SAFETY:` justification on the same line or in the
//!    comment/attribute block immediately above it.
//! 2. **Unsafe isolation.** Every crate root (`src/lib.rs`,
//!    `crates/*/src/lib.rs`, `vendor/*/src/lib.rs`) declares
//!    `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`, and
//!    `unsafe` tokens appear only in `crates/net/src/intake.rs` (the
//!    single libc-facing module).
//! 3. **Wall-clock ban.** `Instant::now()` / `SystemTime::now()` are
//!    forbidden in `crates/net/src` (outside `clock.rs`),
//!    `crates/core/src`, `crates/cluster/src`, and
//!    `crates/federation/src` production code:
//!    per-heartbeat hot paths must route through the shard clock so
//!    time is injectable and cheap, the core detector/wheel/slab layer
//!    is a pure function of the timestamps it is handed, and the
//!    cluster simulator exists to run on a virtual timeline — a hidden
//!    wall-clock read in any of them would break replay determinism.
//!    A justified exception is marked `// xtask:allow(wall_clock)` on
//!    the same or preceding line.
//! 4. **Atomic-ordering allowlist.** `Acquire`, `Release` and `AcqRel`
//!    are free. `Ordering::Relaxed` requires an `ordering:`
//!    justification comment within the preceding 12 lines.
//!    `Ordering::SeqCst` is banned outright — the last use (the clock
//!    watermark) was demoted to Acquire/Release and the demotion is
//!    model-checked in `crates/check/tests/clock_model.rs`. Scope:
//!    production code under `src/` directories, excluding
//!    `crates/check` (the model checker implements the orderings) and
//!    `crates/bench`.
//!
//! Lines past the first `#[cfg(test)]` in a file are treated as test
//! code and exempt from rules 3 and 4.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint violation: repo-relative path, 1-based line, message.
struct Finding {
    file: String,
    line: usize,
    message: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {}
        other => {
            eprintln!(
                "usage: cargo xtask analyze   (got {:?})",
                other.unwrap_or("<nothing>")
            );
            return ExitCode::from(2);
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf();
    let findings = analyze(&root);
    for f in &findings {
        println!("{}:{}: {}", f.file, f.line, f.message);
    }
    if findings.is_empty() {
        println!("xtask analyze: ok (0 findings)");
        ExitCode::SUCCESS
    } else {
        println!("xtask analyze: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Runs all four lints over the workspace rooted at `root`.
fn analyze(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for top in ["src", "tests", "crates", "vendor"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .expect("collected under root")
            .to_string_lossy()
            .replace('\\', "/");
        let content = match fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                findings.push(Finding {
                    file: rel,
                    line: 0,
                    message: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let lines: Vec<&str> = content.lines().collect();

        // Rule 2a: crate roots must forbid/deny unsafe_code.
        if is_crate_root(&rel) && !has_unsafe_code_attr(&content) {
            findings.push(Finding {
                file: rel.clone(),
                line: 1,
                message: "crate root without `#![forbid(unsafe_code)]` \
                          or `#![deny(unsafe_code)]`"
                    .into(),
            });
        }

        // Rule 1: SAFETY comments (everywhere, tests included).
        for (line, message) in missing_safety_comments(&lines) {
            findings.push(Finding {
                file: rel.clone(),
                line,
                message,
            });
        }

        // Rule 2b: unsafe tokens only in intake.rs.
        if rel != "crates/net/src/intake.rs" {
            for (idx, l) in lines.iter().enumerate() {
                if is_unsafe_site(l) {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: idx + 1,
                        message: "`unsafe` outside crates/net/src/intake.rs \
                                  (the designated libc boundary)"
                            .into(),
                    });
                }
            }
        }

        // Rule 3: wall-clock ban in net and core production code.
        if in_wall_clock_scope(&rel) {
            for (line, message) in wall_clock_findings(&lines) {
                findings.push(Finding {
                    file: rel.clone(),
                    line,
                    message,
                });
            }
        }

        // Rule 4: ordering allowlist in production src code.
        let in_ordering_scope = (rel.starts_with("src/") || rel.contains("/src/"))
            && !rel.starts_with("crates/check/")
            && !rel.starts_with("crates/bench/");
        if in_ordering_scope {
            for (line, message) in ordering_findings(&lines) {
                findings.push(Finding {
                    file: rel.clone(),
                    line,
                    message,
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Recursively gathers `.rs` files, skipping `target/` build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Rule 3 scope: net production code (minus the clock module, which
/// exists to do the wall-clock read once), the whole core crate
/// (detectors, wheel, slab — pure functions of their timestamps), the
/// cluster simulator (virtual time only, by definition), and the
/// federation tier (clock-free by design — explicit `now` parameters
/// keep the digest/adoption protocol replayable).
fn in_wall_clock_scope(rel: &str) -> bool {
    (rel.starts_with("crates/net/src/") && rel != "crates/net/src/clock.rs")
        || rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/cluster/src/")
        || rel.starts_with("crates/federation/src/")
}

/// Crate roots that must carry the unsafe_code attribute.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
        || (rel.starts_with("vendor/") && rel.ends_with("/src/lib.rs"))
}

fn has_unsafe_code_attr(content: &str) -> bool {
    content.contains("#![forbid(unsafe_code)]") || content.contains("#![deny(unsafe_code)]")
}

/// The code portion of a line: everything before a `//` comment.
/// (Naive about `//` inside string literals; good enough for a lint.)
fn code_part(line: &str) -> &str {
    line.split("//").next().unwrap_or("")
}

/// Whether `haystack` contains `word` with non-identifier characters
/// (or string boundaries) on both sides.
fn contains_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let i = start + pos;
        let before_ok = i == 0 || {
            let c = bytes[i - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        let j = i + word.len();
        let after_ok = j >= bytes.len() || {
            let c = bytes[j];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// An `unsafe` keyword in code (not in a comment, not part of the
/// `unsafe_code` / `unsafe_op_in_unsafe_fn` lint names).
fn is_unsafe_site(line: &str) -> bool {
    let code = code_part(line);
    if code.contains("unsafe_code") || code.contains("unsafe_op_in_unsafe_fn") {
        return false;
    }
    contains_word(code, "unsafe")
}

/// Rule 1: every unsafe site needs `SAFETY:` on the same line or in
/// the comment/attribute block directly above (searched up to 10
/// lines, skipping blank and `#[...]` attribute lines).
fn missing_safety_comments(lines: &[&str]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if !is_unsafe_site(line) || line.contains("SAFETY:") {
            continue;
        }
        let mut justified = false;
        for (looked, back) in lines[..idx].iter().rev().enumerate() {
            if looked >= 10 {
                break;
            }
            let t = back.trim_start();
            if t.starts_with("//") {
                if t.contains("SAFETY:") {
                    justified = true;
                    break;
                }
            } else if !(t.is_empty() || t.starts_with("#[")) {
                break; // real code: the comment block (if any) ended
            }
        }
        if !justified {
            out.push((
                idx + 1,
                "`unsafe` without a `// SAFETY:` comment on or above it".into(),
            ));
        }
    }
    out
}

/// Lines before the first `#[cfg(test)]` — the production prefix.
fn production_prefix<'a>(lines: &'a [&'a str]) -> &'a [&'a str] {
    let cut = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)"))
        .unwrap_or(lines.len());
    &lines[..cut]
}

/// Rule 3: wall-clock reads outside clock.rs, unless marked
/// `xtask:allow(wall_clock)` on the same or preceding line.
fn wall_clock_findings(lines: &[&str]) -> Vec<(usize, String)> {
    let prod = production_prefix(lines);
    let mut out = Vec::new();
    for (idx, line) in prod.iter().enumerate() {
        let code = code_part(line);
        if !(code.contains("Instant::now()") || code.contains("SystemTime::now()")) {
            continue;
        }
        let marked = line.contains("xtask:allow(wall_clock)")
            || prod[..idx]
                .iter()
                .rev()
                .take_while(|l| l.trim_start().starts_with("//"))
                .any(|l| l.contains("xtask:allow(wall_clock)"));
        if !marked {
            out.push((
                idx + 1,
                "wall-clock read in net/core production code outside \
                 clock.rs (route through the shard clock, or mark \
                 `// xtask:allow(wall_clock)`)"
                    .into(),
            ));
        }
    }
    out
}

/// Whether any of `lines` carries an `ordering:` justification marker.
/// `Ordering::` itself lowercases to `ordering::` — the double colon
/// disqualifies it, so a bare use is never its own justification.
fn has_ordering_marker(lines: &[&str]) -> bool {
    lines.iter().any(|l| {
        let low = l.to_ascii_lowercase();
        let mut start = 0;
        while let Some(pos) = low[start..].find("ordering:") {
            let i = start + pos;
            let j = i + "ordering:".len();
            if low.as_bytes().get(j) != Some(&b':') {
                return true;
            }
            start = j;
        }
        false
    })
}

/// Rule 4: `Relaxed` needs a nearby `ordering:` comment; `SeqCst` is
/// banned (the clock watermark demotion removed the last use).
fn ordering_findings(lines: &[&str]) -> Vec<(usize, String)> {
    let prod = production_prefix(lines);
    let mut out = Vec::new();
    for (idx, line) in prod.iter().enumerate() {
        let code = code_part(line);
        if code.contains("Ordering::SeqCst") {
            out.push((
                idx + 1,
                "`Ordering::SeqCst` in production code (use \
                 Acquire/Release; the clock-watermark demotion is \
                 model-checked in crates/check/tests/clock_model.rs)"
                    .into(),
            ));
        }
        if code.contains("Ordering::Relaxed") {
            let lo = idx.saturating_sub(12);
            if !has_ordering_marker(&prod[lo..=idx]) {
                out.push((
                    idx + 1,
                    "`Ordering::Relaxed` without an `ordering:` \
                     justification comment within the preceding 12 lines"
                        .into(),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &str) -> Vec<&str> {
        s.lines().collect()
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = lines("fn f() {\n    let p = unsafe { std::ptr::null::<u8>() };\n}\n");
        let got = missing_safety_comments(&src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let above = lines(
            "fn f() {\n    // SAFETY: null is a valid *const u8.\n    \
             let p = unsafe { std::ptr::null::<u8>() };\n}\n",
        );
        assert!(missing_safety_comments(&above).is_empty());
        let inline = lines("unsafe { go() } // SAFETY: go has no preconditions.\n");
        assert!(missing_safety_comments(&inline).is_empty());
    }

    #[test]
    fn safety_comment_survives_attributes_and_blank_lines() {
        let src = lines(
            "// SAFETY: the fd is owned by this struct.\n#[inline]\n\n\
             unsafe fn close_it(fd: i32) {}\n",
        );
        assert!(missing_safety_comments(&src).is_empty());
    }

    #[test]
    fn lint_attributes_are_not_unsafe_sites() {
        assert!(!is_unsafe_site("#![deny(unsafe_op_in_unsafe_fn)]"));
        assert!(!is_unsafe_site("#![forbid(unsafe_code)]"));
        assert!(!is_unsafe_site("// unsafe in a comment"));
        assert!(is_unsafe_site("unsafe impl Send for X {}"));
    }

    #[test]
    fn wall_clock_is_flagged_without_marker() {
        let src = lines("fn f() {\n    let t = std::time::Instant::now();\n}\n");
        let got = wall_clock_findings(&src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
    }

    #[test]
    fn wall_clock_marker_and_test_code_pass() {
        let marked = lines(
            "fn f() {\n    // xtask:allow(wall_clock) — sweep-duration metric only.\n    \
             let t = std::time::Instant::now();\n}\n",
        );
        assert!(wall_clock_findings(&marked).is_empty());
        let test_only = lines("#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n");
        assert!(wall_clock_findings(&test_only).is_empty());
    }

    #[test]
    fn relaxed_without_justification_is_flagged() {
        let src = lines("fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n");
        let got = ordering_findings(&src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
    }

    #[test]
    fn relaxed_with_nearby_justification_passes() {
        let src = lines(
            "fn f(a: &AtomicU64) {\n    // ordering: Relaxed — single-cell stat counter.\n    \
             a.load(Ordering::Relaxed);\n}\n",
        );
        assert!(ordering_findings(&src).is_empty());
    }

    #[test]
    fn a_bare_use_is_not_its_own_justification() {
        // `Ordering::Relaxed` lowercases to contain "ordering::" — the
        // double colon must not satisfy the marker.
        assert!(!has_ordering_marker(&["a.load(Ordering::Relaxed);"]));
        assert!(has_ordering_marker(&["// ordering: justified because…"]));
    }

    #[test]
    fn seqcst_is_flagged_everywhere() {
        let src = lines("fn f(a: &AtomicU64) {\n    a.load(Ordering::SeqCst);\n}\n");
        assert_eq!(ordering_findings(&src).len(), 1);
    }

    #[test]
    fn acquire_release_are_free() {
        let src = lines(
            "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Release);\n    \
             a.load(Ordering::Acquire);\n    a.fetch_add(1, Ordering::AcqRel);\n}\n",
        );
        assert!(ordering_findings(&src).is_empty());
    }

    #[test]
    fn wall_clock_scope_covers_net_core_and_cluster() {
        assert!(in_wall_clock_scope("crates/net/src/shard.rs"));
        assert!(in_wall_clock_scope("crates/core/src/wheel.rs"));
        assert!(in_wall_clock_scope("crates/core/src/multi.rs"));
        assert!(in_wall_clock_scope("crates/cluster/src/sim.rs"));
        assert!(in_wall_clock_scope("crates/cluster/src/scenarios.rs"));
        assert!(in_wall_clock_scope("crates/federation/src/relay.rs"));
        assert!(in_wall_clock_scope("crates/federation/src/digest.rs"));
        assert!(!in_wall_clock_scope("crates/net/src/clock.rs"));
        assert!(!in_wall_clock_scope(
            "crates/bench/benches/shard_throughput.rs"
        ));
        assert!(!in_wall_clock_scope("crates/sim/src/time.rs"));
    }

    #[test]
    fn crate_root_attr_detection() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/net/src/lib.rs"));
        assert!(is_crate_root("vendor/rand/src/lib.rs"));
        assert!(!is_crate_root("crates/net/src/wire.rs"));
        assert!(has_unsafe_code_attr("#![forbid(unsafe_code)]\n"));
        assert!(has_unsafe_code_attr("#![deny(unsafe_code)]\n"));
        assert!(!has_unsafe_code_attr("#![warn(missing_docs)]\n"));
    }

    #[test]
    fn the_repo_itself_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .to_path_buf();
        let findings = analyze(&root);
        let rendered: Vec<String> = findings
            .iter()
            .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
            .collect();
        assert!(
            findings.is_empty(),
            "xtask analyze found violations:\n{}",
            rendered.join("\n")
        );
    }
}
