//! `cargo xtask analyze` — CLI front-end for the static-analysis
//! engine in the `xtask` library (see `src/lib.rs` and DESIGN.md §17).
//!
//! ```text
//! cargo xtask analyze [--format text|json|sarif] [--config PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale baseline entries),
//! 2 usage/config error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::config::Config;
use xtask::engine::analyze_workspace;
use xtask::report::{render, Format};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {}
        other => {
            eprintln!(
                "usage: cargo xtask analyze [--format text|json|sarif] [--config PATH] \
                 (got {:?})",
                other.unwrap_or("<nothing>")
            );
            return ExitCode::from(2);
        }
    }

    let mut format = Format::Text;
    let mut config_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref().and_then(Format::parse) {
                Some(f) => format = f,
                None => {
                    eprintln!("--format expects one of: text, json, sarif");
                    return ExitCode::from(2);
                }
            },
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--config expects a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf();
    let config_path = config_path.unwrap_or_else(|| root.join("analyze.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let analysis = match analyze_workspace(&root, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", render(&analysis, format));
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
