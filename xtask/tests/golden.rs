//! Golden-file harness for the static-analysis engine.
//!
//! Each fixture under `tests/fixtures/` is a Rust source fed through
//! the full lint catalogue with the repo's real `analyze.toml` policy,
//! and its findings are compared — exactly, line by line — against a
//! sibling `.expected` file. A fixture directory (instead of a single
//! `.rs` file) is a multi-file corpus sharing one `expected.txt`,
//! which is how the cross-file atomic-pairing pass is exercised.
//!
//! Fixture directives, in comments at the top of each `.rs` file:
//!
//! - `//@ path: crates/net/src/foo.rs` — the pretend repo-relative
//!   path the fixture is analyzed under (this is what selects which
//!   scopes apply). Required.
//! - `//@ baseline: <lint> <reason…>` — adds a suppression-baseline
//!   entry for this fixture's path, to exercise the baseline machinery
//!   without carrying any entry in the workspace `analyze.toml`.
//!
//! Expected-file lines (empty lines and `#` comments ignored):
//!
//! - `<path>:<line>: <lint>` — an unbaselined finding.
//! - `baselined <path>:<line>: <lint>` — a finding absorbed by a
//!   `//@ baseline:` directive.

use std::path::{Path, PathBuf};
use xtask::config::{BaselineEntry, Config};
use xtask::engine::{analyze_sources, analyze_workspace};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

fn policy() -> Config {
    Config::load(&repo_root().join("analyze.toml")).expect("analyze.toml parses")
}

/// Extracts `//@ key: value` directives from a fixture source.
fn directives<'a>(src: &'a str, key: &str) -> Vec<&'a str> {
    let prefix = format!("//@ {key}:");
    src.lines()
        .filter_map(|l| l.trim().strip_prefix(&prefix))
        .map(str::trim)
        .collect()
}

/// Loads one fixture file into `(pretend_path, source)` and appends
/// its `//@ baseline:` directives to `cfg`.
fn load_fixture(path: &Path, cfg: &mut Config) -> (String, String) {
    let src =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let rels = directives(&src, "path");
    assert_eq!(
        rels.len(),
        1,
        "{}: exactly one `//@ path:` directive required",
        path.display()
    );
    let rel = rels[0].to_string();
    for b in directives(&src, "baseline") {
        let (lint, reason) = b
            .split_once(' ')
            .unwrap_or_else(|| panic!("{}: `//@ baseline: <lint> <reason>`", path.display()));
        cfg.baseline.push(BaselineEntry {
            file: rel.clone(),
            lint: lint.to_string(),
            reason: reason.to_string(),
        });
    }
    (rel, src)
}

/// Renders an analysis in the expected-file format, sorted.
fn actual_lines(a: &xtask::engine::Analysis) -> Vec<String> {
    let mut out: Vec<String> = a
        .findings
        .iter()
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.lint))
        .chain(
            a.baselined
                .iter()
                .map(|(f, _)| format!("baselined {}:{}: {}", f.file, f.line, f.lint)),
        )
        .collect();
    out.sort();
    out
}

fn expected_lines(path: &Path) -> Vec<String> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut out: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    out.sort();
    out
}

fn check_corpus(name: &str, sources: Vec<(String, String)>, cfg: &Config, expected: &Path) {
    let analysis = analyze_sources(&sources, cfg);
    assert!(
        analysis.stale_baseline.is_empty(),
        "{name}: stale baseline entries: {:?}",
        analysis.stale_baseline
    );
    let actual = actual_lines(&analysis);
    let expected = expected_lines(expected);
    assert_eq!(
        actual, expected,
        "{name}: findings diverge from the golden file\n  actual:   {actual:#?}\n  \
         expected: {expected:#?}"
    );
}

#[test]
fn golden_fixtures_match_expected_findings() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&fixtures)
        .expect("tests/fixtures exists")
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    let mut corpora = 0;
    for entry in entries {
        let name = entry.file_name().unwrap().to_string_lossy().to_string();
        if entry.is_dir() {
            // Multi-file corpus: every .rs inside, one expected.txt.
            let mut cfg = policy();
            let mut files: Vec<PathBuf> = std::fs::read_dir(&entry)
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect();
            files.sort();
            assert!(
                !files.is_empty(),
                "{name}: corpus directory without .rs files"
            );
            let sources = files
                .iter()
                .map(|f| load_fixture(f, &mut cfg))
                .collect::<Vec<_>>();
            check_corpus(&name, sources, &cfg, &entry.join("expected.txt"));
            corpora += 1;
        } else if entry.extension().is_some_and(|x| x == "rs") {
            let mut cfg = policy();
            let source = load_fixture(&entry, &mut cfg);
            check_corpus(&name, vec![source], &cfg, &entry.with_extension("expected"));
            corpora += 1;
        }
    }
    // Every lint's fire and allow path lives somewhere in the corpus;
    // a refactor that silently drops fixtures should fail loudly.
    assert!(
        corpora >= 9,
        "expected at least 9 fixture corpora, found {corpora}"
    );
}

/// The workspace itself is clean under the full catalogue — the same
/// check CI runs via `cargo xtask analyze`, kept as a test so a plain
/// `cargo test -p xtask` catches violations too.
#[test]
fn the_repo_itself_is_clean() {
    let root = repo_root();
    let analysis = analyze_workspace(&root, &policy()).expect("workspace scan succeeds");
    assert!(
        analysis.is_clean(),
        "workspace has {} finding(s) / {} stale baseline entr(ies):\n{}",
        analysis.findings.len(),
        analysis.stale_baseline.len(),
        analysis
            .findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}\n", f.file, f.line, f.lint, f.message))
            .chain(
                analysis
                    .stale_baseline
                    .iter()
                    .map(|s| format!("  stale: {s}\n"))
            )
            .collect::<String>()
    );
}
