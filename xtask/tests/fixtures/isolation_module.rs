//@ path: crates/core/src/qos.rs
// Fixture: unsafe-isolation — `unsafe` outside the designated boundary
// fires even when the SAFETY comment is present.

pub fn fire() {
    // SAFETY: justified, but still in the wrong module.
    let p = unsafe { danger() };
}
