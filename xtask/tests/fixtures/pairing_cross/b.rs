//@ path: crates/net/src/pair_b.rs
// Second half of the pairing corpus: the acquire side of `ready`.

pub fn consume(s: &S) -> bool {
    s.ready.load(Ordering::Acquire)
}
