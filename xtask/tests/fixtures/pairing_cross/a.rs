//@ path: crates/net/src/pair_a.rs
// Fixture: atomic-pairing — `ready` pairs across files (see b.rs),
// `orphan` has no acquire side anywhere and fires, and `waived`
// carries the one-sided waiver.

pub fn publish(s: &S) {
    s.ready.store(true, Ordering::Release);
    s.orphan.store(true, Ordering::Release);
}

pub fn waived(s: &S) {
    // xtask:allow(one_sided) — fixture: the acquire side lives behind
    // a helper the static pass cannot attribute.
    s.waived.store(true, Ordering::Release);
}
