//@ path: crates/trace/src/lib.rs
// Fixture: unsafe-isolation — a crate root without
// `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` fires at line 1.

pub mod nothing {}
