//@ path: crates/core/src/slab.rs
// Fixture: hotpath-alloc — fire on vec!/format!, allow Vec::new with a
// justification, and leave the sanctioned with_capacity alone.

pub fn fire() {
    let v = vec![1, 2, 3];
    let s = format!("x{}", 1);
}

pub fn allowed() {
    // hotpath:allow(alloc) — fixture: construction path, runs once.
    let v: Vec<u8> = Vec::new();
}

pub fn sanctioned() {
    let v: Vec<u8> = Vec::with_capacity(64);
}
