//@ path: crates/obs/src/gauge.rs
// Fixture: atomic-ordering rule — Relaxed needs a written
// justification marker, SeqCst is banned, and neither fires from doc
// comments or string literals. (The marker itself is deliberately not
// spelled in this header: it would justify the lines below.)

pub fn fire_relaxed(a: &AtomicU64) {
    a.load(Ordering::Relaxed);
}

pub fn allowed_relaxed(a: &AtomicU64) {
    // ordering: fixture — single stat cell, no cross-cell invariant.
    a.load(Ordering::Relaxed);
}

pub fn fire_seqcst(a: &AtomicU64) {
    a.store(1, Ordering::SeqCst);
}

/// Doc prose naming `Ordering::SeqCst` is not a use.
pub fn doc_only() {
    let s = "Ordering::SeqCst";
}
