//@ path: crates/net/src/shard.rs
// Fixture: blocking-call — fire on sleep and lock, allow with a bound,
// and ignore Mutex construction.

pub fn fire(m: &Mutex<u32>) {
    thread::sleep(Duration::from_millis(1));
    let g = m.lock();
}

pub fn allowed(m: &Mutex<u32>) {
    // hotpath:allow(block) — fixture: uncontended, O(1) section.
    let g = m.lock();
}

pub fn construction() {
    let m = Mutex::new(0);
}
