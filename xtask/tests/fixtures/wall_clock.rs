//@ path: crates/sim/src/engine.rs
// Fixture: wall-clock — the extended scope (crates/sim/src) fires on
// both clock reads, honors the allow marker, and skips string literals
// and test code.

pub fn fire() {
    let t = std::time::Instant::now();
    let u = std::time::SystemTime::now();
}

pub fn allowed() {
    // xtask:allow(wall_clock) — fixture: measuring only.
    let t = std::time::Instant::now();
}

pub fn in_string() {
    let s = "Instant::now()";
}

#[cfg(test)]
mod tests {
    fn free_here() {
        let t = std::time::Instant::now();
    }
}
