//@ path: crates/core/src/wheel.rs
// Fixture: hotpath-panic — fire on unwrap and panic!, allow with a
// written invariant, and ignore lookalikes.

pub fn fire(x: Option<u32>) {
    let v = x.unwrap();
    panic!("boom");
}

pub fn allowed(x: Option<u32>) {
    // hotpath:allow(panic) — fixture: invariant makes None impossible.
    let v = x.unwrap();
}

pub fn lookalikes(x: Option<u32>) {
    let v = x.unwrap_or(0);
}
