//@ path: crates/core/src/wheel.rs
//@ baseline: hotpath-panic legacy fixture debt, exercised by the golden suite
// Fixture: suppression baseline — the finding is absorbed (reported as
// baselined, not failing), and the entry is not stale.

pub fn debt(x: Option<u32>) {
    let v = x.unwrap();
}
