//@ path: crates/net/src/intake.rs
// Fixture: safety-comment — fire and allow paths, plus the
// string-literal regression (satellite: `unsafe` in a string must not
// count as an unsafe site).

pub fn fire() {
    let p = unsafe { danger() };
}

pub fn allowed() {
    // SAFETY: `danger` has no preconditions in this fixture.
    let p = unsafe { danger() };
}

pub fn in_string() {
    let s = "unsafe";
}
