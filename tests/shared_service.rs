//! Integration tests of the shared failure-detection service (§V):
//! detection budgets preserved exactly, network load reduced, adapted
//! applications' QoS improved.

use twofd::prelude::*;
use twofd::service::{load_report, SharedServiceDetector};
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

fn registry() -> AppRegistry {
    let mut r = AppRegistry::new();
    r.register("strict", QosSpec::new(0.4, 86_400.0, 0.4));
    r.register("medium", QosSpec::new(1.5, 3_600.0, 1.0));
    r.register("lax", QosSpec::new(6.0, 600.0, 3.0));
    r
}

fn net() -> NetworkBehavior {
    NetworkBehavior::new(0.01, 0.01 * 0.01)
}

#[test]
fn combined_config_preserves_every_detection_budget() {
    let r = registry();
    let cfg = combine(&r, &net()).unwrap();
    for (share, app) in cfg.shares.iter().zip(r.apps()) {
        let budget = (cfg.interval + share.shared_margin).as_secs_f64();
        assert!((budget - app.qos.detection_time).abs() < 1e-6);
    }
}

#[test]
fn shared_stream_reduces_messages() {
    let cfg = combine(&registry(), &net()).unwrap();
    let report = load_report(&cfg, Span::from_secs(3600));
    assert!(report.reduction_factor > 1.0);
    assert!(report.shared_messages < report.dedicated_messages);
    assert_eq!(
        report.messages_saved,
        report.dedicated_messages - report.shared_messages
    );
}

#[test]
fn adapted_apps_qos_improves_or_holds_in_replay() {
    let r = registry();
    let analysis = analyze(
        &r,
        &net(),
        &DetectorSpec::Chen { window: 1000 },
        Span::from_secs(3600),
        |interval| {
            let n = (1_800.0 / interval.as_secs_f64()).ceil() as u64;
            let scenario = NetworkScenario::uniform(
                "svc",
                n.max(2),
                DelaySpec::Iid {
                    dist: DistSpec::LogNormal {
                        mean: 0.02,
                        std_dev: 0.01,
                    },
                    floor_nanos: 100_000,
                },
                LossSpec::Bernoulli { p: 0.01 },
            );
            generate_scripted("svc", interval, scenario, 31, None)
        },
    )
    .unwrap();

    for app in &analysis.apps {
        if app.adapted {
            assert!(
                app.shared.mistake_rate <= app.dedicated.mistake_rate + 1e-9,
                "{}: shared rate {} vs dedicated {}",
                app.name,
                app.shared.mistake_rate,
                app.dedicated.mistake_rate
            );
        }
    }
    // The strictest app is never adapted.
    assert!(!analysis.apps[0].adapted);
    assert!(analysis.apps[1].adapted && analysis.apps[2].adapted);
}

#[test]
fn live_service_crash_detected_within_each_budget() {
    let r = registry();
    let cfg = combine(&r, &net()).unwrap();
    let crash_at = Nanos::from_secs(30);
    let n = (60.0 / cfg.interval.as_secs_f64()) as u64;
    let scenario = NetworkScenario::uniform(
        "live",
        n,
        DelaySpec::Constant { nanos: 5_000_000 },
        LossSpec::None,
    );
    let trace = generate_scripted("live", cfg.interval, scenario, 41, Some(crash_at));

    let mut svc = SharedServiceDetector::new(&cfg, &DetectorSpec::default());
    for a in trace.arrivals() {
        svc.on_heartbeat(a.seq, a.at);
    }
    for (share, app) in cfg.shares.iter().zip(r.apps()) {
        let budget = Span::from_secs_f64(app.qos.detection_time);
        // Shortly before the budget expires (minus slack for delay and
        // estimator noise) the app may still trust; at the budget plus
        // slack it must suspect.
        let at_budget = crash_at + budget + Span::from_millis(200);
        assert_eq!(
            svc.output_for(share.id, at_budget),
            Some(FdOutput::Suspect),
            "{} failed to suspect within its budget",
            share.name
        );
    }
    // The laxest app must still be trusting when the strictest one has
    // already suspected (staggered detection).
    let probe = crash_at + Span::from_secs_f64(0.4) + Span::from_millis(300);
    assert_eq!(
        svc.output_for(cfg.shares[0].id, probe),
        Some(FdOutput::Suspect)
    );
    assert_eq!(
        svc.output_for(cfg.shares[2].id, probe),
        Some(FdOutput::Trust)
    );
}

#[test]
fn single_app_service_degenerates_to_dedicated() {
    let mut r = AppRegistry::new();
    r.register("only", QosSpec::new(1.0, 3600.0, 1.0));
    let cfg = combine(&r, &net()).unwrap();
    assert_eq!(cfg.shares.len(), 1);
    assert_eq!(cfg.interval, cfg.shares[0].dedicated.interval);
    assert!((load_report(&cfg, Span::from_secs(100)).reduction_factor - 1.0).abs() < 1e-9);
}
