//! Cross-crate property tests: invariants of the replay pipeline over
//! randomly generated network conditions.

use proptest::prelude::*;
use twofd::core::{replay, ChenFd, DetectorSpec, TwoWindowFd};
use twofd::prelude::*;
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

/// Builds a random-but-valid trace from proptest-chosen parameters.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        50u64..400,    // heartbeats
        1u64..200,     // interval ms
        0.0f64..0.4,   // loss
        0.001f64..0.3, // delay mean (s)
        0.0f64..0.1,   // delay std (s)
        any::<u64>(),  // seed
    )
        .prop_map(|(n, interval_ms, loss, mean, std, seed)| {
            let scenario = NetworkScenario::uniform(
                "prop",
                n,
                DelaySpec::Iid {
                    dist: DistSpec::LogNormal {
                        mean,
                        std_dev: std.min(mean), // keep the moment map sane
                    },
                    floor_nanos: 1,
                },
                LossSpec::Bernoulli { p: loss },
            );
            generate_scripted("prop", Span::from_millis(interval_ms), scenario, seed, None)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay invariants hold for every algorithm on any trace.
    #[test]
    fn replay_invariants(trace in arb_trace(), tuning in 0.01f64..5.0) {
        for spec in DetectorSpec::paper_comparison() {
            let mut fd = spec.build(trace.interval, tuning);
            let r = replay(fd.as_mut(), &trace);
            let m = r.metrics();
            prop_assert!((0.0..=1.0).contains(&m.query_accuracy));
            prop_assert!(m.worst_detection_time >= 0.0);
            prop_assert!(r.fresh_heartbeats + r.stale_heartbeats == trace.received() as u64);
            for w in r.mistakes.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            for mk in &r.mistakes {
                prop_assert!(mk.start < mk.end);
                prop_assert!(mk.end <= r.horizon);
            }
        }
    }

    /// Eq. 13 containment as a property over random network conditions.
    ///
    /// The exact per-trace invariant is a *point-set* one: because the
    /// 2W freshness point is the max of the two Chen freshness points,
    /// every instant at which the 2W-FD suspects is an instant at which
    /// both single-window detectors suspect. (Mistake *counts* are not
    /// per-trace monotone: the 2W-FD can restore trust in the middle of
    /// a single long Chen mistake and re-suspect, splitting one mistake
    /// into two. Aggregate counts on realistic traces still favour the
    /// 2W-FD — see tests/containment.rs and the fig6_7 bench.)
    #[test]
    fn containment_property(trace in arb_trace(), margin_ms in 1u64..500, n1 in 1usize..20, extra in 1usize..100) {
        let n2 = n1 + extra;
        let margin = Span::from_millis(margin_ms);
        let mut two = TwoWindowFd::new(n1, n2, trace.interval, margin);
        let mut c1 = ChenFd::new(n1, trace.interval, margin);
        let mut c2 = ChenFd::new(n2, trace.interval, margin);
        let mt = replay(&mut two, &trace).mistakes;
        let m1 = replay(&mut c1, &trace).mistakes;
        let m2 = replay(&mut c2, &trace).mistakes;
        // Total suspicion time is monotone.
        let total = |ms: &[twofd::core::Mistake]| -> u64 {
            ms.iter().map(|m| (m.end - m.start).0).sum()
        };
        prop_assert!(total(&mt) <= total(&m1));
        prop_assert!(total(&mt) <= total(&m2));
        // Point-set containment: each 2W mistake interval is fully
        // covered by the union of each Chen detector's mistakes.
        let covers = |log: &[twofd::core::Mistake], mk: &twofd::core::Mistake| -> bool {
            // Logs are chronological and non-overlapping; walk and check
            // that [start, end) is covered without gaps.
            let mut cursor = mk.start;
            for o in log {
                if o.end <= cursor {
                    continue;
                }
                if o.start > cursor {
                    return false; // gap at `cursor`
                }
                cursor = o.end;
                if cursor >= mk.end {
                    return true;
                }
            }
            cursor >= mk.end
        };
        for mk in &mt {
            prop_assert!(covers(&m1, mk), "2W mistake {mk:?} not covered by chen({n1})");
            prop_assert!(covers(&m2, mk), "2W mistake {mk:?} not covered by chen({n2})");
        }
    }

    /// Suspect time computed from the mistake log always matches
    /// 1 − PA within float tolerance.
    #[test]
    fn accuracy_consistent_with_mistake_log(trace in arb_trace()) {
        let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(50));
        let r = replay(&mut fd, &trace);
        let m = r.metrics();
        let suspect: f64 = r.mistakes.iter().map(|mk| (mk.end - mk.start).as_secs_f64()).sum();
        let observed = r.observed().as_secs_f64();
        if observed > 0.0 {
            let pa = (1.0 - suspect / observed).clamp(0.0, 1.0);
            prop_assert!((pa - m.query_accuracy).abs() < 1e-9);
        }
    }

    /// The binary codec round-trips arbitrary generated traces.
    #[test]
    fn codec_round_trip(trace in arb_trace()) {
        let decoded = twofd::trace::decode_binary(&twofd::trace::encode_binary(&trace)).unwrap();
        prop_assert_eq!(trace, decoded);
    }
}
