//! Additional cross-crate property tests on the estimation substrate:
//! invariants that tie the estimator, the detectors and the metrics
//! together over adversarial inputs.

use proptest::prelude::*;
use twofd::core::{ChenEstimator, FailureDetector, MultiWindowFd, TwoWindowFd};
use twofd::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Growing the window never makes the estimator *forget* the latest
    /// sample's influence entirely: with constant delays, every window
    /// size predicts the same next arrival.
    #[test]
    fn constant_delays_make_window_size_irrelevant(
        delay_ms in 0u64..1_000,
        n in 1u64..200,
        w1 in 1usize..50,
        w2 in 50usize..2_000,
    ) {
        let interval = Span::from_millis(100);
        let mut small = ChenEstimator::new(w1, interval);
        let mut large = ChenEstimator::new(w2, interval);
        for seq in 1..=n {
            let at = Nanos(seq * interval.0 + delay_ms * 1_000_000);
            small.observe(seq, at);
            large.observe(seq, at);
        }
        prop_assert_eq!(
            small.expected_next_arrival().unwrap(),
            large.expected_next_arrival().unwrap()
        );
    }

    /// A MultiWindowFd over any set of windows is never less
    /// conservative than the single most conservative member at each
    /// heartbeat.
    #[test]
    fn multi_window_is_max_of_members(
        delays in prop::collection::vec(0u64..500, 2..100),
        windows in prop::collection::vec(1usize..200, 1..5),
        margin_ms in 0u64..500,
    ) {
        let interval = Span::from_millis(100);
        let margin = Span::from_millis(margin_ms);
        let mut multi = MultiWindowFd::new(&windows, interval, margin);
        let mut singles: Vec<MultiWindowFd> = windows
            .iter()
            .map(|&w| MultiWindowFd::new(&[w], interval, margin))
            .collect();
        for (i, &d) in delays.iter().enumerate() {
            let seq = i as u64 + 1;
            let at = Nanos(seq * interval.0 + d * 1_000_000);
            let combined = multi.on_heartbeat(seq, at).unwrap().trust_until;
            let best = singles
                .iter_mut()
                .map(|s| s.on_heartbeat(seq, at).unwrap().trust_until)
                .max()
                .unwrap();
            prop_assert_eq!(combined, best);
        }
    }

    /// Shifting an entire trace in time shifts every decision by the
    /// same amount (time-translation invariance of the detectors, which
    /// is what makes replaying with an arbitrary clock origin sound).
    #[test]
    fn detectors_are_translation_invariant(
        delays in prop::collection::vec(0u64..400, 2..80),
        shift_secs in 1u64..100_000,
    ) {
        let interval = Span::from_millis(100);
        let margin = Span::from_millis(40);
        let shift = Span::from_secs(shift_secs);
        let mut base = TwoWindowFd::new(1, 100, interval, margin);
        let mut shifted = TwoWindowFd::new(1, 100, interval, margin);
        for (i, &d) in delays.iter().enumerate() {
            let seq = i as u64 + 1;
            let at = Nanos(seq * interval.0 + d * 1_000_000);
            let a = base.on_heartbeat(seq, at).unwrap().trust_until;
            let b = shifted.on_heartbeat(seq, at + shift).unwrap().trust_until;
            // The shifted detector believes sends also happened `shift`
            // later (sequence-normalized offsets absorb the shift), so
            // its freshness points are `shift` later — up to the 1 ns
            // rounding of the f64 offset mean at large magnitudes.
            let expect = (a + shift).0 as i128;
            let got = b.0 as i128;
            prop_assert!((expect - got).abs() <= 1, "expect {expect}, got {got}");
        }
    }

    /// The trace generator's loss knob is honoured within statistical
    /// tolerance — ties the sim substrate to the trace statistics.
    #[test]
    fn generated_loss_matches_spec(p in 0.0f64..0.5, seed in any::<u64>()) {
        use twofd::sim::{DelaySpec, LossSpec, NetworkScenario};
        use twofd::trace::generate_scripted;
        let scenario = NetworkScenario::uniform(
            "loss",
            20_000,
            DelaySpec::Constant { nanos: 1_000_000 },
            LossSpec::Bernoulli { p },
        );
        let trace = generate_scripted("loss", Span::from_millis(10), scenario, seed, None);
        let measured = trace.loss_rate();
        prop_assert!((measured - p).abs() < 0.02, "spec {p}, measured {measured}");
    }
}
