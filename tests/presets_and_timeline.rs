//! Integration coverage of the scenario presets and the Timeline API
//! against the detectors: intent-level experiments that read like the
//! situations a deployment actually faces.

use twofd::core::{replay, FdOutput, Timeline};
use twofd::prelude::*;
use twofd::trace::{generate_scripted, presets};

#[test]
fn quiet_lan_never_triggers_a_mistake() {
    let trace = generate_scripted(
        "lan",
        Span::from_millis(20),
        presets::quiet_lan(30_000),
        1,
        None,
    );
    let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(5));
    let result = replay(&mut fd, &trace);
    assert!(result.mistakes.is_empty(), "{:?}", result.mistakes);
    let tl = Timeline::from_replay(&result);
    assert_eq!(tl.time_in(FdOutput::Suspect), Span::ZERO);
}

#[test]
fn outage_produces_exactly_one_suspicion_period() {
    // 50 consecutive lost heartbeats (5 s at Δi = 100 ms), margin 500 ms:
    // every detector must suspect once and recover once.
    let trace = generate_scripted(
        "outage",
        Span::from_millis(100),
        presets::wan_with_outage(2_000, 50),
        2,
        None,
    );
    let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(500));
    let result = replay(&mut fd, &trace);
    assert_eq!(result.mistakes.len(), 1, "{:?}", result.mistakes);
    let m = result.mistakes[0];
    assert!(!m.censored);
    // The suspicion lasts roughly the outage minus the margin.
    let dur = (m.end - m.start).as_secs_f64();
    assert!(dur > 3.0 && dur < 6.0, "duration {dur}");
    // Timeline view agrees.
    let tl = Timeline::from_replay(&result);
    assert_eq!(tl.s_transitions(), 1);
    assert_eq!(tl.t_transitions(), 1);
}

#[test]
fn congestion_presets_rank_detector_stress() {
    // Sustained congestion must stress a fixed-margin detector more than
    // a stable WAN, and the stable WAN more than a quiet LAN.
    let margin = Span::from_millis(60);
    let mistakes = |scenario| {
        let trace = generate_scripted("x", Span::from_millis(100), scenario, 3, None);
        let mut fd = TwoWindowFd::paper_default(trace.interval, margin);
        replay(&mut fd, &trace).metrics().mistakes
    };
    let lan = mistakes(presets::quiet_lan(20_000));
    let stable = mistakes(presets::stable_wan(20_000));
    let congested = mistakes(presets::sustained_congestion(20_000));
    assert!(lan <= stable, "lan {lan} vs stable {stable}");
    assert!(
        congested > 10 * stable.max(1),
        "congested {congested} vs stable {stable}"
    );
}

#[test]
fn episodic_congestion_rewards_the_long_window() {
    // On episodic congestion, 2W(1,1000) must clearly beat Chen(1) at
    // the same margin — the design motivation of §III-B, isolated.
    use twofd::core::{ChenFd, TwoWindowFd};
    let trace = generate_scripted(
        "episodic",
        Span::from_millis(100),
        presets::episodic_congestion(40_000),
        4,
        None,
    );
    let margin = Span::from_millis(50);
    let two = {
        let mut fd = TwoWindowFd::new(1, 1000, trace.interval, margin);
        replay(&mut fd, &trace).metrics().mistakes
    };
    let chen1 = {
        let mut fd = ChenFd::new(1, trace.interval, margin);
        replay(&mut fd, &trace).metrics().mistakes
    };
    assert!(
        two < chen1,
        "2W {two} should beat Chen(1) {chen1} on episodic congestion"
    );
}

#[test]
fn timeline_containment_matches_replay_containment() {
    use twofd::core::{ChenFd, TwoWindowFd};
    let trace = generate_scripted(
        "contain",
        Span::from_millis(100),
        presets::lossy_wan(10_000, 0.03),
        5,
        None,
    );
    let margin = Span::from_millis(30);
    let run = |mut fd: Box<dyn twofd::core::FailureDetector>| {
        Timeline::from_replay(&replay(fd.as_mut(), &trace))
    };
    let two = run(Box::new(TwoWindowFd::new(1, 500, trace.interval, margin)));
    let c1 = run(Box::new(ChenFd::new(1, trace.interval, margin)));
    let c500 = run(Box::new(ChenFd::new(500, trace.interval, margin)));
    assert!(two.suspicion_contained_in(&c1));
    assert!(two.suspicion_contained_in(&c500));
}
