//! End-to-end over the in-memory transport seam: the same fleet
//! monitor and heartbeat sender that run over UDP, threaded through a
//! `sim_channel` pair instead — no sockets, no kernel, identical
//! behavior contract (trust, crash detection, skewed sender clocks).

use std::sync::Arc;
use std::thread::sleep;
use std::time::{Duration, Instant};
use twofd::core::{DetectorConfig, DetectorSpec, FdOutput};
use twofd::net::{
    sim_channel, FleetMonitor, HeartbeatSender, MonotonicClock, ShardConfig, SkewedClock,
};
use twofd::sim::Span;

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        sleep(Duration::from_millis(10));
    }
    false
}

fn config(interval: Span, margin: Span) -> ShardConfig {
    ShardConfig {
        detector: DetectorConfig::new(
            DetectorSpec::TwoWindow { n1: 1, n2: 100 },
            interval,
            margin.as_secs_f64(),
        )
        .into(),
        ..ShardConfig::default()
    }
}

#[test]
fn fleet_runs_over_the_in_memory_transport() {
    let interval = Span::from_millis(10);
    let (sim_tx, sim_rx) = sim_channel(4096);
    let monitor = FleetMonitor::spawn_with_transport(
        config(interval, Span::from_millis(50)),
        sim_rx,
        Arc::new(MonotonicClock::new()),
    )
    .expect("spawn over sim transport");

    // Two senders share the monitor's inbox through cloned handles; one
    // of them runs on a deliberately skewed clock (20% fast, offset by
    // an hour) — receiver-side timestamps must not care.
    let sender_a =
        HeartbeatSender::spawn_on(7, interval, sim_tx.clone(), Arc::new(MonotonicClock::new()))
            .expect("spawn sender");
    let skewed = SkewedClock::new(
        Arc::new(MonotonicClock::new()),
        Span::from_secs(3600),
        200_000, // +20% fast
    );
    let sender_b = HeartbeatSender::spawn_on(9, interval, sim_tx, Arc::new(skewed))
        .expect("spawn skewed sender");

    assert!(
        wait_for(
            || monitor.output(7) == Some(FdOutput::Trust)
                && monitor.output(9) == Some(FdOutput::Trust),
            Duration::from_secs(3)
        ),
        "trust never established over sim transport"
    );
    assert!(monitor.received() > 0);

    // Crash the skewed sender: its stream must be suspected while the
    // healthy one keeps being trusted.
    sender_b.crash();
    assert!(
        wait_for(
            || monitor.output(9) == Some(FdOutput::Suspect),
            Duration::from_secs(3)
        ),
        "crash not detected over sim transport"
    );
    assert_eq!(monitor.output(7), Some(FdOutput::Trust));
    drop(sender_a);
}
