//! Differential dispatch tests.
//!
//! The refactor to inline enum dispatch is only sound if the three ways
//! of instantiating an algorithm — the inline [`AnyDetector`] enum, the
//! boxed `Box<dyn FailureDetector>` compat path, and a hand-constructed
//! concrete detector — are observationally identical. These properties
//! replay randomly generated traces through all three and assert the
//! transition timelines (the chronological mistake log) and every other
//! replay observable match exactly, for every algorithm in the suite.

use proptest::prelude::*;
use twofd::core::ReplayResult;
use twofd::prelude::*;
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

/// Builds a random-but-valid trace from proptest-chosen parameters.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        50u64..400,    // heartbeats
        1u64..200,     // interval ms
        0.0f64..0.4,   // loss
        0.001f64..0.3, // delay mean (s)
        0.0f64..0.1,   // delay std (s)
        any::<u64>(),  // seed
    )
        .prop_map(|(n, interval_ms, loss, mean, std, seed)| {
            let scenario = NetworkScenario::uniform(
                "prop",
                n,
                DelaySpec::Iid {
                    dist: DistSpec::LogNormal {
                        mean,
                        std_dev: std.min(mean),
                    },
                    floor_nanos: 1,
                },
                LossSpec::Bernoulli { p: loss },
            );
            generate_scripted("prop", Span::from_millis(interval_ms), scenario, seed, None)
        })
}

/// Replays `trace` through the inline enum built from `spec`.
fn replay_inline(spec: &DetectorSpec, trace: &Trace, tuning: f64) -> ReplayResult {
    let mut fd: AnyDetector = spec.build_any(trace.interval, tuning);
    replay(&mut fd, trace)
}

/// Replays `trace` through the boxed compat path built from `spec`.
fn replay_boxed(spec: &DetectorSpec, trace: &Trace, tuning: f64) -> ReplayResult {
    let mut fd = spec.build(trace.interval, tuning);
    replay(fd.as_mut(), trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm in the suite produces the same transition
    /// timeline whether dispatched inline or through the vtable.
    #[test]
    fn inline_and_boxed_dispatch_agree(
        trace in arb_trace(),
        tuning in 0.01f64..5.0,
        window in 1usize..64,
        n1 in 1usize..10,
        extra in 1usize..64,
    ) {
        let specs = [
            DetectorSpec::Chen { window },
            DetectorSpec::Bertier { window },
            DetectorSpec::Phi { window },
            DetectorSpec::Ed { window },
            DetectorSpec::TwoWindow { n1, n2: n1 + extra },
            DetectorSpec::MultiWindow { windows: vec![n1, n1 + extra] },
        ];
        for spec in &specs {
            let inline = replay_inline(spec, &trace, tuning);
            let boxed = replay_boxed(spec, &trace, tuning);
            prop_assert_eq!(&inline, &boxed, "inline vs boxed diverged for {}", spec);
        }
    }

    /// The enum variants are faithful to hand-constructed concrete
    /// detectors: building `ChenFd::new(...)` directly and replaying it
    /// yields the timeline that `AnyDetector::Chen` yields, and so on
    /// for all five algorithms of the paper's comparison.
    #[test]
    fn enum_variants_match_concrete_detectors(
        trace in arb_trace(),
        tuning in 0.01f64..5.0,
        window in 1usize..64,
        n1 in 1usize..10,
        extra in 1usize..64,
    ) {
        let interval = trace.interval;
        let margin = Span::from_secs_f64(tuning);
        let n2 = n1 + extra;

        let mut concrete: Vec<(DetectorSpec, ReplayResult)> = Vec::new();

        let mut chen = ChenFd::new(window, interval, margin);
        concrete.push((DetectorSpec::Chen { window }, replay(&mut chen, &trace)));

        let mut bertier = BertierFd::new(window, interval);
        concrete.push((DetectorSpec::Bertier { window }, replay(&mut bertier, &trace)));

        let mut phi = PhiAccrualFd::with_threshold(window, tuning);
        concrete.push((DetectorSpec::Phi { window }, replay(&mut phi, &trace)));

        let mut ed = EdFd::with_kappa(window, tuning);
        concrete.push((DetectorSpec::Ed { window }, replay(&mut ed, &trace)));

        let mut two = TwoWindowFd::new(n1, n2, interval, margin);
        concrete.push((DetectorSpec::TwoWindow { n1, n2 }, replay(&mut two, &trace)));

        for (spec, expected) in &concrete {
            let inline = replay_inline(spec, &trace, tuning);
            prop_assert_eq!(&inline, expected, "enum variant diverged from concrete {}", spec);
        }
    }

    /// `DetectorConfig` reaches the same timeline through both of its
    /// constructors — `build()` (inline) and `build_boxed()` (compat).
    #[test]
    fn detector_config_constructors_agree(
        trace in arb_trace(),
        tuning in 0.01f64..5.0,
        n1 in 1usize..10,
        extra in 1usize..64,
    ) {
        let config = DetectorConfig::new(
            DetectorSpec::TwoWindow { n1, n2: n1 + extra },
            trace.interval,
            tuning,
        );
        let mut inline = config.build();
        let mut boxed = config.build_boxed();
        let a = replay(&mut inline, &trace);
        let b = replay(boxed.as_mut(), &trace);
        prop_assert_eq!(a, b);
    }
}
