//! Integration tests of Chen's QoS configuration procedure: the output
//! `(Δi, Δto)`, replayed over a network with the promised `(pL, V(D))`,
//! must deliver the requested QoS.

use twofd::core::configure;
use twofd::prelude::*;
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

/// Builds a trace with the given behaviour at the given interval.
fn trace_with(
    interval: Span,
    loss: f64,
    delay_mean: f64,
    delay_std: f64,
    horizon_secs: f64,
    seed: u64,
) -> Trace {
    let n = (horizon_secs / interval.as_secs_f64()).ceil() as u64;
    let scenario = NetworkScenario::uniform(
        "qos",
        n.max(2),
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: delay_mean,
                std_dev: delay_std,
            },
            floor_nanos: 100_000,
        },
        LossSpec::Bernoulli { p: loss },
    );
    generate_scripted("qos", interval, scenario, seed, None)
}

#[test]
fn configured_detector_meets_the_spec_on_matching_network() {
    let loss = 0.01;
    let delay_std = 0.012;
    let net = NetworkBehavior::new(loss, delay_std * delay_std);
    let spec = QosSpec::new(1.0, 3600.0, 1.0);
    let cfg = configure(&spec, &net).unwrap();

    // Replay 8 hours of heartbeats under exactly that behaviour.
    let trace = trace_with(cfg.interval, loss, 0.04, delay_std, 8.0 * 3600.0, 17);
    let mut fd = ChenFd::new(1000, cfg.interval, cfg.safety_margin);
    let m = replay(&mut fd, &trace).metrics();

    assert!(
        m.detection_time <= spec.detection_time + 1e-6,
        "T_D {} exceeds bound {}",
        m.detection_time,
        spec.detection_time
    );
    assert!(
        m.mistake_recurrence() >= spec.mistake_recurrence,
        "recurrence {} below bound {} ({} mistakes)",
        m.mistake_recurrence(),
        spec.mistake_recurrence,
        m.mistakes
    );
    assert!(
        m.avg_mistake_duration <= spec.mistake_duration,
        "T_M {} exceeds bound {}",
        m.avg_mistake_duration,
        spec.mistake_duration
    );
}

#[test]
fn budget_identity_and_monotonicity_across_specs() {
    let net = NetworkBehavior::new(0.02, 0.0004);
    let mut last_interval = Span::ZERO;
    for td in [0.4, 0.8, 1.6, 3.2] {
        let cfg = configure(&QosSpec::new(td, 1800.0, 1.0), &net).unwrap();
        assert_eq!(cfg.detection_budget(), Span::from_secs_f64(td));
        assert!(
            cfg.interval >= last_interval,
            "interval not monotone in T_D^U"
        );
        last_interval = cfg.interval;
    }
}

#[test]
fn noisier_network_demands_faster_heartbeats() {
    let spec = QosSpec::new(1.0, 7200.0, 1.0);
    let quiet = configure(&spec, &NetworkBehavior::new(0.001, 1e-6)).unwrap();
    let noisy = configure(&spec, &NetworkBehavior::new(0.10, 0.01)).unwrap();
    assert!(
        noisy.interval <= quiet.interval,
        "noisy {:?} vs quiet {:?}",
        noisy.interval,
        quiet.interval
    );
}

#[test]
fn online_estimator_feeds_configure_consistently() {
    // Estimate (pL, V(D)) from a probe trace, configure, and check the
    // estimates are close to the generator's ground truth.
    let interval = Span::from_millis(100);
    let trace = trace_with(interval, 0.05, 0.05, 0.015, 600.0, 23);
    let mut est = NetworkEstimator::new(5_000);
    for r in &trace.records {
        if let Some(at) = r.arrival {
            est.observe(r.seq, r.send, at);
        }
    }
    let behavior = est.behavior();
    assert!(
        (behavior.loss_prob - 0.05).abs() < 0.01,
        "pL {}",
        behavior.loss_prob
    );
    assert!(
        (behavior.delay_var.sqrt() - 0.015).abs() < 0.004,
        "sd {}",
        behavior.delay_var.sqrt()
    );
    let cfg = configure(&QosSpec::new(2.0, 3600.0, 1.0), &behavior).unwrap();
    assert!(cfg.interval > Span::ZERO);
    assert!(cfg.interval < Span::from_secs(2));
}

#[test]
fn unachievable_specs_are_rejected_not_mangled() {
    // 99% loss with a 10 ms mistake-duration bound: no interval works.
    let err = configure(
        &QosSpec::new(0.5, 1e6, 0.01),
        &NetworkBehavior::new(0.99, 0.01),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unachievable"), "{msg}");
}
