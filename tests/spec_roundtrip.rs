//! Property tests for the `DetectorSpec` text codec.
//!
//! The workspace's vendored serde is a no-op facade, so specs persist
//! through their canonical text form (`Display`/`FromStr`). These
//! properties check the codec is lossless for *arbitrary* window
//! parameters, not just the paper's configurations.

use proptest::prelude::*;
use twofd::prelude::*;

fn arb_spec() -> impl Strategy<Value = DetectorSpec> {
    (
        0usize..6, // variant selector (vendored proptest has no prop_oneof)
        1usize..100_000,
        1usize..100_000,
        proptest::collection::vec(1usize..100_000, 1..8),
    )
        .prop_map(|(variant, window, extra, windows)| match variant {
            0 => DetectorSpec::Chen { window },
            1 => DetectorSpec::Bertier { window },
            2 => DetectorSpec::Phi { window },
            3 => DetectorSpec::Ed { window },
            4 => DetectorSpec::TwoWindow {
                n1: window,
                n2: window + extra,
            },
            _ => DetectorSpec::MultiWindow { windows },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `to_string` then `parse` is the identity on every variant.
    #[test]
    fn text_codec_round_trips(spec in arb_spec()) {
        let text = spec.to_string();
        prop_assert_eq!(text.parse::<DetectorSpec>().unwrap(), spec);
    }

    /// The canonical form is stable: re-encoding a parsed spec yields
    /// the same string.
    #[test]
    fn canonical_form_is_stable(spec in arb_spec()) {
        let text = spec.to_string();
        let reparsed: DetectorSpec = text.parse().unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }
}
