//! Small-scale checks of the paper's qualitative evaluation claims —
//! the same experiments as the bench harnesses, shrunk to test size.

use twofd::core::{calibrate, replay, DetectorSpec};
use twofd::prelude::*;
use twofd::trace::table1_segments;

fn wan(samples: u64, seed: u64) -> Trace {
    WanTraceConfig::small(samples, seed).generate()
}

/// §IV-C2 / Figures 6–7: at the paper's headline operating point
/// (T_D = 215 ms), the 2W-FD makes no more mistakes than any baseline
/// that can be calibrated to that detection time.
#[test]
fn two_w_wins_at_the_papers_operating_point() {
    let trace = wan(60_000, 0x2BFD_0001);
    let target = 0.215;
    let count = |spec: &DetectorSpec| -> Option<u64> {
        let cal = calibrate(spec, &trace, target, 0.002, 60.0)?;
        let mut fd = spec.build(trace.interval, cal.tuning);
        Some(replay(fd.as_mut(), &trace).metrics().mistakes)
    };
    let two_w = count(&DetectorSpec::TwoWindow { n1: 1, n2: 1000 }).unwrap();
    for spec in [
        DetectorSpec::Chen { window: 1 },
        DetectorSpec::Chen { window: 1000 },
        DetectorSpec::Phi { window: 1000 },
        DetectorSpec::Ed { window: 1000 },
    ] {
        if let Some(m) = count(&spec) {
            assert!(
                two_w <= m + m / 20, // allow 5% noise at this scale
                "2W made {two_w} mistakes vs {} for {}",
                m,
                spec.label()
            );
        }
    }
}

/// Figure 4/5's orderings: (a) with the long window fixed, a smaller
/// short window is better; (b) with the short window fixed, a larger
/// long window is better; (c) gains saturate above a long window of
/// ~1000.
#[test]
fn window_size_orderings_match_figure_4() {
    let trace = wan(40_000, 0x2BFD_0002);
    let mistakes = |n1: usize, n2: usize, margin: f64| -> u64 {
        let spec = DetectorSpec::TwoWindow { n1, n2 };
        let mut fd = spec.build(trace.interval, margin);
        replay(fd.as_mut(), &trace).metrics().mistakes
    };
    for margin in [0.05, 0.15] {
        // (a) smaller short window is better (or equal).
        let small_short = mistakes(1, 1000, margin);
        let big_short = mistakes(100, 1000, margin);
        assert!(
            small_short <= big_short,
            "margin {margin}: short=1 {small_short} vs short=100 {big_short}"
        );
        // (b) larger long window is better, within reproduction noise
        // (the paper reports the gains as small and saturating; on the
        // synthetic trace the two curves run within a few percent of
        // each other, so allow 3% before calling it a violation).
        let small_long = mistakes(1, 10, margin);
        let big_long = mistakes(1, 1000, margin);
        assert!(
            big_long <= small_long + small_long * 3 / 100,
            "margin {margin}: long=1000 {big_long} vs long=10 {small_long}"
        );
    }
}

/// Figure 8: per-segment counts at T_D = 215 ms — the 2W-FD's total is
/// the best, and it is never meaningfully worse than a baseline within
/// any segment.
#[test]
fn segment_analysis_favours_two_w() {
    let trace = wan(60_000, 0x2BFD_0001);
    let segments = table1_segments(60_000);
    let per_segment = |spec: &DetectorSpec| -> Option<Vec<u64>> {
        let cal = calibrate(spec, &trace, 0.215, 0.002, 60.0)?;
        let mut fd = spec.build(trace.interval, cal.tuning);
        let result = replay(fd.as_mut(), &trace);
        Some(twofd::core::mistakes_by_segment(
            &result.mistakes,
            &segments,
        ))
    };
    let two_w = per_segment(&DetectorSpec::TwoWindow { n1: 1, n2: 1000 }).unwrap();
    let chen1 = per_segment(&DetectorSpec::Chen { window: 1 }).unwrap();
    let chen1000 = per_segment(&DetectorSpec::Chen { window: 1000 }).unwrap();
    let total = |v: &[u64]| v.iter().sum::<u64>();
    assert!(total(&two_w) <= total(&chen1));
    assert!(total(&two_w) <= total(&chen1000));
    // Worm is where chen(1000) pays for its inertia; 2W must not.
    assert!(two_w[2] < chen1000[2]);
}

/// The paper's LAN observation: "results present the same behavior" —
/// at matched margins 2W is no worse than either Chen on LAN too.
#[test]
fn lan_results_same_tendency() {
    let trace = LanTraceConfig::small(40_000, 0x2BFD_0003).generate();
    let mistakes = |spec: DetectorSpec| -> u64 {
        let mut fd = spec.build(trace.interval, 0.001); // 1 ms margin
        replay(fd.as_mut(), &trace).metrics().mistakes
    };
    let two_w = mistakes(DetectorSpec::TwoWindow { n1: 1, n2: 1000 });
    assert!(two_w <= mistakes(DetectorSpec::Chen { window: 1 }));
    assert!(two_w <= mistakes(DetectorSpec::Chen { window: 1000 }));
}

/// Figures 10–12 shapes from the configuration sweeps.
#[test]
fn config_sweep_shapes() {
    use twofd::core::configure;
    let net = NetworkBehavior::new(0.01, 0.0004);

    // Fig 10: both parameters grow with T_D^U.
    let mut prev = (0.0f64, 0.0f64);
    for i in 1..=8 {
        let td = 0.5 * i as f64;
        let cfg = configure(&QosSpec::new(td, 3600.0, 1.0), &net).unwrap();
        let cur = (cfg.interval.as_secs_f64(), cfg.safety_margin.as_secs_f64());
        assert!(cur.0 >= prev.0 - 1e-9, "Δi not monotone in T_D at {td}");
        prev = cur;
    }

    // Fig 11: Δi shrinks (and Δto grows) as the recurrence bound grows.
    let weak = configure(&QosSpec::new(1.0, 30.0, 1.0), &net).unwrap();
    let strong = configure(&QosSpec::new(1.0, 1e6, 1.0), &net).unwrap();
    assert!(strong.interval <= weak.interval);
    assert!(strong.safety_margin >= weak.safety_margin);

    // Fig 12: Δi grows with the mistake-duration allowance.
    let tight = configure(&QosSpec::new(1.0, 3600.0, 0.05), &net).unwrap();
    let loose = configure(&QosSpec::new(1.0, 3600.0, 2.0), &net).unwrap();
    assert!(loose.interval >= tight.interval);
}
