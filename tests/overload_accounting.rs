//! Counter reconciliation under forced overload.
//!
//! The shard runtime's accounting identity — every received heartbeat is
//! either applied or dropped, per shard — must hold exactly even while
//! queues are shedding, and the bounded event channel must count what it
//! sheds rather than block or lie. These are the invariants the
//! `/metrics` endpoint's operators reason from, so they get their own
//! regression test at the most hostile settings we can force.

use std::sync::Arc;
use std::time::{Duration, Instant};
use twofd::core::{DetectorConfig, DetectorSpec};
use twofd::net::{Job, ManualClock, ShardConfig, ShardRuntime, TimeSource};
use twofd::sim::{Nanos, Span};

const INTERVAL: Span = Span(10_000_000); // 10 ms

fn config() -> DetectorConfig {
    DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, INTERVAL, 0.04)
}

#[test]
fn overloaded_shards_reconcile_received_as_applied_plus_dropped() {
    // Tiny queues, several shards, a stalled clock (sweeps can't retire
    // anything "late") and far more ingest than capacity: a guaranteed
    // mix of applied and dropped on every shard.
    let clock = Arc::new(ManualClock::new());
    let rt = ShardRuntime::new(
        ShardConfig {
            detector: config().into(),
            n_shards: 4,
            queue_capacity: 16,
            sweep_interval: Duration::from_millis(50),
            event_capacity: 1 << 12,
            ..ShardConfig::default()
        },
        clock.clone() as Arc<dyn TimeSource>,
    );

    let start = Instant::now();
    for seq in 1..=80_000u64 {
        rt.ingest(seq % 128, seq, Nanos(seq));
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "overloaded ingest must never block"
    );
    rt.flush();

    let stats = rt.stats();
    assert_eq!(stats.received(), 80_000);
    assert!(stats.dropped() > 0, "overload never shed: {stats:?}");
    assert!(stats.applied() > 0, "nothing was applied: {stats:?}");
    // The identity, globally and per shard: nothing lost, nothing
    // double-counted, even though shedding raced the workers.
    assert_eq!(stats.received(), stats.applied() + stats.dropped());
    for (i, shard) in stats.shards.iter().enumerate() {
        assert_eq!(
            shard.received,
            shard.applied + shard.dropped,
            "shard {i} leaked heartbeats: {shard:?}"
        );
    }

    // The registry mirrors the same reconciliation (same cells, not
    // copies): sum the rendered per-shard counters back together.
    let text = rt.registry().render();
    let sum = |name: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with(&format!("{name}{{")))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .expect("counter value")
            })
            .sum::<f64>() as u64
    };
    assert_eq!(sum("twofd_shard_received_total"), stats.received());
    assert_eq!(sum("twofd_shard_applied_total"), stats.applied());
    assert_eq!(sum("twofd_shard_dropped_total"), stats.dropped());
}

/// The same identity under the batched handoff: `ingest_batch` amortizes
/// queue locking and eviction across a group, so its drop-oldest
/// accounting runs in bulk — `received == applied + dropped` must still
/// balance to the heartbeat on every shard while batches slam saturated
/// queues.
#[test]
fn batched_overload_reconciles_received_as_applied_plus_dropped() {
    let clock = Arc::new(ManualClock::new());
    let rt = ShardRuntime::new(
        ShardConfig {
            detector: config().into(),
            n_shards: 4,
            queue_capacity: 16,
            sweep_interval: Duration::from_millis(50),
            event_capacity: 1 << 12,
            ..ShardConfig::default()
        },
        clock.clone() as Arc<dyn TimeSource>,
    );

    // 80k heartbeats in batches bigger than any queue (320 jobs → ~80
    // per shard against 16-slot queues): every batch must evict in bulk,
    // never block, and never lose a count.
    let start = Instant::now();
    let mut batch: Vec<Job> = Vec::with_capacity(320);
    let mut seq = 0u64;
    while seq < 80_000 {
        batch.clear();
        for _ in 0..320 {
            seq += 1;
            batch.push((seq % 128, seq, Nanos(seq), 0));
        }
        rt.ingest_batch(&batch);
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "overloaded batched ingest must never block"
    );
    rt.flush();

    let stats = rt.stats();
    assert_eq!(stats.received(), 80_000);
    assert!(stats.dropped() > 0, "overload never shed: {stats:?}");
    assert!(stats.applied() > 0, "nothing was applied: {stats:?}");
    assert_eq!(stats.received(), stats.applied() + stats.dropped());
    for (i, shard) in stats.shards.iter().enumerate() {
        assert_eq!(
            shard.received,
            shard.applied + shard.dropped,
            "shard {i} leaked heartbeats in the batched path: {shard:?}"
        );
        assert!(shard.queue_depth <= 16, "shard {i} overfilled: {shard:?}");
    }

    // The rendered registry reconciles to the same totals.
    let text = rt.registry().render();
    let sum = |name: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with(&format!("{name}{{")))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .expect("counter value")
            })
            .sum::<f64>() as u64
    };
    assert_eq!(sum("twofd_shard_received_total"), stats.received());
    assert_eq!(
        sum("twofd_shard_applied_total") + sum("twofd_shard_dropped_total"),
        stats.received()
    );
}

#[test]
fn overflowed_event_channel_counts_its_losses() {
    // One worker, a 4-slot event channel and nobody draining it: beyond
    // the first 4 transitions every publish must shed *and count*.
    let clock = Arc::new(ManualClock::new());
    let rt = ShardRuntime::new(
        ShardConfig {
            detector: config().into(),
            n_shards: 1,
            queue_capacity: 4096,
            sweep_interval: Duration::from_millis(1),
            event_capacity: 4,
            ..ShardConfig::default()
        },
        clock.clone() as Arc<dyn TimeSource>,
    );

    // 64 streams each establish trust with two on-time heartbeats: at
    // least 64 T-transitions compete for 4 event slots.
    for seq in 1..=2u64 {
        for stream in 0..64u64 {
            let at = Nanos(seq * INTERVAL.0 + stream);
            clock.advance_to(at);
            rt.ingest(stream, seq, at);
        }
        rt.flush();
    }

    let stats = rt.stats();
    assert_eq!(stats.dropped(), 0, "heartbeat queues were not the subject");
    assert!(
        stats.events_dropped >= 60,
        "expected the event channel to shed: {stats:?}"
    );
    assert_eq!(stats.events_dropped, rt.events_dropped());
    // And the loss is visible where operators will look for it.
    let text = rt.registry().render();
    let line = text
        .lines()
        .find(|l| l.starts_with("twofd_events_dropped_total "))
        .expect("events_dropped series rendered");
    let rendered: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(rendered as u64, stats.events_dropped);
}
