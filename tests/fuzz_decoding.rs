//! Robustness of the decoders: arbitrary bytes must never panic, only
//! return errors; mutated valid encodings must never be mis-accepted as
//! a different trace.

use proptest::prelude::*;
use std::sync::Arc;
use twofd::net::{Heartbeat, Job, ManualClock, ShardConfig, ShardRuntime, WIRE_SIZE, WIRE_SIZE_V1};
use twofd::prelude::*;
use twofd::trace::{decode_binary, decode_csv, encode_binary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary trace decoder is total: any byte string yields
    /// `Ok` or `Err`, never a panic, and `Ok` only for inputs that
    /// re-encode to themselves.
    #[test]
    fn binary_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(trace) = decode_binary(&data) {
            // Anything accepted must round-trip canonically.
            let re = encode_binary(&trace);
            prop_assert_eq!(decode_binary(&re).unwrap(), trace);
        }
    }

    /// The CSV decoder is total over arbitrary text.
    #[test]
    fn csv_decoder_never_panics(text in "\\PC{0,400}") {
        let _ = decode_csv(&text);
    }

    /// The wire decoder is total over arbitrary datagrams.
    #[test]
    fn wire_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(hb) = Heartbeat::decode(&data) {
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        }
    }

    /// Both wire versions round-trip for arbitrary field values, and a
    /// v1 frame — which cannot carry an incarnation — always decodes to
    /// incarnation 0 (crash-stop semantics).
    #[test]
    fn versioned_wire_frames_round_trip(
        stream in any::<u64>(),
        seq in any::<u64>(),
        at in any::<u64>(),
        incarnation in any::<u32>(),
    ) {
        let hb = Heartbeat { stream, seq, sent_at: Nanos(at), incarnation };
        prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        prop_assert_eq!(
            Heartbeat::decode(&hb.encode_v1()).unwrap(),
            Heartbeat { incarnation: 0, ..hb }
        );
    }

    /// A v2 frame truncated anywhere — including inside the incarnation
    /// field `[32, 40)`, where a sloppy decoder might zero-fill — is
    /// rejected without panicking; garbage stuffed into the incarnation
    /// bytes still decodes (any u32 is a legal incarnation) and
    /// round-trips rather than being reinterpreted.
    #[test]
    fn truncated_or_garbage_incarnation_is_handled(
        stream in any::<u64>(),
        seq in any::<u64>(),
        cut in 0usize..WIRE_SIZE,
        junk in any::<u32>(),
    ) {
        let hb = Heartbeat { stream, seq, sent_at: Nanos(7), incarnation: 1 };
        let full = hb.encode();
        prop_assert!(Heartbeat::decode(&full[..cut]).is_err(), "cut at {}", cut);
        // Even the exact v1 length is no excuse: the version field says
        // v2, so the missing incarnation must not be zero-filled.
        prop_assert!(Heartbeat::decode(&full[..WIRE_SIZE_V1]).is_err());

        let mut garbled = full.to_vec();
        garbled[32..36].copy_from_slice(&junk.to_le_bytes());
        let decoded = Heartbeat::decode(&garbled).unwrap();
        prop_assert_eq!(decoded.incarnation, junk);
        prop_assert_eq!(Heartbeat::decode(&decoded.encode()).unwrap(), decoded);
    }

    /// The full intake path is total and exactly accounted: an
    /// arbitrary mix of valid, truncated, oversized and garbage
    /// datagrams — rebatched arbitrarily through a deliberately tiny
    /// shard queue — never panics, and once the queues drain the
    /// counters reconcile exactly: `received` equals the number of
    /// decodable datagrams, and `received == applied + dropped` (the
    /// identity the model-check suite verifies schedule-by-schedule;
    /// this drives it input-by-input).
    #[test]
    fn intake_batches_reconcile_exactly(
        // One tuple per datagram. The leading integer selects the shape
        // (the vendored proptest has no `prop_oneof`): 0 = valid v2,
        // 1 = valid v1 (mixed-version fleet), 2 = truncated,
        // 3 = valid prefix + trailing junk, 4 = garbage.
        specs in prop::collection::vec(
            (0u8..5, 0u64..8, 1u64..1_000_000, 0usize..64),
            1..120,
        ),
        batch in 1usize..200,
    ) {
        let mut datagrams: Vec<Vec<u8>> = Vec::with_capacity(specs.len());
        for &(kind, stream, seq, size) in &specs {
            let hb = Heartbeat {
                stream,
                seq,
                sent_at: Nanos(seq),
                incarnation: (seq % 3) as u32,
            };
            match kind {
                0 => datagrams.push(hb.encode().to_vec()),
                1 => datagrams.push(hb.encode_v1().to_vec()),
                // Truncated: shorter than WIRE_SIZE, never valid —
                // lengths in [WIRE_SIZE_V1, WIRE_SIZE) claim a v2 frame
                // whose incarnation field is cut off.
                2 => datagrams.push(hb.encode()[..size % WIRE_SIZE].to_vec()),
                3 => {
                    // Oversized: decoders read a per-version prefix and
                    // must ignore trailing bytes.
                    let mut d = hb.encode().to_vec();
                    d.resize(WIRE_SIZE + size, 0xA5);
                    datagrams.push(d);
                }
                _ => datagrams.push(
                    (0..size).map(|i| (seq >> (i % 8)) as u8 ^ i as u8).collect(),
                ),
            }
        }

        // Decode exactly as the fleet intake does: drop undecodable
        // datagrams, stamp the rest with arrival order.
        let jobs: Vec<Job> = datagrams
            .iter()
            .enumerate()
            .filter_map(|(i, d)| {
                Heartbeat::decode(d)
                    .ok()
                    .map(|hb| (hb.stream, hb.seq, Nanos(1 + i as u64), hb.incarnation))
            })
            .collect();

        let runtime = ShardRuntime::new(
            ShardConfig {
                n_shards: 2,
                // Tiny on purpose: oversize batches must evict (and
                // count) rather than block or lose heartbeats.
                queue_capacity: 4,
                ..ShardConfig::default()
            },
            Arc::new(ManualClock::new()),
        );
        for chunk in jobs.chunks(batch) {
            runtime.ingest_batch(chunk);
        }
        runtime.flush();

        let stats = runtime.stats();
        prop_assert_eq!(stats.received(), jobs.len() as u64);
        prop_assert_eq!(stats.received(), stats.applied() + stats.dropped());
    }

    /// Single-byte corruption of a valid trace encoding either fails to
    /// decode or decodes to a structurally valid trace (never panics,
    /// never produces out-of-order records).
    #[test]
    fn corrupted_traces_fail_safely(
        seed in any::<u64>(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let trace = WanTraceConfig::small(50, seed).generate();
        let mut data = encode_binary(&trace).to_vec();
        let i = flip_at.index(data.len());
        data[i] ^= 1 << flip_bit;
        if let Ok(decoded) = decode_binary(&data) {
            // Structural invariant enforced by the decoder.
            prop_assert!(decoded
                .records
                .windows(2)
                .all(|w| w[0].seq < w[1].seq));
        }
    }
}
