//! Robustness of the decoders: arbitrary bytes must never panic, only
//! return errors; mutated valid encodings must never be mis-accepted as
//! a different trace.

use proptest::prelude::*;
use std::sync::Arc;
use twofd::net::{Heartbeat, Job, ManualClock, ShardConfig, ShardRuntime, WIRE_SIZE};
use twofd::prelude::*;
use twofd::trace::{decode_binary, decode_csv, encode_binary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary trace decoder is total: any byte string yields
    /// `Ok` or `Err`, never a panic, and `Ok` only for inputs that
    /// re-encode to themselves.
    #[test]
    fn binary_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(trace) = decode_binary(&data) {
            // Anything accepted must round-trip canonically.
            let re = encode_binary(&trace);
            prop_assert_eq!(decode_binary(&re).unwrap(), trace);
        }
    }

    /// The CSV decoder is total over arbitrary text.
    #[test]
    fn csv_decoder_never_panics(text in "\\PC{0,400}") {
        let _ = decode_csv(&text);
    }

    /// The wire decoder is total over arbitrary datagrams.
    #[test]
    fn wire_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(hb) = Heartbeat::decode(&data) {
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        }
    }

    /// The full intake path is total and exactly accounted: an
    /// arbitrary mix of valid, truncated, oversized and garbage
    /// datagrams — rebatched arbitrarily through a deliberately tiny
    /// shard queue — never panics, and once the queues drain the
    /// counters reconcile exactly: `received` equals the number of
    /// decodable datagrams, and `received == applied + dropped` (the
    /// identity the model-check suite verifies schedule-by-schedule;
    /// this drives it input-by-input).
    #[test]
    fn intake_batches_reconcile_exactly(
        // One tuple per datagram. The leading integer selects the shape
        // (the vendored proptest has no `prop_oneof`): 0 = valid,
        // 1 = truncated, 2 = valid prefix + trailing junk, 3 = garbage.
        specs in prop::collection::vec(
            (0u8..4, 0u64..8, 1u64..1_000_000, 0usize..64),
            1..120,
        ),
        batch in 1usize..200,
    ) {
        let mut datagrams: Vec<Vec<u8>> = Vec::with_capacity(specs.len());
        for &(kind, stream, seq, size) in &specs {
            let hb = Heartbeat { stream, seq, sent_at: Nanos(seq) };
            match kind {
                0 => datagrams.push(hb.encode().to_vec()),
                // Truncated: always shorter than WIRE_SIZE, never valid.
                1 => datagrams.push(hb.encode()[..size % WIRE_SIZE].to_vec()),
                2 => {
                    // Oversized: decoders read a 32-byte prefix and must
                    // ignore trailing bytes.
                    let mut d = hb.encode().to_vec();
                    d.resize(WIRE_SIZE + size, 0xA5);
                    datagrams.push(d);
                }
                _ => datagrams.push(
                    (0..size).map(|i| (seq >> (i % 8)) as u8 ^ i as u8).collect(),
                ),
            }
        }

        // Decode exactly as the fleet intake does: drop undecodable
        // datagrams, stamp the rest with arrival order.
        let jobs: Vec<Job> = datagrams
            .iter()
            .enumerate()
            .filter_map(|(i, d)| {
                Heartbeat::decode(d)
                    .ok()
                    .map(|hb| (hb.stream, hb.seq, Nanos(1 + i as u64)))
            })
            .collect();

        let runtime = ShardRuntime::new(
            ShardConfig {
                n_shards: 2,
                // Tiny on purpose: oversize batches must evict (and
                // count) rather than block or lose heartbeats.
                queue_capacity: 4,
                ..ShardConfig::default()
            },
            Arc::new(ManualClock::new()),
        );
        for chunk in jobs.chunks(batch) {
            runtime.ingest_batch(chunk);
        }
        runtime.flush();

        let stats = runtime.stats();
        prop_assert_eq!(stats.received(), jobs.len() as u64);
        prop_assert_eq!(stats.received(), stats.applied() + stats.dropped());
    }

    /// Single-byte corruption of a valid trace encoding either fails to
    /// decode or decodes to a structurally valid trace (never panics,
    /// never produces out-of-order records).
    #[test]
    fn corrupted_traces_fail_safely(
        seed in any::<u64>(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let trace = WanTraceConfig::small(50, seed).generate();
        let mut data = encode_binary(&trace).to_vec();
        let i = flip_at.index(data.len());
        data[i] ^= 1 << flip_bit;
        if let Ok(decoded) = decode_binary(&data) {
            // Structural invariant enforced by the decoder.
            prop_assert!(decoded
                .records
                .windows(2)
                .all(|w| w[0].seq < w[1].seq));
        }
    }
}
