//! Robustness of the decoders: arbitrary bytes must never panic, only
//! return errors; mutated valid encodings must never be mis-accepted as
//! a different trace.

use proptest::prelude::*;
use twofd::net::Heartbeat;
use twofd::prelude::*;
use twofd::trace::{decode_binary, decode_csv, encode_binary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary trace decoder is total: any byte string yields
    /// `Ok` or `Err`, never a panic, and `Ok` only for inputs that
    /// re-encode to themselves.
    #[test]
    fn binary_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(trace) = decode_binary(&data) {
            // Anything accepted must round-trip canonically.
            let re = encode_binary(&trace);
            prop_assert_eq!(decode_binary(&re).unwrap(), trace);
        }
    }

    /// The CSV decoder is total over arbitrary text.
    #[test]
    fn csv_decoder_never_panics(text in "\\PC{0,400}") {
        let _ = decode_csv(&text);
    }

    /// The wire decoder is total over arbitrary datagrams.
    #[test]
    fn wire_decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(hb) = Heartbeat::decode(&data) {
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        }
    }

    /// Single-byte corruption of a valid trace encoding either fails to
    /// decode or decodes to a structurally valid trace (never panics,
    /// never produces out-of-order records).
    #[test]
    fn corrupted_traces_fail_safely(
        seed in any::<u64>(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let trace = WanTraceConfig::small(50, seed).generate();
        let mut data = encode_binary(&trace).to_vec();
        let i = flip_at.index(data.len());
        data[i] ^= 1 << flip_bit;
        if let Ok(decoded) = decode_binary(&data) {
            // Structural invariant enforced by the decoder.
            prop_assert!(decoded
                .records
                .windows(2)
                .all(|w| w[0].seq < w[1].seq));
        }
    }
}
