//! The sharded runtime against the sequential replay oracle.
//!
//! Because the runtime stamps transitions with their *exact* instants
//! (S at `trust_until`, T at the restoring arrival — see
//! `twofd_core::multi`), the per-stream event timeline is a pure
//! function of the heartbeat schedule: worker scheduling, sweep timing
//! and batching must not be observable. These tests drive a
//! [`ShardRuntime`] on a [`ManualClock`] through deterministic delivery
//! schedules and demand event-for-event equality with
//! [`twofd::core::replay`], plus a live-UDP crash test where the
//! sweeper (never a query) reports the suspicion.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::sleep;
use std::time::{Duration, Instant};
use twofd::core::{replay, DetectorConfig, DetectorSpec, FdOutput, Timeline, TwoWindowFd};
use twofd::net::{
    FleetMonitor, HeartbeatSender, Job, ManualClock, ShardConfig, ShardRuntime, TimeSource,
};
use twofd::sim::{Nanos, Span};
use twofd::trace::{Trace, WanTraceConfig};

const SHORT_WINDOW: usize = 8;
const LONG_WINDOW: usize = 50;
const MARGIN: Span = Span(15_000_000); // 15 ms — tight enough to make mistakes

fn detector(interval: Span) -> TwoWindowFd {
    TwoWindowFd::new(SHORT_WINDOW, LONG_WINDOW, interval, MARGIN)
}

/// The same recipe through the spec path the runtime uses; the oracle
/// and the runtime must build identical detectors.
fn detector_config(interval: Span) -> DetectorConfig {
    DetectorConfig::new(
        DetectorSpec::TwoWindow {
            n1: SHORT_WINDOW,
            n2: LONG_WINDOW,
        },
        interval,
        MARGIN.as_secs_f64(),
    )
}

/// The events the runtime must publish for one stream: a T at the first
/// fresh arrival if the detector starts out trusting, then exactly the
/// replay timeline's transitions (every S at its mistake start, every T
/// at its restoring arrival; a censored tail keeps its S).
fn expected_events(trace: &Trace) -> Vec<(FdOutput, Nanos)> {
    let mut fd = detector(trace.interval);
    let result = replay(&mut fd, trace);
    let tl = Timeline::from_replay(&result);
    let mut expected = Vec::new();
    if tl.output_at(result.first_arrival) == FdOutput::Trust {
        expected.push((FdOutput::Trust, result.first_arrival));
    }
    expected.extend(tl.transitions().iter().map(|t| (t.to, t.at)));
    expected
}

#[test]
fn sharded_runtime_matches_sequential_replay_event_for_event() {
    for seed in [3u64, 17, 40] {
        let n_streams = 6u64;
        let traces: BTreeMap<u64, Trace> = (0..n_streams)
            .map(|s| (s, WanTraceConfig::small(300, seed * 100 + s).generate()))
            .collect();
        let interval = traces[&0].interval;

        // Merge every stream's deliveries into one global arrival order.
        let mut schedule: Vec<(Nanos, u64, u64)> = traces
            .iter()
            .flat_map(|(&stream, trace)| {
                trace
                    .arrivals()
                    .into_iter()
                    .map(move |a| (a.at, stream, a.seq))
            })
            .collect();
        schedule.sort_unstable();
        let global_horizon = traces.values().map(Trace::end_time).max().unwrap();

        let clock = Arc::new(ManualClock::new());
        let rt = ShardRuntime::new(
            ShardConfig {
                detector: detector_config(interval).into(),
                n_shards: 3,
                queue_capacity: 4096,
                sweep_interval: Duration::from_millis(1),
                event_capacity: 1 << 16,
                ..ShardConfig::default()
            },
            clock.clone() as Arc<dyn TimeSource>,
        );

        // The determinism protocol: the clock reaches an arrival instant
        // only after every earlier heartbeat is already enqueued, so no
        // sweep can expire a horizon a pending heartbeat extends.
        for &(at, stream, seq) in &schedule {
            clock.advance_to(at);
            rt.ingest(stream, seq, at);
        }
        rt.flush();
        clock.advance_to(global_horizon);

        let expected: BTreeMap<u64, Vec<(FdOutput, Nanos)>> = traces
            .iter()
            .map(|(&s, t)| (s, expected_events(t)))
            .collect();
        // Replay only observes a stream up to its own trace horizon; the
        // runtime keeps sweeping until the latest one. Events stamped at
        // or past a stream's horizon are outside the oracle's window.
        let expected_total: usize = expected.values().map(Vec::len).sum();

        let mut actual: BTreeMap<u64, Vec<(FdOutput, Nanos)>> = BTreeMap::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut seen = 0usize;
        while seen < expected_total && Instant::now() < deadline {
            for ev in rt.events().try_iter() {
                if ev.at < traces[&ev.key].end_time() {
                    seen += 1;
                }
                actual.entry(ev.key).or_default().push((ev.output, ev.at));
            }
            sleep(Duration::from_millis(1));
        }
        // Grace pass: catch any extra events the runtime wrongly emits.
        sleep(Duration::from_millis(20));
        for ev in rt.events().try_iter() {
            actual.entry(ev.key).or_default().push((ev.output, ev.at));
        }
        assert_eq!(rt.events_dropped(), 0);

        for (stream, trace) in &traces {
            let horizon = trace.end_time();
            let got: Vec<_> = actual
                .remove(stream)
                .unwrap_or_default()
                .into_iter()
                .filter(|&(_, at)| at < horizon)
                .collect();
            assert_eq!(
                got, expected[stream],
                "seed {seed} stream {stream} diverged from the replay oracle"
            );
        }
    }
}

/// Batched ingest must be *invisible*: feeding the same schedule through
/// `ingest_batch` in arbitrary batch sizes has to yield the exact event
/// timeline of per-heartbeat `ingest` — which in turn is the replay
/// oracle's. One delivery schedule, two runtimes, event-for-event
/// equality plus identical accounting.
#[test]
fn batched_ingest_matches_per_heartbeat_ingest_event_for_event() {
    for seed in [5u64, 23] {
        let n_streams = 6u64;
        let traces: BTreeMap<u64, Trace> = (0..n_streams)
            .map(|s| (s, WanTraceConfig::small(300, seed * 100 + s).generate()))
            .collect();
        let interval = traces[&0].interval;

        let mut schedule: Vec<(Nanos, u64, u64)> = traces
            .iter()
            .flat_map(|(&stream, trace)| {
                trace
                    .arrivals()
                    .into_iter()
                    .map(move |a| (a.at, stream, a.seq))
            })
            .collect();
        schedule.sort_unstable();
        let global_horizon = traces.values().map(Trace::end_time).max().unwrap();

        let spawn = |clock: Arc<ManualClock>| {
            ShardRuntime::new(
                ShardConfig {
                    detector: detector_config(interval).into(),
                    n_shards: 3,
                    queue_capacity: 4096,
                    sweep_interval: Duration::from_millis(1),
                    event_capacity: 1 << 16,
                    ..ShardConfig::default()
                },
                clock as Arc<dyn TimeSource>,
            )
        };

        // Per-heartbeat reference: the seed determinism protocol.
        let clock_a = Arc::new(ManualClock::new());
        let rt_a = spawn(clock_a.clone());
        for &(at, stream, seq) in &schedule {
            clock_a.advance_to(at);
            rt_a.ingest(stream, seq, at);
        }
        rt_a.flush();
        clock_a.advance_to(global_horizon);

        // Batched: the same schedule cut into deliberately awkward batch
        // sizes (1, odd, exactly the grouping chunk, larger than it).
        // Enqueue the whole batch *before* advancing the clock to its
        // last arrival: every heartbeat is in its queue before any sweep
        // can reach its instant, the same invariant the per-heartbeat
        // protocol maintains.
        let clock_b = Arc::new(ManualClock::new());
        let rt_b = spawn(clock_b.clone());
        let sizes = [1usize, 3, 7, 64, 129, 16];
        let mut cursor = 0usize;
        let mut size_ix = 0usize;
        while cursor < schedule.len() {
            let len = sizes[size_ix % sizes.len()].min(schedule.len() - cursor);
            size_ix += 1;
            let batch: Vec<Job> = schedule[cursor..cursor + len]
                .iter()
                .map(|&(at, stream, seq)| (stream, seq, at, 0))
                .collect();
            cursor += len;
            rt_b.ingest_batch(&batch);
            clock_b.advance_to(batch.last().unwrap().2);
        }
        rt_b.flush();
        clock_b.advance_to(global_horizon);

        let collect = |rt: &ShardRuntime| -> BTreeMap<u64, Vec<(FdOutput, Nanos)>> {
            // Workers may still be retiring final sweeps; drain until
            // the stream is quiet for a couple of passes.
            let mut out: BTreeMap<u64, Vec<(FdOutput, Nanos)>> = BTreeMap::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut quiet = 0;
            while quiet < 3 && Instant::now() < deadline {
                let mut got_any = false;
                for ev in rt.events().try_iter() {
                    out.entry(ev.key).or_default().push((ev.output, ev.at));
                    got_any = true;
                }
                quiet = if got_any { 0 } else { quiet + 1 };
                sleep(Duration::from_millis(5));
            }
            out
        };
        let events_a = collect(&rt_a);
        let events_b = collect(&rt_b);
        assert_eq!(rt_a.events_dropped(), 0);
        assert_eq!(rt_b.events_dropped(), 0);

        for (stream, trace) in &traces {
            let horizon = trace.end_time();
            let windowed = |m: &BTreeMap<u64, Vec<(FdOutput, Nanos)>>| -> Vec<(FdOutput, Nanos)> {
                m.get(stream)
                    .cloned()
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&(_, at)| at < horizon)
                    .collect()
            };
            let got_a = windowed(&events_a);
            let got_b = windowed(&events_b);
            let oracle = expected_events(trace);
            assert_eq!(
                got_b, got_a,
                "seed {seed} stream {stream}: batched diverged from per-heartbeat"
            );
            assert_eq!(
                got_b, oracle,
                "seed {seed} stream {stream}: batched diverged from the replay oracle"
            );
        }

        // Identical accounting: same arrivals, nothing shed on either
        // path, and the identity holds on both.
        let (sa, sb) = (rt_a.stats(), rt_b.stats());
        assert_eq!(sa.received(), schedule.len() as u64);
        assert_eq!(sb.received(), sa.received());
        assert_eq!(sa.dropped(), 0);
        assert_eq!(sb.dropped(), 0);
        assert_eq!(sa.received(), sa.applied() + sa.dropped());
        assert_eq!(sb.received(), sb.applied() + sb.dropped());
        for (i, (a, b)) in sa.shards.iter().zip(sb.shards.iter()).enumerate() {
            assert_eq!(
                a.received, b.received,
                "shard {i} received different loads on the two paths"
            );
        }
    }
}

#[test]
fn crash_is_reported_by_the_sweeper_over_udp() {
    let interval = Span::from_millis(10);
    let monitor = FleetMonitor::spawn(DetectorConfig::new(
        DetectorSpec::TwoWindow { n1: 1, n2: 100 },
        interval,
        0.04,
    ))
    .expect("bind fleet monitor");
    let sender = HeartbeatSender::spawn(7, interval, monitor.local_addr()).expect("spawn sender");

    // Never query outputs: the event channel alone must tell the story.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut events = Vec::new();
    while events.is_empty() && Instant::now() < deadline {
        events.extend(monitor.events().try_iter());
        sleep(Duration::from_millis(5));
    }
    assert_eq!(
        events.first().map(|e| (e.key, e.output)),
        Some((7, FdOutput::Trust)),
        "expected the stream to establish trust first: {events:?}"
    );

    sender.crash();
    let crash_instant = Instant::now();
    let deadline = crash_instant + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Some(s) = monitor
            .events()
            .try_iter()
            .find(|e| e.output == FdOutput::Suspect)
        {
            assert_eq!(s.key, 7);
            // The sweeper pushed the S-transition; detection latency is
            // interval + margin plus sweep/scheduling slack.
            assert!(
                crash_instant.elapsed() < Duration::from_secs(2),
                "suspicion published too late"
            );
            return;
        }
        sleep(Duration::from_millis(5));
    }
    panic!("sweeper never published the S-transition after the crash");
}

#[test]
fn saturated_shard_queue_drops_and_counts_instead_of_blocking() {
    // A runtime whose single worker is effectively stalled (huge sweep
    // interval, clock pinned at zero) and whose queue holds 8 entries.
    let clock = Arc::new(ManualClock::new());
    let rt = ShardRuntime::new(
        ShardConfig {
            detector: DetectorConfig::new(
                DetectorSpec::TwoWindow { n1: 1, n2: 100 },
                Span::from_millis(10),
                0.04,
            )
            .into(),
            n_shards: 1,
            queue_capacity: 8,
            sweep_interval: Duration::from_millis(200),
            event_capacity: 64,
            ..ShardConfig::default()
        },
        clock as Arc<dyn TimeSource>,
    );

    // 50k ingests must return promptly (never block) and be fully
    // accounted for as processed-or-dropped.
    let start = Instant::now();
    for seq in 1..=50_000u64 {
        rt.ingest(seq % 256, seq, Nanos(seq));
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "ingestion blocked on a saturated queue"
    );
    rt.flush();
    let stats = rt.stats();
    assert_eq!(stats.received(), 50_000);
    assert!(stats.dropped() > 0, "{stats:?}");
    assert!(stats.shards[0].queue_depth <= 8);
}

// ---------------------------------------------------------------------------
// Wheel-vs-heap differential property test.
//
// `ProcessSet` (dense slots + hierarchical timing wheel) and
// `HeapProcessSet` (the original lazy-deletion binary heap, kept as the
// reference oracle) implement the same published-timeline contract. On a
// random interleaving of heartbeats, sweeps, registrations and
// deregistrations they must agree on:
//
//   * every decision returned for every heartbeat,
//   * the `next_expiry` value after every single operation (the parking
//     deadline the shard workers sleep on),
//   * the per-stream Trust/Suspect event timeline, event for event,
//   * final outputs and trusted/suspected counts.
// ---------------------------------------------------------------------------

mod wheel_heap_differential {
    use super::*;
    use proptest::prelude::*;
    use twofd::core::{HeapProcessSet, ProcessSet, StreamTransition};

    const N_STREAMS: u64 = 6;

    /// One decoded fuzz operation.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Advance time by `dt` and heartbeat `stream` (stale replays the
        /// stream's last sequence number instead of advancing it).
        Heartbeat { stream: u64, stale: bool, dt: u64 },
        /// Advance time by `dt` and sweep both sets.
        Sweep { dt: u64 },
        /// Deregister `stream` from both sets.
        Deregister { stream: u64 },
        /// (Re-)register `stream` in both sets.
        Register { stream: u64 },
    }

    /// Decodes a raw generated tuple into an operation. The `mag` field
    /// picks a time-delta magnitude so traces mix sub-tick steps,
    /// interval-scale steps (around the 100 ms heartbeat period) and
    /// multi-second jumps that force level-1/2/3 wheel cascades.
    fn decode((kind, stream, mag, d): (u8, u64, u8, u64)) -> Op {
        let stream = stream % N_STREAMS;
        let dt = match mag % 4 {
            0 => d % 2_000_000,                     // < 2 ms: within a tick
            1 => 1_000_000 + (d % 200_000_000),     // 1–201 ms: interval scale
            2 => 100_000_000 + (d % 2_000_000_000), // 0.1–2.1 s: level 1–2
            _ => d % 400_000_000_000,               // up to 400 s: level 2–3
        };
        match kind % 100 {
            0..=69 => Op::Heartbeat {
                stream,
                stale: kind % 7 == 0,
                dt,
            },
            70..=84 => Op::Sweep { dt },
            85..=92 => Op::Deregister { stream },
            _ => Op::Register { stream },
        }
    }

    /// Per-stream event timelines from a flat event log (cross-stream
    /// order within one sweep is unspecified — slot order vs key order —
    /// so equality is demanded per stream).
    fn per_stream(events: &[StreamTransition<u64>]) -> BTreeMap<u64, Vec<(FdOutput, Nanos)>> {
        let mut map: BTreeMap<u64, Vec<(FdOutput, Nanos)>> = BTreeMap::new();
        for e in events {
            map.entry(e.key).or_default().push((e.output, e.at));
        }
        map
    }

    fn config() -> DetectorConfig {
        // Tight margin on 2W-FD(1,8): late heartbeats routinely shrink or
        // overrun horizons, so traces exercise S-transitions, missed-
        // expiry synthesis and the shrink (trust_until <= arrival) case.
        DetectorConfig::new(
            DetectorSpec::TwoWindow { n1: 1, n2: 8 },
            Span::from_millis(100),
            0.015,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        #[test]
        fn wheel_and_heap_agree_on_timelines_and_next_expiry(
            raw in prop::collection::vec(
                (0u8..255, 0u64..N_STREAMS, 0u8..4, 0u64..u64::MAX),
                40..280,
            )
        ) {
            let mut wheel: ProcessSet<u64, DetectorConfig> = ProcessSet::new(config());
            let mut heap: HeapProcessSet<u64, DetectorConfig> =
                HeapProcessSet::new(config());
            let mut wheel_events = Vec::new();
            let mut heap_events = Vec::new();
            let mut now = Nanos(10_000_000);
            let mut seqs: BTreeMap<u64, u64> = BTreeMap::new();

            for (i, &tuple) in raw.iter().enumerate() {
                match decode(tuple) {
                    Op::Heartbeat { stream, stale, dt } => {
                        now = Nanos(now.0.saturating_add(dt));
                        let seq = {
                            let c = seqs.entry(stream).or_insert(0);
                            if !stale {
                                *c += 1;
                            }
                            (*c).max(1)
                        };
                        let dw = wheel.on_heartbeat_with_events(
                            stream, seq, now, &mut wheel_events,
                        );
                        let dh = heap.on_heartbeat_with_events(
                            stream, seq, now, &mut heap_events,
                        );
                        prop_assert_eq!(dw, dh, "op {}: decision mismatch", i);
                    }
                    Op::Sweep { dt } => {
                        now = Nanos(now.0.saturating_add(dt));
                        wheel.sweep(now, &mut wheel_events);
                        heap.sweep(now, &mut heap_events);
                    }
                    Op::Deregister { stream } => {
                        let rw = wheel.deregister(&stream);
                        let rh = heap.deregister(&stream);
                        prop_assert_eq!(rw, rh, "op {}: deregister mismatch", i);
                        // A deregistered stream restarts from scratch.
                        seqs.remove(&stream);
                    }
                    Op::Register { stream } => {
                        wheel.register(stream);
                        heap.register(stream);
                    }
                }
                // The parking deadline must agree after *every* op: both
                // prune dead entries, so both report the same live
                // minimum horizon (or none).
                prop_assert_eq!(
                    wheel.next_expiry(),
                    heap.next_expiry(),
                    "op {}: next_expiry diverged",
                    i
                );
                prop_assert_eq!(wheel.len(), heap.len(), "op {}: len diverged", i);
            }

            // Final sweep far in the future flushes every pending expiry.
            now = Nanos(now.0.saturating_add(3_600_000_000_000));
            wheel.sweep(now, &mut wheel_events);
            heap.sweep(now, &mut heap_events);
            prop_assert_eq!(wheel.next_expiry(), heap.next_expiry());

            // Event-for-event equality per stream.
            prop_assert_eq!(per_stream(&wheel_events), per_stream(&heap_events));

            // Output and gauge agreement at several probe instants.
            for probe in [now, Nanos(now.0 + 1), Nanos(now.0 + 50_000_000)] {
                for stream in 0..N_STREAMS {
                    prop_assert_eq!(
                        wheel.output(&stream, probe),
                        heap.output(&stream, probe)
                    );
                }
                prop_assert_eq!(wheel.counts(probe), heap.counts(probe));
            }
        }
    }
}
