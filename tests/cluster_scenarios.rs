//! End-to-end cluster simulation: the scripted scenario library runs
//! the real sharded monitor runtime in virtual time, every scenario's
//! report must land inside its declared QoS envelope, and every run
//! must replay bit-identically from its seed.

use twofd::cluster::{library, run, FederationPlan, Scale, Scenario};
use twofd::core::{DetectorConfig, DetectorSpec};
use twofd::sim::Span;

const SEED: u64 = 0x2FD0_51ED;

fn by_name(name: &str) -> Scenario {
    library(Scale::Quick)
        .into_iter()
        .find(|s| s.name() == name)
        .expect("scenario in library")
}

#[test]
fn every_scenario_lands_in_its_envelope() {
    for scenario in library(Scale::Quick) {
        match scenario.run_checked(SEED) {
            Ok(report) => {
                assert!(
                    report.deliveries > 0,
                    "{}: no heartbeats delivered",
                    scenario.name()
                );
            }
            Err(violations) => panic!(
                "scenario {} violated its envelope:\n  {}",
                scenario.name(),
                violations.join("\n  ")
            ),
        }
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    // `crash` exercises both arrival ingestion and sweep-driven
    // expiries, so its timeline, final outputs and QoS metrics all
    // depend on the stochastic link draws.
    let scenario = by_name("crash");
    let a = scenario.run(42);
    let b = scenario.run(42);
    assert_eq!(a, b, "same seed must reproduce the identical report");
    assert_eq!(a.digest(), b.digest());
    assert!(a.transitions() > 0, "crash scenario must produce events");
}

#[test]
fn different_seeds_diverge() {
    let scenario = by_name("crash");
    let a = scenario.run(1);
    let b = scenario.run(2);
    assert_ne!(
        a.digest(),
        b.digest(),
        "stochastic link delays must make distinct seeds observable"
    );
}

#[test]
fn federation_is_inert_for_crash_stop_traffic() {
    // Turning the digest relay on over a plain crash-stop run (no
    // restarts, every incarnation 0, no monitor deaths → no adoptions)
    // must leave the observable report — timelines, final outputs, QoS
    // bits — identical to the pre-federation runtime. The relay may
    // only ever *add* behaviour when a monitor actually dies.
    let base = by_name("asymmetric_link");
    let plain = base.run(SEED);

    let mut federated = base.config.clone();
    federated.federation = Some(FederationPlan {
        digest_interval: Span::from_millis(200),
        relay_delay: Span::from_millis(1),
        peer_detector: DetectorConfig::new(
            DetectorSpec::Chen { window: 1 },
            Span::from_millis(200),
            0.15,
        ),
    });
    let fed = run(&federated, SEED);

    assert_eq!(
        plain.digest(),
        fed.digest(),
        "digest relay changed a crash-stop timeline"
    );
    assert_eq!(plain.monitors, fed.monitors);
    assert_eq!(
        fed.monitors.iter().map(|m| m.adopted).sum::<u64>(),
        0,
        "nothing to adopt while every monitor lives"
    );
    // The relay itself did run: digest + relay events are scheduler
    // work on top of the identical heartbeat traffic.
    assert!(fed.sim_events > plain.sim_events);
}

#[test]
fn monitor_failover_adopts_and_replays_bit_identically() {
    // The federation tentpole, end to end: monitor 0 dies mid-run, the
    // survivor adopts its relayed digest view (bumped incarnation
    // included) and holds every stream trusted across the gap — and the
    // whole failover replays bit-identically from its seed.
    let scenario = by_name("monitor_failover");
    let a = scenario.run(SEED);
    let b = scenario.run(SEED);
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());

    assert_eq!(a.monitors[0].adopted, 0, "the dead monitor adopts nothing");
    assert_eq!(
        a.monitors[1].adopted as usize,
        scenario.config.senders.len(),
        "the survivor adopts every relayed stream"
    );
    for m in &a.monitors {
        assert_eq!(m.events_dropped, 0);
    }
}

#[test]
fn qos_metrics_replay_exactly() {
    // QosMetrics are f64-valued estimates; determinism means exact
    // bit-equality, not approximate agreement.
    let scenario = by_name("steady_state");
    let a = scenario.run(7);
    let b = scenario.run(7);
    for (ma, mb) in a.monitors.iter().zip(&b.monitors) {
        assert_eq!(ma.qos, mb.qos);
    }
}
