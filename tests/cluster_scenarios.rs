//! End-to-end cluster simulation: the scripted scenario library runs
//! the real sharded monitor runtime in virtual time, every scenario's
//! report must land inside its declared QoS envelope, and every run
//! must replay bit-identically from its seed.

use twofd::cluster::{library, Scale, Scenario};

const SEED: u64 = 0x2FD0_51ED;

fn by_name(name: &str) -> Scenario {
    library(Scale::Quick)
        .into_iter()
        .find(|s| s.name() == name)
        .expect("scenario in library")
}

#[test]
fn every_scenario_lands_in_its_envelope() {
    for scenario in library(Scale::Quick) {
        match scenario.run_checked(SEED) {
            Ok(report) => {
                assert!(
                    report.deliveries > 0,
                    "{}: no heartbeats delivered",
                    scenario.name()
                );
            }
            Err(violations) => panic!(
                "scenario {} violated its envelope:\n  {}",
                scenario.name(),
                violations.join("\n  ")
            ),
        }
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    // `crash` exercises both arrival ingestion and sweep-driven
    // expiries, so its timeline, final outputs and QoS metrics all
    // depend on the stochastic link draws.
    let scenario = by_name("crash");
    let a = scenario.run(42);
    let b = scenario.run(42);
    assert_eq!(a, b, "same seed must reproduce the identical report");
    assert_eq!(a.digest(), b.digest());
    assert!(a.transitions() > 0, "crash scenario must produce events");
}

#[test]
fn different_seeds_diverge() {
    let scenario = by_name("crash");
    let a = scenario.run(1);
    let b = scenario.run(2);
    assert_ne!(
        a.digest(),
        b.digest(),
        "stochastic link delays must make distinct seeds observable"
    );
}

#[test]
fn qos_metrics_replay_exactly() {
    // QosMetrics are f64-valued estimates; determinism means exact
    // bit-equality, not approximate agreement.
    let scenario = by_name("steady_state");
    let a = scenario.run(7);
    let b = scenario.run(7);
    for (ma, mb) in a.monitors.iter().zip(&b.monitors) {
        assert_eq!(ma.qos, mb.qos);
    }
}
