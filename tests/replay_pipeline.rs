//! Integration tests of the full pipeline: generation → serialization →
//! replay → metrics, across crates.

use twofd::core::{replay, DetectorSpec};
use twofd::prelude::*;
use twofd::trace::{decode_binary, decode_csv, encode_binary, encode_csv};

#[test]
fn replay_is_deterministic_end_to_end() {
    for _ in 0..2 {
        let run = || {
            let trace = WanTraceConfig::small(20_000, 77).generate();
            let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(80));
            replay(&mut fd, &trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}

#[test]
fn serialization_round_trip_preserves_replay_results() {
    let trace = WanTraceConfig::small(10_000, 88).generate();
    let binary = decode_binary(&encode_binary(&trace)).unwrap();
    let csv = decode_csv(&encode_csv(&trace)).unwrap();
    assert_eq!(trace, binary);
    assert_eq!(trace, csv);

    for spec in DetectorSpec::paper_comparison() {
        let direct = {
            let mut fd = spec.build(trace.interval, 0.5);
            replay(fd.as_mut(), &trace)
        };
        let via_binary = {
            let mut fd = spec.build(binary.interval, 0.5);
            replay(fd.as_mut(), &binary)
        };
        assert_eq!(direct, via_binary, "{} diverged after codec", spec.label());
    }
}

#[test]
fn metrics_invariants_hold_for_every_detector() {
    let trace = WanTraceConfig::small(20_000, 99).generate();
    for spec in DetectorSpec::paper_comparison() {
        for tuning in [0.05, 0.5, 3.0] {
            let mut fd = spec.build(trace.interval, tuning);
            let result = replay(fd.as_mut(), &trace);
            let m = result.metrics();
            let label = spec.label();

            assert!(
                (0.0..=1.0).contains(&m.query_accuracy),
                "{label}: PA {}",
                m.query_accuracy
            );
            assert!(m.mistake_rate >= 0.0);
            assert!(m.avg_mistake_duration >= 0.0);
            assert!(m.detection_time >= 0.0);
            assert!(m.worst_detection_time >= m.detection_time);
            assert_eq!(m.mistakes as usize, result.mistakes.len());

            // Mistakes are chronologically ordered, non-overlapping and
            // within the observation window.
            for w in result.mistakes.windows(2) {
                assert!(w[0].end <= w[1].start, "{label}: overlapping mistakes");
            }
            for mk in &result.mistakes {
                assert!(mk.start < mk.end, "{label}: empty mistake");
                assert!(mk.end <= result.horizon, "{label}: mistake past horizon");
            }
            // Only the last mistake may be censored.
            for mk in result.mistakes.iter().rev().skip(1) {
                assert!(!mk.censored, "{label}: censored mistake not last");
            }
        }
    }
}

#[test]
fn larger_margins_never_increase_mistakes() {
    let trace = WanTraceConfig::small(20_000, 111).generate();
    for spec in [
        DetectorSpec::Chen { window: 1 },
        DetectorSpec::Chen { window: 1000 },
        DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
    ] {
        let mut last = u64::MAX;
        for tuning in [0.0, 0.05, 0.2, 1.0, 5.0] {
            let mut fd = spec.build(trace.interval, tuning);
            let m = replay(fd.as_mut(), &trace).metrics();
            assert!(
                m.mistakes <= last,
                "{}: mistakes increased from {last} to {} at Δto={tuning}",
                spec.label(),
                m.mistakes
            );
            last = m.mistakes;
        }
    }
}

#[test]
fn crash_detection_respects_margin_ordering() {
    use twofd::core::detect_crash;
    use twofd::trace::generate_scripted;

    let cfg = WanTraceConfig::small(2_000, 5);
    let crash_at = Nanos::from_secs(150);
    let trace = generate_scripted("crash", cfg.interval, cfg.scenario(), 5, Some(crash_at));

    let mut tds = Vec::new();
    for margin in [50u64, 200, 800] {
        let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(margin));
        let td = detect_crash(&mut fd, &trace, crash_at).unwrap();
        tds.push(td);
    }
    assert!(
        tds[0] < tds[1] && tds[1] < tds[2],
        "detection times {tds:?}"
    );
    // Exactly Δto apart for the Chen family (freshness point shifts by
    // the margin delta).
    assert_eq!(tds[1] - tds[0], Span::from_millis(150));
    assert_eq!(tds[2] - tds[1], Span::from_millis(600));
}

#[test]
fn lan_trace_is_nearly_mistake_free_at_modest_margins() {
    let trace = LanTraceConfig::small(50_000, 6).generate();
    // 10 ms margin on a network with ~100 µs delays and no loss.
    let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(10));
    let m = replay(&mut fd, &trace).metrics();
    // Only the rare scripted stalls can cause mistakes.
    assert!(m.query_accuracy > 0.999, "PA {}", m.query_accuracy);
    assert!(
        m.mistakes < 10,
        "unexpectedly many LAN mistakes: {}",
        m.mistakes
    );
}
