//! Online QoS tracking against the offline replay pipeline.
//!
//! The `QosTracker` wired into the sharded runtime watches decisions and
//! transitions *as they stream past*; `twofd::core::replay` reconstructs
//! the same timeline after the fact with the whole trace in hand. Both
//! end in `QosMetrics::from_mistakes`, so on a deterministic clock the
//! online cumulative-window numbers must agree with the offline oracle
//! to floating-point noise — T_D, the mistake rate, T_M and P_A alike.
//! Any drift here means the live `/metrics` numbers are lying about what
//! a replay of the same trace would report.

use std::sync::Arc;
use std::time::Duration;
use twofd::core::{replay, DetectorConfig, DetectorSpec, QosMetrics};
use twofd::net::{ManualClock, ObsOptions, ShardConfig, ShardRuntime, TimeSource};
use twofd::obs::{QosPlan, QosTrackerConfig};
use twofd::sim::Span;
use twofd::trace::{Trace, WanTraceConfig};

const SHORT_WINDOW: usize = 8;
const LONG_WINDOW: usize = 50;
// Tight margin so the WAN tail produces genuine mistakes, censored
// tails and re-trusts — the paths where online/offline could diverge.
const MARGIN: Span = Span(15_000_000);

fn detector_config(interval: Span) -> DetectorConfig {
    DetectorConfig::new(
        DetectorSpec::TwoWindow {
            n1: SHORT_WINDOW,
            n2: LONG_WINDOW,
        },
        interval,
        MARGIN.as_secs_f64(),
    )
}

/// Drives `trace` through a QoS-tracking shard runtime under the
/// determinism protocol and snapshots the online metrics at the trace
/// horizon.
fn online_metrics(trace: &Trace) -> QosMetrics {
    let clock = Arc::new(ManualClock::new());
    let rt = ShardRuntime::new(
        ShardConfig {
            detector: detector_config(trace.interval).into(),
            n_shards: 2,
            queue_capacity: 4096,
            sweep_interval: Duration::from_millis(1),
            event_capacity: 1 << 16,
            obs: ObsOptions {
                jitter: false,
                qos: Some(QosPlan::Uniform(QosTrackerConfig::cumulative(
                    trace.interval,
                ))),
            },
        },
        clock.clone() as Arc<dyn TimeSource>,
    );

    for a in trace.arrivals() {
        clock.advance_to(a.at);
        rt.ingest(9, a.seq, a.at);
    }
    rt.flush();
    clock.advance_to(trace.end_time());
    rt.qos_metrics(9).expect("stream 9 is tracked")
}

fn assert_close(axis: &str, online: f64, offline: f64, seed: u64) {
    let tol = 1e-9 * offline.abs().max(1.0);
    assert!(
        (online - offline).abs() <= tol,
        "seed {seed}: online {axis} = {online} vs offline {offline}"
    );
}

#[test]
fn online_tracker_matches_offline_replay_metrics() {
    let mut saw_mistakes = false;
    for seed in [3u64, 17, 40, 71, 104] {
        let trace = WanTraceConfig::small(400, seed).generate();

        let mut fd = detector_config(trace.interval).build();
        let offline = replay(&mut fd, &trace).metrics();
        saw_mistakes |= offline.mistakes > 0;

        let online = online_metrics(&trace);

        assert_eq!(
            online.mistakes, offline.mistakes,
            "seed {seed}: mistake counts diverged"
        );
        assert_close("T_D", online.detection_time, offline.detection_time, seed);
        assert_close("λ_M", online.mistake_rate, offline.mistake_rate, seed);
        assert_close(
            "T_M",
            online.avg_mistake_duration,
            offline.avg_mistake_duration,
            seed,
        );
        assert_close("P_A", online.query_accuracy, offline.query_accuracy, seed);
    }
    assert!(
        saw_mistakes,
        "no seed produced a mistake; the differential never exercised the mistake paths"
    );
}
