//! Failure-injection tests: every detector must detect a real crash —
//! the *completeness* side of the paper's model — under clean, lossy and
//! bursty network conditions, within a bounded time.

use twofd::core::{detect_crash, DetectorSpec};
use twofd::prelude::*;
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

const DI_MS: u64 = 100;

fn crash_trace(loss: LossSpec, delay: DelaySpec, crash_at_secs: u64, seed: u64) -> (Trace, Nanos) {
    let crash_at = Nanos::from_secs(crash_at_secs);
    let scenario = NetworkScenario::uniform("crash", 2 * crash_at_secs * 1000 / DI_MS, delay, loss);
    let t = generate_scripted(
        "crash",
        Span::from_millis(DI_MS),
        scenario,
        seed,
        Some(crash_at),
    );
    (t, crash_at)
}

fn all_detectors() -> Vec<(DetectorSpec, f64)> {
    vec![
        (DetectorSpec::TwoWindow { n1: 1, n2: 1000 }, 0.2),
        (DetectorSpec::Chen { window: 1 }, 0.2),
        (DetectorSpec::Chen { window: 1000 }, 0.2),
        (DetectorSpec::Bertier { window: 1000 }, 0.0),
        (DetectorSpec::Phi { window: 1000 }, 2.0),
        (DetectorSpec::Ed { window: 1000 }, 2.0),
    ]
}

#[test]
fn every_detector_detects_a_crash_on_a_clean_link() {
    let (trace, crash_at) = crash_trace(
        LossSpec::None,
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.03,
                std_dev: 0.005,
            },
            floor_nanos: 1_000_000,
        },
        60,
        11,
    );
    for (spec, tuning) in all_detectors() {
        let mut fd = spec.build(trace.interval, tuning);
        let td = detect_crash(fd.as_mut(), &trace, crash_at)
            .unwrap_or_else(|| panic!("{}: no heartbeat seen", spec.label()));
        // Bounded detection: within a couple of seconds for every
        // algorithm at these modest tunings.
        assert!(
            td < Span::from_secs(3),
            "{}: detection took {td}",
            spec.label()
        );
    }
}

#[test]
fn crash_detected_despite_heavy_loss() {
    let (trace, crash_at) = crash_trace(
        LossSpec::Bernoulli { p: 0.3 },
        DelaySpec::Constant { nanos: 20_000_000 },
        60,
        12,
    );
    for (spec, tuning) in all_detectors() {
        let mut fd = spec.build(trace.interval, tuning);
        let td = detect_crash(fd.as_mut(), &trace, crash_at).unwrap();
        assert!(
            td < Span::from_secs(10),
            "{}: detection took {td} at 30% loss",
            spec.label()
        );
    }
}

#[test]
fn crash_during_a_loss_burst_is_still_detected() {
    // Gilbert–Elliott bursts around the crash instant: the detector has
    // stale state and an inflated margin, but must still converge.
    let (trace, crash_at) = crash_trace(
        LossSpec::GilbertElliott {
            p_gb: 0.02,
            p_bg: 0.1,
            loss_good: 0.0,
            loss_bad: 0.9,
        },
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.05,
                std_dev: 0.02,
            },
            floor_nanos: 1_000_000,
        },
        120,
        13,
    );
    for (spec, tuning) in all_detectors() {
        let mut fd = spec.build(trace.interval, tuning);
        let td = detect_crash(fd.as_mut(), &trace, crash_at).unwrap();
        assert!(
            td < Span::from_secs(30),
            "{}: detection took {td} under bursty loss",
            spec.label()
        );
    }
}

#[test]
fn detection_time_scales_with_conservativeness() {
    let (trace, crash_at) = crash_trace(
        LossSpec::None,
        DelaySpec::Constant { nanos: 10_000_000 },
        30,
        14,
    );
    // For each tunable algorithm, a more conservative knob must not
    // detect faster.
    for spec in [
        DetectorSpec::TwoWindow { n1: 1, n2: 100 },
        DetectorSpec::Chen { window: 100 },
        DetectorSpec::Phi { window: 100 },
        DetectorSpec::Ed { window: 100 },
    ] {
        let mut prev = Span::ZERO;
        for tuning in [0.1, 0.5, 2.0] {
            let mut fd = spec.build(trace.interval, tuning);
            let td = detect_crash(fd.as_mut(), &trace, crash_at).unwrap();
            assert!(
                td >= prev,
                "{}: detection time not monotone in the knob",
                spec.label()
            );
            prev = td;
        }
    }
}

#[test]
fn suspicion_is_permanent_after_a_crash() {
    // After the final S-transition there is no heartbeat to restore
    // trust: output_at any later instant must be Suspect.
    use twofd::core::{FailureDetector, FdOutput};
    let (trace, crash_at) = crash_trace(
        LossSpec::None,
        DelaySpec::Constant { nanos: 10_000_000 },
        30,
        15,
    );
    let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(100));
    for a in trace.arrivals() {
        fd.on_heartbeat(a.seq, a.at);
    }
    let td = fd.current_decision().unwrap().trust_until;
    for probe_secs in [1u64, 10, 100, 10_000] {
        let t = td + Span::from_secs(probe_secs);
        assert_eq!(fd.output_at(t), FdOutput::Suspect);
    }
    let _ = crash_at;
}
