//! Integration test of the paper's central claim (Eq. 13): at the same
//! safety margin, the 2W-FD's mistakes are exactly the mistakes made by
//! *both* single-window Chen detectors.

use twofd::core::{replay, ChenFd, Mistake, TwoWindowFd};
use twofd::prelude::*;

fn mistake_sets(
    trace: &Trace,
    n1: usize,
    n2: usize,
    margin: Span,
) -> (Vec<Mistake>, Vec<Mistake>, Vec<Mistake>) {
    let mut two = TwoWindowFd::new(n1, n2, trace.interval, margin);
    let mut c1 = ChenFd::new(n1, trace.interval, margin);
    let mut c2 = ChenFd::new(n2, trace.interval, margin);
    (
        replay(&mut two, trace).mistakes,
        replay(&mut c1, trace).mistakes,
        replay(&mut c2, trace).mistakes,
    )
}

fn overlaps(m: &Mistake, log: &[Mistake]) -> bool {
    log.iter().any(|o| m.start < o.end && o.start < m.end)
}

#[test]
fn every_2w_mistake_is_made_by_both_chen_detectors() {
    let trace = WanTraceConfig::small(30_000, 101).generate();
    for margin_ms in [10u64, 50, 200] {
        let (two, c1, c2) = mistake_sets(&trace, 1, 1000, Span::from_millis(margin_ms));
        for m in &two {
            assert!(
                overlaps(m, &c1) && overlaps(m, &c2),
                "margin {margin_ms} ms: 2W mistake {m:?} not contained in both Chen logs"
            );
        }
    }
}

#[test]
fn two_w_makes_no_more_mistakes_than_either_chen() {
    let trace = WanTraceConfig::small(30_000, 202).generate();
    for margin_ms in [10u64, 50, 200] {
        let (two, c1, c2) = mistake_sets(&trace, 1, 1000, Span::from_millis(margin_ms));
        assert!(
            two.len() <= c1.len(),
            "margin {margin_ms}: 2W {} vs chen(1) {}",
            two.len(),
            c1.len()
        );
        assert!(
            two.len() <= c2.len(),
            "margin {margin_ms}: 2W {} vs chen(1000) {}",
            two.len(),
            c2.len()
        );
    }
}

#[test]
fn containment_holds_for_other_window_pairs() {
    let trace = WanTraceConfig::small(15_000, 303).generate();
    for (n1, n2) in [(1usize, 10usize), (5, 500), (10, 10_000)] {
        let (two, c1, c2) = mistake_sets(&trace, n1, n2, Span::from_millis(40));
        for m in &two {
            assert!(
                overlaps(m, &c1) && overlaps(m, &c2),
                "pair ({n1},{n2}): uncontained mistake {m:?}"
            );
        }
    }
}

#[test]
fn containment_holds_on_the_lan_trace() {
    let trace = LanTraceConfig::small(30_000, 404).generate();
    // LAN margins are millisecond-scale (delays are ~100 µs).
    let (two, c1, c2) = mistake_sets(&trace, 1, 1000, Span::from_micros(300));
    for m in &two {
        assert!(overlaps(m, &c1) && overlaps(m, &c2));
    }
    assert!(two.len() <= c1.len().min(c2.len()));
}

#[test]
fn freshness_points_are_pointwise_max() {
    // Stronger than set containment: at every heartbeat the 2W decision
    // is the max of the two Chen decisions.
    let trace = WanTraceConfig::small(5_000, 505).generate();
    let margin = Span::from_millis(30);
    let mut two = TwoWindowFd::new(1, 100, trace.interval, margin);
    let mut c1 = ChenFd::new(1, trace.interval, margin);
    let mut c2 = ChenFd::new(100, trace.interval, margin);
    for a in trace.arrivals() {
        let d = two.on_heartbeat(a.seq, a.at);
        let d1 = c1.on_heartbeat(a.seq, a.at);
        let d2 = c2.on_heartbeat(a.seq, a.at);
        match (d, d1, d2) {
            (Some(d), Some(d1), Some(d2)) => {
                assert_eq!(d.trust_until, d1.trust_until.max(d2.trust_until));
            }
            (None, None, None) => {}
            other => panic!("freshness disagreement: {other:?}"),
        }
    }
}
