//! End-to-end test over real UDP: sender and monitor on loopback, crash
//! injection, detection within the expected window.

use std::thread::sleep;
use std::time::{Duration, Instant};
use twofd::core::{DetectorConfig, DetectorSpec, FdOutput};
use twofd::net::{HeartbeatSender, Monitor};
use twofd::sim::Span;

fn spawn_pair(interval: Span, margin: Span) -> (HeartbeatSender, Monitor) {
    let tuning = margin.as_secs_f64();
    let detectors = vec![
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 200 }, interval, tuning),
        DetectorConfig::new(DetectorSpec::Chen { window: 200 }, interval, tuning),
    ];
    let monitor = Monitor::spawn(detectors).expect("bind monitor");
    let sender = HeartbeatSender::spawn(1, interval, monitor.local_addr()).expect("spawn sender");
    (sender, monitor)
}

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn trust_is_established_then_crash_is_detected() {
    let interval = Span::from_millis(10);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(50));

    // Trust after a handful of heartbeats.
    assert!(
        wait_for(
            || monitor.outputs().iter().all(|o| *o == FdOutput::Trust),
            Duration::from_secs(3)
        ),
        "detectors never started trusting"
    );
    assert!(monitor.received() > 0);

    // Crash: both detectors must suspect within interval + margin plus
    // scheduling slack.
    sender.crash();
    let crash_instant = Instant::now();
    assert!(
        wait_for(
            || monitor.outputs().iter().all(|o| *o == FdOutput::Suspect),
            Duration::from_secs(3)
        ),
        "crash not detected"
    );
    let detection = crash_instant.elapsed();
    assert!(
        detection < Duration::from_secs(1),
        "detection took {detection:?}"
    );
}

#[test]
fn partition_causes_a_mistake_that_heals() {
    let interval = Span::from_millis(10);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(40));
    assert!(wait_for(
        || monitor.outputs().iter().all(|o| *o == FdOutput::Trust),
        Duration::from_secs(3)
    ));

    sender.pause();
    assert!(
        wait_for(
            || monitor.output(0) == Some(FdOutput::Suspect),
            Duration::from_secs(2)
        ),
        "partition not noticed"
    );
    // Hold the partition a few event-publisher ticks (20 ms granularity)
    // so the S-transition lands in the event stream, not just in direct
    // queries.
    sleep(Duration::from_millis(100));
    sender.resume();
    assert!(
        wait_for(
            || monitor.output(0) == Some(FdOutput::Trust),
            Duration::from_secs(2)
        ),
        "trust not restored after partition"
    );

    // The event stream recorded the S and the T transition.
    let events: Vec<_> = monitor.events().try_iter().collect();
    let suspects = events
        .iter()
        .filter(|e| e.output == FdOutput::Suspect)
        .count();
    let trusts = events
        .iter()
        .filter(|e| e.output == FdOutput::Trust)
        .count();
    assert!(suspects >= 1 && trusts >= 2, "events: {events:?}");
}

#[test]
fn network_estimates_reflect_the_loopback_link() {
    let interval = Span::from_millis(5);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(50));
    assert!(wait_for(
        || monitor.received() > 100,
        Duration::from_secs(5)
    ));
    let est = monitor.network_estimate();
    // Loopback: negligible loss, sub-millisecond jitter.
    assert!(est.loss_prob < 0.05, "pL {}", est.loss_prob);
    assert!(est.delay_var < 1e-4, "V(D) {}", est.delay_var);
    drop(sender);
}
