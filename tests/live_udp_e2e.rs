//! End-to-end test over real UDP: sender and monitor on loopback, crash
//! injection, detection within the expected window.

use std::thread::sleep;
use std::time::{Duration, Instant};
use twofd::core::{DetectorConfig, DetectorSpec, FdOutput};
use twofd::net::{HeartbeatSender, Monitor};
use twofd::sim::Span;

fn spawn_pair(interval: Span, margin: Span) -> (HeartbeatSender, Monitor) {
    let tuning = margin.as_secs_f64();
    let detectors = vec![
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 200 }, interval, tuning),
        DetectorConfig::new(DetectorSpec::Chen { window: 200 }, interval, tuning),
    ];
    let monitor = Monitor::spawn(detectors).expect("bind monitor");
    let sender = HeartbeatSender::spawn(1, interval, monitor.local_addr()).expect("spawn sender");
    (sender, monitor)
}

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn trust_is_established_then_crash_is_detected() {
    let interval = Span::from_millis(10);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(50));

    // Trust after a handful of heartbeats.
    assert!(
        wait_for(
            || monitor.outputs().iter().all(|o| *o == FdOutput::Trust),
            Duration::from_secs(3)
        ),
        "detectors never started trusting"
    );
    assert!(monitor.received() > 0);

    // Crash: both detectors must suspect within interval + margin plus
    // scheduling slack.
    sender.crash();
    let crash_instant = Instant::now();
    assert!(
        wait_for(
            || monitor.outputs().iter().all(|o| *o == FdOutput::Suspect),
            Duration::from_secs(3)
        ),
        "crash not detected"
    );
    let detection = crash_instant.elapsed();
    assert!(
        detection < Duration::from_secs(1),
        "detection took {detection:?}"
    );
}

#[test]
fn partition_causes_a_mistake_that_heals() {
    let interval = Span::from_millis(10);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(40));
    assert!(wait_for(
        || monitor.outputs().iter().all(|o| *o == FdOutput::Trust),
        Duration::from_secs(3)
    ));

    sender.pause();
    assert!(
        wait_for(
            || monitor.output(0) == Some(FdOutput::Suspect),
            Duration::from_secs(2)
        ),
        "partition not noticed"
    );
    // Hold the partition a few event-publisher ticks (20 ms granularity)
    // so the S-transition lands in the event stream, not just in direct
    // queries.
    sleep(Duration::from_millis(100));
    sender.resume();
    assert!(
        wait_for(
            || monitor.output(0) == Some(FdOutput::Trust),
            Duration::from_secs(2)
        ),
        "trust not restored after partition"
    );

    // The event stream recorded the S and the T transition.
    let events: Vec<_> = monitor.events().try_iter().collect();
    let suspects = events
        .iter()
        .filter(|e| e.output == FdOutput::Suspect)
        .count();
    let trusts = events
        .iter()
        .filter(|e| e.output == FdOutput::Trust)
        .count();
    assert!(suspects >= 1 && trusts >= 2, "events: {events:?}");
}

#[test]
fn network_estimates_reflect_the_loopback_link() {
    let interval = Span::from_millis(5);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(50));
    assert!(wait_for(
        || monitor.received() > 100,
        Duration::from_secs(5)
    ));
    let est = monitor.network_estimate();
    // Loopback: negligible loss, sub-millisecond jitter.
    assert!(est.loss_prob < 0.05, "pL {}", est.loss_prob);
    assert!(est.delay_var < 1e-4, "V(D) {}", est.delay_var);
    drop(sender);
}

/// One plain-text HTTP/1.1 GET against a `MetricsServer`; the server
/// sends `Connection: close`, so reading to EOF yields the full reply.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    reply
}

#[test]
fn metrics_endpoint_scrapes_the_live_fleet() {
    use twofd::core::QosSpec;
    use twofd::net::{FleetMonitor, ObsOptions, ShardConfig};
    use twofd::obs::{QosPlan, QosTrackerConfig};

    let interval = Span::from_millis(10);
    // A contract loopback trivially meets: T_D ≤ 1 s, ≥ 60 s between
    // mistakes, mistakes shorter than 1 s — so `twofd_qos_met` must be 1.
    let contract = QosSpec::new(1.0, 60.0, 1.0);
    let monitor = FleetMonitor::spawn_with(ShardConfig {
        detector: DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, interval, 0.05)
            .into(),
        obs: ObsOptions {
            jitter: true,
            qos: Some(QosPlan::Uniform(QosTrackerConfig {
                spec: Some(contract),
                ..QosTrackerConfig::cumulative(interval)
            })),
        },
        ..ShardConfig::default()
    })
    .expect("bind fleet monitor");
    let sender = HeartbeatSender::spawn(42, interval, monitor.local_addr()).expect("spawn sender");
    assert!(
        wait_for(|| monitor.received() > 20, Duration::from_secs(5)),
        "heartbeats never arrived"
    );

    let server = monitor.serve_metrics().expect("bind metrics server");
    let addr = server.local_addr();

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let reply = http_get(addr, "/metrics");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(
        reply.contains("text/plain; version=0.0.4"),
        "wrong content type: {reply}"
    );
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("header/body split");
    // Monitor + shard counters, the sweep histogram, and the live QoS
    // series for the one sending stream — the acceptance checklist.
    for needle in [
        "# TYPE twofd_monitor_rejected_total counter",
        "twofd_shard_received_total{shard=\"",
        "# TYPE twofd_sweep_duration_seconds histogram",
        "twofd_sweep_duration_seconds_bucket{shard=\"0\",le=\"+Inf\"}",
        "twofd_interarrival_seconds_count{shard=\"",
        "twofd_qos_detection_time_seconds{stream=\"42\"}",
        "twofd_qos_query_accuracy{stream=\"42\"}",
        "twofd_qos_met{stream=\"42\"} 1",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    drop(sender);
}
