//! End-to-end test over real UDP: sender and monitor on loopback, crash
//! injection, detection within the expected window.

use std::thread::sleep;
use std::time::{Duration, Instant};
use twofd::core::{DetectorConfig, DetectorSpec, FdOutput};
use twofd::net::{HeartbeatSender, Monitor};
use twofd::sim::Span;

fn spawn_pair(interval: Span, margin: Span) -> (HeartbeatSender, Monitor) {
    let tuning = margin.as_secs_f64();
    let detectors = vec![
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 200 }, interval, tuning),
        DetectorConfig::new(DetectorSpec::Chen { window: 200 }, interval, tuning),
    ];
    let monitor = Monitor::spawn(detectors).expect("bind monitor");
    let sender = HeartbeatSender::spawn(1, interval, monitor.local_addr()).expect("spawn sender");
    (sender, monitor)
}

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn trust_is_established_then_crash_is_detected() {
    let interval = Span::from_millis(10);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(50));

    // Trust after a handful of heartbeats.
    assert!(
        wait_for(
            || monitor.outputs().iter().all(|o| *o == FdOutput::Trust),
            Duration::from_secs(3)
        ),
        "detectors never started trusting"
    );
    assert!(monitor.received() > 0);

    // Crash: both detectors must suspect within interval + margin plus
    // scheduling slack.
    sender.crash();
    let crash_instant = Instant::now();
    assert!(
        wait_for(
            || monitor.outputs().iter().all(|o| *o == FdOutput::Suspect),
            Duration::from_secs(3)
        ),
        "crash not detected"
    );
    let detection = crash_instant.elapsed();
    assert!(
        detection < Duration::from_secs(1),
        "detection took {detection:?}"
    );
}

#[test]
fn partition_causes_a_mistake_that_heals() {
    let interval = Span::from_millis(10);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(40));
    assert!(wait_for(
        || monitor.outputs().iter().all(|o| *o == FdOutput::Trust),
        Duration::from_secs(3)
    ));

    sender.pause();
    assert!(
        wait_for(
            || monitor.output(0) == Some(FdOutput::Suspect),
            Duration::from_secs(2)
        ),
        "partition not noticed"
    );
    // Hold the partition a few event-publisher ticks (20 ms granularity)
    // so the S-transition lands in the event stream, not just in direct
    // queries.
    sleep(Duration::from_millis(100));
    sender.resume();
    assert!(
        wait_for(
            || monitor.output(0) == Some(FdOutput::Trust),
            Duration::from_secs(2)
        ),
        "trust not restored after partition"
    );

    // The event stream recorded the S and the T transition.
    let events: Vec<_> = monitor.events().try_iter().collect();
    let suspects = events
        .iter()
        .filter(|e| e.output == FdOutput::Suspect)
        .count();
    let trusts = events
        .iter()
        .filter(|e| e.output == FdOutput::Trust)
        .count();
    assert!(suspects >= 1 && trusts >= 2, "events: {events:?}");
}

#[test]
fn network_estimates_reflect_the_loopback_link() {
    let interval = Span::from_millis(5);
    let (sender, monitor) = spawn_pair(interval, Span::from_millis(50));
    assert!(wait_for(
        || monitor.received() > 100,
        Duration::from_secs(5)
    ));
    let est = monitor.network_estimate();
    // Loopback: negligible loss, sub-millisecond jitter.
    assert!(est.loss_prob < 0.05, "pL {}", est.loss_prob);
    assert!(est.delay_var < 1e-4, "V(D) {}", est.delay_var);
    drop(sender);
}

/// Sum of `twofd_sweep_duration_seconds_count` across shards — one
/// increment per worker pass that swept, i.e. per wakeup doing work.
fn total_sweeps(monitor: &twofd::net::FleetMonitor) -> u64 {
    monitor
        .registry()
        .render()
        .lines()
        .filter(|l| l.starts_with("twofd_sweep_duration_seconds_count{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap() as u64)
        .sum()
}

/// Deadline-driven sweeping, idle side: with the only stream's trust
/// horizon ~a minute away and no traffic, workers must *park*, not
/// poll. The seed's unconditional 5 ms sleep made ~200 sweeps/s per
/// shard (~800/s for the default four); now the shard holding the one
/// pending expiry re-validates at most every `sweep_interval` (default
/// 250 ms → ≤ 4/s) and streamless shards park indefinitely at zero.
#[test]
fn idle_workers_park_until_their_next_freshness_point() {
    use twofd::net::{FleetMonitor, Heartbeat};
    use twofd::sim::Nanos;

    let interval = Span::from_secs(60);
    let monitor = FleetMonitor::spawn(DetectorConfig::new(
        DetectorSpec::TwoWindow { n1: 1, n2: 100 },
        interval,
        0.1,
    ))
    .expect("bind fleet monitor");
    let sock = std::net::UdpSocket::bind(("127.0.0.1", 0)).expect("bind test socket");
    sock.connect(monitor.local_addr()).expect("connect");
    for seq in 1..=2u64 {
        let hb = Heartbeat {
            stream: 9,
            seq,
            sent_at: Nanos(seq * interval.0),
            incarnation: 0,
        };
        sock.send(&hb.encode()).expect("send heartbeat");
    }
    assert!(
        wait_for(|| monitor.received() == 2, Duration::from_secs(2)),
        "heartbeats never arrived"
    );

    // Let the ingest-triggered passes settle, then measure a quiet
    // second via the sweep histogram's sample count.
    sleep(Duration::from_millis(300));
    let before = total_sweeps(&monitor);
    sleep(Duration::from_secs(1));
    let wakeups = total_sweeps(&monitor) - before;
    assert!(
        wakeups <= 12,
        "idle workers swept {wakeups} times in one second; \
         deadline parking should bound this by sweep_interval"
    );
}

/// Deadline-driven sweeping, latency side: the suspicion must be pushed
/// within one `sweep_interval` of the crashed stream's freshness point,
/// because the worker parks *until* that expiry rather than discovering
/// it on some later poll tick.
#[test]
fn crash_is_detected_within_a_sweep_interval_of_its_freshness_point() {
    use twofd::net::{FleetMonitor, ShardConfig};

    let interval = Span::from_millis(10);
    let margin = Span::from_millis(50);
    let config = ShardConfig {
        detector: DetectorConfig::new(
            DetectorSpec::TwoWindow { n1: 1, n2: 100 },
            interval,
            margin.as_secs_f64(),
        )
        .into(),
        ..ShardConfig::default()
    };
    let sweep_interval = config.sweep_interval;
    let monitor = FleetMonitor::spawn_with(config).expect("bind fleet monitor");
    let sender = HeartbeatSender::spawn(3, interval, monitor.local_addr()).expect("spawn sender");

    assert!(
        wait_for(
            || monitor.output(3) == Some(FdOutput::Trust),
            Duration::from_secs(3)
        ),
        "trust never established"
    );
    sender.crash();
    let crash_instant = Instant::now();
    let suspected = wait_for(
        || {
            monitor
                .events()
                .try_iter()
                .any(|e| e.key == 3 && e.output == FdOutput::Suspect)
        },
        Duration::from_secs(3),
    );
    let detection = crash_instant.elapsed();
    assert!(suspected, "sweeper never pushed the suspicion");
    // The freshness point is at most `interval + margin` (plus estimator
    // slack) past the last beat; parking wakes at that instant, bounded
    // by one `sweep_interval` re-validation, plus scheduling slack. The
    // seed's bound here was a full second.
    let bound =
        Duration::from_nanos(interval.0 + margin.0) + sweep_interval + Duration::from_millis(200);
    assert!(
        detection < bound,
        "suspicion took {detection:?}, bound {bound:?}"
    );
}

/// One plain-text HTTP/1.1 GET against a `MetricsServer`; the server
/// sends `Connection: close`, so reading to EOF yields the full reply.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    reply
}

#[test]
fn metrics_endpoint_scrapes_the_live_fleet() {
    use twofd::core::QosSpec;
    use twofd::net::{FleetMonitor, ObsOptions, ShardConfig};
    use twofd::obs::{QosPlan, QosTrackerConfig};

    let interval = Span::from_millis(10);
    // A contract loopback trivially meets: T_D ≤ 1 s, ≥ 60 s between
    // mistakes, mistakes shorter than 1 s — so `twofd_qos_met` must be 1.
    let contract = QosSpec::new(1.0, 60.0, 1.0);
    let monitor = FleetMonitor::spawn_with(ShardConfig {
        detector: DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, interval, 0.05)
            .into(),
        obs: ObsOptions {
            jitter: true,
            qos: Some(QosPlan::Uniform(QosTrackerConfig {
                spec: Some(contract),
                ..QosTrackerConfig::cumulative(interval)
            })),
        },
        ..ShardConfig::default()
    })
    .expect("bind fleet monitor");
    let sender = HeartbeatSender::spawn(42, interval, monitor.local_addr()).expect("spawn sender");
    assert!(
        wait_for(|| monitor.received() > 20, Duration::from_secs(5)),
        "heartbeats never arrived"
    );

    let server = monitor.serve_metrics().expect("bind metrics server");
    let addr = server.local_addr();

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let reply = http_get(addr, "/metrics");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(
        reply.contains("text/plain; version=0.0.4"),
        "wrong content type: {reply}"
    );
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("header/body split");
    // Monitor + shard counters, the sweep histogram, and the live QoS
    // series for the one sending stream — the acceptance checklist.
    for needle in [
        "# TYPE twofd_monitor_rejected_total counter",
        "twofd_shard_received_total{shard=\"",
        "# TYPE twofd_sweep_duration_seconds histogram",
        "twofd_sweep_duration_seconds_bucket{shard=\"0\",le=\"+Inf\"}",
        "twofd_interarrival_seconds_count{shard=\"",
        "twofd_qos_detection_time_seconds{stream=\"42\"}",
        "twofd_qos_query_accuracy{stream=\"42\"}",
        "twofd_qos_met{stream=\"42\"} 1",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    drop(sender);
}
