//! Quickstart: monitor a (simulated) remote process with the 2W-FD.
//!
//! Generates a WAN-like heartbeat trace, replays the paper's detector
//! (windows 1 and 1000) over it, and prints the QoS metrics the paper
//! evaluates — detection time, mistake rate, mistake duration and query
//! accuracy.
//!
//! Run: `cargo run --release --example quickstart`

use twofd::prelude::*;

fn main() {
    // 1. A synthetic WAN trace: 100 ms heartbeats through four network
    //    regimes (stable / loss burst / worm congestion / stable).
    let trace = WanTraceConfig::small(50_000, 42).generate();
    let stats = TraceStats::compute(&trace);
    println!(
        "trace: {} heartbeats, {:.2}% lost, mean delay {:.1} ms (p99 {:.1} ms)",
        trace.sent(),
        100.0 * stats.loss_rate,
        1e3 * stats.delay_mean,
        1e3 * stats.delay_percentiles.2,
    );

    // 2. The paper's detector: short window 1, long window 1000, with a
    //    50 ms safety margin.
    let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(50));

    // 3. Replay and report.
    let result = replay(&mut fd, &trace);
    let m = result.metrics();
    println!("\n2W-FD(1,1000), Δto = 50 ms:");
    println!("  detection time   T_D  = {:.1} ms", 1e3 * m.detection_time);
    println!("  mistake rate     T_MR = {:.4e} /s", m.mistake_rate);
    println!(
        "  mistake duration T_M  = {:.1} ms",
        1e3 * m.avg_mistake_duration
    );
    println!("  query accuracy   P_A  = {:.6}", m.query_accuracy);
    println!("  mistakes: {} over {:.0} s", m.mistakes, m.observed_secs);

    // 4. The same trace with a crash: how fast is it detected?
    let mut cfg = WanTraceConfig::small(50_000, 42);
    cfg.samples = 1_000;
    let crash_at = Nanos::from_secs(80);
    let crash_trace = {
        use twofd::trace::generate_scripted;
        generate_scripted("crashy", cfg.interval, cfg.scenario(), 42, Some(crash_at))
    };
    let mut fd = TwoWindowFd::paper_default(crash_trace.interval, Span::from_millis(50));
    let td = detect_crash(&mut fd, &crash_trace, crash_at).expect("heartbeats delivered");
    println!("\ncrash injected at t = 80 s → detected after {td}");
}
