//! Monitoring a fleet of processes with one service endpoint.
//!
//! Five heartbeat senders (distinct stream ids) target a single
//! [`FleetMonitor`] socket. Two of them crash; the monitor's status
//! table must flag exactly those two.
//!
//! Run: `cargo run --release --example fleet_monitor`

use std::thread::sleep;
use std::time::Duration;
use twofd::core::{DetectorConfig, DetectorSpec};
use twofd::net::{FleetMonitor, HeartbeatSender};
use twofd::sim::Span;

fn main() {
    let interval = Span::from_millis(20);
    // One spec-based recipe; every newly seen stream gets an inline
    // 2W-FD instance built from it.
    let recipe = DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 200 }, interval, 0.06);
    let monitor = FleetMonitor::spawn(recipe).expect("bind fleet monitor");
    println!("fleet monitor on {}\n", monitor.local_addr());

    let senders: Vec<HeartbeatSender> = (1..=5)
        .map(|stream| {
            HeartbeatSender::spawn(stream, interval, monitor.local_addr()).expect("spawn sender")
        })
        .collect();

    sleep(Duration::from_millis(800));
    print_statuses("steady state", &monitor);

    println!("\n>>> crashing streams 2 and 4");
    senders[1].crash();
    senders[3].crash();
    sleep(Duration::from_millis(500));
    print_statuses("after crashes", &monitor);

    let mut suspected = monitor.suspected();
    suspected.sort_unstable();
    println!("\nsuspected streams: {suspected:?} (expected [2, 4])");
    assert_eq!(suspected, vec![2, 4]);

    let stats = monitor.stats();
    println!(
        "runtime stats: {} shards, {} received, {} dropped, {} live / {} suspect, {} transitions",
        stats.shards.len(),
        stats.received(),
        stats.dropped(),
        stats.live(),
        stats.suspect(),
        stats.transitions(),
    );
    println!("fleet monitoring verdicts correct ✓");
}

fn print_statuses(label: &str, monitor: &FleetMonitor) {
    println!(
        "--- {label}: {} heartbeats received ---",
        monitor.received()
    );
    let mut statuses = monitor.statuses();
    statuses.sort_by_key(|s| s.key);
    for s in statuses {
        println!(
            "  stream {}: {:?} (last seq {:?})",
            s.key, s.output, s.last_seq
        );
    }
}
