//! Adaptive reconfiguration of the shared service (§V-A).
//!
//! The service starts from a deliberately poor guess of the network's
//! behaviour, measures `(pL, V(D))` from its own heartbeat stream, and
//! re-runs the configuration procedure every 30 simulated seconds. Mid
//! run the network degrades sharply; the simulation shows the service
//! tightening its heartbeat interval in response, and relaxing again
//! when conditions recover.
//!
//! Run: `cargo run --release --example adaptive_service`

use twofd::prelude::*;
use twofd::service::AdaptiveServiceSim;
use twofd::sim::{DelaySpec, DistSpec, LossSpec};

fn delay(mean: f64, std_dev: f64) -> DelaySpec {
    DelaySpec::Iid {
        dist: DistSpec::LogNormal { mean, std_dev },
        floor_nanos: 100_000,
    }
}

fn main() {
    let mut registry = AppRegistry::new();
    registry.register("group-membership", QosSpec::new(1.0, 3_600.0, 1.0));
    registry.register("batch-scheduler", QosSpec::new(4.0, 600.0, 2.0));

    let mut sim = AdaptiveServiceSim::new(
        registry,
        NetworkBehavior::new(0.05, 0.001), // pessimistic provisioning guess
        Span::from_secs(30),
        delay(0.02, 0.004), // the network is actually quiet
        LossSpec::Bernoulli { p: 0.002 },
        42,
    )
    .expect("tuples achievable under the guess");

    println!("phase 1: quiet network (pL≈0.2%, sd(D)≈4 ms), poor initial guess\n");
    let report = sim.run_until(Nanos::from_secs(300));
    print_reconfigs(&report);

    println!("\nphase 2: network degrades (pL≈8%, sd(D)≈50 ms)\n");
    sim.set_network(delay(0.08, 0.05), LossSpec::Bernoulli { p: 0.08 });
    let report = sim.run_until(Nanos::from_secs(900));
    print_reconfigs(&report);

    println!("\nphase 3: network recovers\n");
    sim.set_network(delay(0.02, 0.004), LossSpec::Bernoulli { p: 0.002 });
    let report = sim.run_until(Nanos::from_secs(1800));
    print_reconfigs(&report);

    println!(
        "\n{} heartbeats sent, {} delivered, {} configurations adopted over 30 simulated minutes",
        report.sent,
        report.delivered,
        report.reconfigurations.len()
    );
}

fn print_reconfigs(report: &twofd::service::AdaptiveRunReport) {
    for r in &report.reconfigurations {
        println!(
            "  t={:>7.1}s  Δi = {:>10}  (pL est {:.4}, sd(D) est {:.1} ms)",
            r.at.as_secs_f64(),
            format!("{}", r.interval),
            r.loss_estimate,
            1e3 * r.delay_var_estimate.sqrt(),
        );
    }
}
