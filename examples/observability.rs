//! Live observability: a fleet monitor with a Prometheus endpoint.
//!
//! Three heartbeat senders target one [`FleetMonitor`] configured with
//! the full instrumentation: per-shard counters and sweep-latency
//! histograms (always on), inter-arrival jitter histograms, and an
//! online [`QosTracker`](twofd::obs::QosTracker) per stream judging the
//! live T_D / T_MR / T_M estimates against a contracted
//! [`QosSpec`](twofd::core::QosSpec). The monitor's registry is served
//! over HTTP; while the example runs you can scrape it yourself:
//!
//! ```text
//! curl http://127.0.0.1:<port>/metrics
//! curl http://127.0.0.1:<port>/healthz
//! ```
//!
//! The example then crashes one sender and shows the QoS verdict of the
//! crashed stream flip: the silence becomes a (censored) suspicion
//! period that blows through the contract's mistake-recurrence bound.
//!
//! Run: `cargo run --release --example observability`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread::sleep;
use std::time::Duration;
use twofd::core::{DetectorConfig, DetectorSpec, QosSpec};
use twofd::net::{FleetMonitor, HeartbeatSender, ObsOptions, ShardConfig};
use twofd::obs::{QosPlan, QosTrackerConfig};
use twofd::sim::Span;

fn main() {
    let interval = Span::from_millis(20);
    // The contract each stream is judged against, online: detect crashes
    // within 250 ms, at most one mistake per 10 s, mistakes shorter than
    // 1 s. A healthy loopback stream meets it; a crashed stream cannot.
    let contract = QosSpec::new(0.25, 10.0, 1.0);

    let monitor = FleetMonitor::spawn_with(ShardConfig {
        detector: DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 200 }, interval, 0.06)
            .into(),
        obs: ObsOptions {
            jitter: true,
            qos: Some(QosPlan::Uniform(QosTrackerConfig {
                spec: Some(contract),
                // Judge over the last 30 s so old mistakes age out.
                window: Span::from_secs(30),
                ..QosTrackerConfig::cumulative(interval)
            })),
        },
        ..ShardConfig::default()
    })
    .expect("bind fleet monitor");

    let server = monitor.serve_metrics().expect("bind metrics endpoint");
    println!("fleet monitor on {}", monitor.local_addr());
    println!("metrics at http://{}/metrics\n", server.local_addr());

    let senders: Vec<HeartbeatSender> = (1..=3)
        .map(|stream| {
            HeartbeatSender::spawn(stream, interval, monitor.local_addr()).expect("spawn sender")
        })
        .collect();

    sleep(Duration::from_millis(800));
    println!("--- steady state ---");
    print_verdicts(&monitor);

    println!("\n>>> crashing stream 2");
    senders[1].crash();
    sleep(Duration::from_millis(900));
    println!("--- after the crash ---");
    print_verdicts(&monitor);

    // Scrape our own endpoint, exactly as Prometheus would.
    let body = scrape(&format!("{}", server.local_addr()));
    println!("\n--- /metrics excerpt ---");
    for line in body.lines().filter(|l| {
        l.starts_with("twofd_qos_met")
            || l.starts_with("twofd_qos_detection_time_seconds")
            || l.starts_with("twofd_shard_received_total")
            || l.starts_with("twofd_sweep_duration_seconds_count")
    }) {
        println!("  {line}");
    }

    // The crashed stream's open suspicion is a censored mistake: its
    // rate blows the recurrence bound and its accuracy collapses —
    // guaranteed. Healthy streams are compared *relatively*: on a loaded
    // single-core host a scheduling stall can suspect a healthy stream
    // for a few hundred ms too, but nothing short of an actual crash can
    // rival the crashed stream's ever-growing suspicion tail.
    let accuracy = |stream: u64| monitor.qos_metrics(stream).expect("tracked").query_accuracy;
    let crashed = monitor.qos_verdict(2).expect("tracked");
    assert!(!crashed.met, "the crashed stream must violate the contract");
    assert!(accuracy(2) < 0.9, "the crashed stream must lose accuracy");
    assert!(
        accuracy(2) + 0.2 < accuracy(1).min(accuracy(3)),
        "healthy streams must stay far more accurate than the crashed one"
    );
    println!("\nonline QoS verdicts correct ✓");
}

fn print_verdicts(monitor: &FleetMonitor) {
    for stream in 1..=3u64 {
        let m = monitor.qos_metrics(stream).expect("stream tracked");
        let v = monitor.qos_verdict(stream).expect("stream tracked");
        println!(
            "  stream {stream}: T_D {:.3}s, {} mistakes, P_A {:.4} -> {}",
            m.detection_time,
            m.mistakes,
            m.query_accuracy,
            if v.met {
                "meets contract".to_string()
            } else {
                format!("VIOLATES {:?}", v.violated_axes)
            }
        );
    }
}

/// A one-shot `GET /metrics`, the way any scraper reaches the endpoint.
fn scrape(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(reply)
}
