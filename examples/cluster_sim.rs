//! Runs the scripted cluster-scenario library against the real sharded
//! monitor runtime in virtual time, prints the QoS verdict table, and
//! writes `results/BENCH_simcluster.json` with the virtual-time
//! event rate and wall-clock cost of each scenario.
//!
//! ```sh
//! cargo run --release --example cluster_sim            # full fleets
//! TWOFD_SIM_QUICK=1 cargo run --example cluster_sim    # CI smoke
//! ```

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;
use twofd::cluster::{library, Scale};

const SEED: u64 = 0x2FD0_51ED;

struct Row {
    name: String,
    senders: usize,
    monitors: usize,
    beats_sent: u64,
    deliveries: u64,
    sim_events: u64,
    transitions: u64,
    virtual_secs: f64,
    wall_secs: f64,
    digest: u64,
    envelope_ok: bool,
}

fn main() {
    let quick = std::env::var("TWOFD_SIM_QUICK").is_ok();
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let mode = if quick { "quick" } else { "full" };

    println!("cluster simulation — scale {mode}, seed {SEED:#x}\n");
    println!(
        "{:<20} {:>7} {:>9} {:>10} {:>11} {:>8} {:>9} {:>12} {:>8}",
        "scenario",
        "senders",
        "beats",
        "delivered",
        "transitions",
        "virt s",
        "wall ms",
        "sim ev/s",
        "envelope"
    );

    let mut rows = Vec::new();
    for scenario in library(scale) {
        let senders = scenario.config.senders.len();
        let monitors = scenario.config.monitors.len();
        let started = Instant::now();
        let report = scenario.run(SEED);
        let wall_secs = started.elapsed().as_secs_f64();
        let envelope_ok = match scenario.envelope.check(&report) {
            Ok(()) => true,
            Err(violations) => {
                eprintln!("{}: envelope violated:", report.name);
                for v in &violations {
                    eprintln!("  {v}");
                }
                false
            }
        };
        let virtual_secs = report.virtual_duration.as_secs_f64();
        let row = Row {
            name: report.name.clone(),
            senders,
            monitors,
            beats_sent: report.beats_sent,
            deliveries: report.deliveries,
            sim_events: report.sim_events,
            transitions: report.transitions() as u64,
            virtual_secs,
            wall_secs,
            digest: report.digest(),
            envelope_ok,
        };
        println!(
            "{:<20} {:>7} {:>9} {:>10} {:>11} {:>8.0} {:>9.1} {:>12.0} {:>8}",
            row.name,
            row.senders,
            row.beats_sent,
            row.deliveries,
            row.transitions,
            row.virtual_secs,
            row.wall_secs * 1e3,
            row.sim_events as f64 / row.wall_secs,
            if row.envelope_ok { "ok" } else { "VIOLATED" }
        );
        rows.push(row);
    }

    let speedup: f64 = rows.iter().map(|r| r.virtual_secs).sum::<f64>()
        / rows.iter().map(|r| r.wall_secs).sum::<f64>();
    println!("\naggregate virtual/wall speedup: {speedup:.0}x");

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"cluster_sim/scenarios\",").unwrap();
    writeln!(json, "  \"mode\": \"{mode}\",").unwrap();
    writeln!(json, "  \"seed\": {SEED},").unwrap();
    writeln!(json, "  \"rows\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"senders\": {}, \"monitors\": {}, \
             \"beats_sent\": {}, \"deliveries\": {}, \"transitions\": {}, \
             \"virtual_secs\": {:.0}, \"wall_secs\": {:.4}, \
             \"sim_events_per_sec\": {:.0}, \"digest\": \"{:#018x}\", \
             \"envelope_ok\": {}}}{comma}",
            r.name,
            r.senders,
            r.monitors,
            r.beats_sent,
            r.deliveries,
            r.transitions,
            r.virtual_secs,
            r.wall_secs,
            r.sim_events as f64 / r.wall_secs,
            r.digest,
            r.envelope_ok
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/BENCH_simcluster.json");
    std::fs::write(&out, &json).expect("write bench artifact");
    println!("wrote {}", out.display());

    if rows.iter().any(|r| !r.envelope_ok) {
        std::process::exit(1);
    }
}
