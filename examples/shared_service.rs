//! Failure detection as a service (§V of the paper).
//!
//! Four applications with very different QoS requirements share one
//! heartbeat stream. The example shows:
//!
//! 1. the per-application `(Δi_j, Δto_j)` Chen's procedure would give a
//!    dedicated detector,
//! 2. the combined configuration (`Δi_min`, widened per-app margins),
//! 3. the network-load reduction, and
//! 4. a live shared-stream simulation in which the remote host crashes
//!    and every application detects it within its own budget.
//!
//! Run: `cargo run --release --example shared_service`

use twofd::prelude::*;
use twofd::service::{load_report, SharedServiceDetector};
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

fn main() {
    // 1. Applications and their QoS tuples (T_D^U, T_MR^U, T_M^U).
    let mut registry = AppRegistry::new();
    let ids = [
        registry.register("cluster-manager", QosSpec::new(0.5, 86_400.0, 0.5)),
        registry.register("group-membership", QosSpec::new(1.0, 3_600.0, 1.0)),
        registry.register("batch-scheduler", QosSpec::new(5.0, 600.0, 3.0)),
        registry.register("monitoring-ui", QosSpec::new(10.0, 300.0, 5.0)),
    ];
    let net = NetworkBehavior::new(0.01, 0.01 * 0.01);

    // 2. Combine (Steps 1–4 of §V-C).
    let config = combine(&registry, &net).expect("all tuples achievable");
    println!("shared heartbeat interval Δi_min = {}", config.interval);
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>9}",
        "application", "own Δi (ms)", "own Δto(ms)", "shared Δto(ms)", "adapted"
    );
    for share in &config.shares {
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>14.1} {:>9}",
            share.name,
            share.dedicated.interval.as_millis_f64(),
            share.dedicated.safety_margin.as_millis_f64(),
            share.shared_margin.as_millis_f64(),
            share.adapted,
        );
    }

    // 3. Network load over one hour.
    let report = load_report(&config, Span::from_secs(3600));
    println!(
        "\nnetwork load over 1 h: shared {} msgs vs dedicated {} msgs (×{:.2} reduction)",
        report.shared_messages, report.dedicated_messages, report.reduction_factor
    );

    // 4. Live shared stream with a crash at t = 60 s.
    let crash_at = Nanos::from_secs(60);
    let n = (90.0 / config.interval.as_secs_f64()) as u64;
    let scenario = NetworkScenario::uniform(
        "shared",
        n,
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.03,
                std_dev: 0.01,
            },
            floor_nanos: 1_000_000,
        },
        LossSpec::Bernoulli { p: 0.01 },
    );
    let trace = generate_scripted("shared", config.interval, scenario, 11, Some(crash_at));

    let mut service = SharedServiceDetector::new(&config, &DetectorSpec::default());
    for a in trace.arrivals() {
        service.on_heartbeat(a.seq, a.at);
    }
    println!("\nremote host crashes at t = 60 s:");
    for (id, name) in ids.iter().zip([
        "cluster-manager",
        "group-membership",
        "batch-scheduler",
        "monitoring-ui",
    ]) {
        // Find the instant this app's detector S-transitions for good:
        // its final trust_until.
        let mut lo = crash_at;
        let mut hi = crash_at + Span::from_secs(30);
        for _ in 0..50 {
            let mid = Nanos((lo.0 + hi.0) / 2);
            match service.output_for(*id, mid).unwrap() {
                FdOutput::Trust => lo = mid,
                FdOutput::Suspect => hi = mid,
            }
        }
        let detection = hi.saturating_since(crash_at);
        let budget = registry.get(*id).unwrap().qos.detection_time;
        println!(
            "  {:<18} suspects after {:>8} (budget {:>5.1} s) {}",
            name,
            format!("{detection}"),
            budget,
            if detection.as_secs_f64() <= budget {
                "✓"
            } else {
                "✗ OVER BUDGET"
            },
        );
    }
}
