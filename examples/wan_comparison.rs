//! The paper's §IV-C2 comparison, in miniature: replay six failure
//! detectors over the same WAN trace and print each one's QoS curve
//! (detection time vs mistake rate vs query accuracy).
//!
//! This is the workload of Figures 6/7; the full-scale version lives in
//! `cargo bench -p twofd-bench --bench fig6_7`.
//!
//! Run: `cargo run --release --example wan_comparison`

use twofd::core::{replay, DetectorSpec};
use twofd::prelude::*;

fn main() {
    let trace = WanTraceConfig::small(40_000, 7).generate();
    println!(
        "WAN trace: {} heartbeats over {:.0} s, {:.2}% lost\n",
        trace.sent(),
        trace.end_time().as_secs_f64(),
        100.0 * trace.loss_rate(),
    );
    println!(
        "{:<16} {:>10} {:>14} {:>12} {:>10}",
        "detector", "td (ms)", "tmr (1/s)", "tm (ms)", "pa"
    );

    for spec in DetectorSpec::paper_comparison() {
        // One aggressive and one conservative point per detector (the
        // bench sweeps the full knob range).
        let tunings: &[f64] = match &spec {
            DetectorSpec::Bertier { .. } => &[0.0],
            DetectorSpec::Phi { .. } | DetectorSpec::Ed { .. } => &[1.0, 4.0],
            _ => &[0.05, 0.5],
        };
        for &tuning in tunings {
            let mut fd = spec.build_any(trace.interval, tuning);
            let m = replay(&mut fd, &trace).metrics();
            println!(
                "{:<16} {:>10.1} {:>14.4e} {:>12.1} {:>10.6}",
                fd.name(),
                1e3 * m.detection_time,
                m.mistake_rate,
                1e3 * m.avg_mistake_duration,
                m.query_accuracy,
            );
        }
    }

    println!(
        "\nNote: detectors are tuned differently per row; compare rows at\n\
         similar detection times. The full sweep is the fig6_7 bench."
    );
}
