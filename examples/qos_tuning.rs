//! Chen's QoS configuration procedure in action (§V-A of the paper).
//!
//! An application states *what* it needs — "detect crashes within 1 s,
//! at most one false suspicion per hour, corrected within 1 s" — and the
//! procedure derives *how* to run the detector: the heartbeat interval
//! `Δi` and the safety margin `Δto`, for the measured network behaviour
//! `(pL, V(D))`. The example then validates the configuration by replay:
//! the measured mistake recurrence must respect the requested bound.
//!
//! Run: `cargo run --release --example qos_tuning`

use twofd::core::configure;
use twofd::prelude::*;
use twofd::sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
use twofd::trace::generate_scripted;

fn main() {
    // 1. The application's requirements.
    let spec = QosSpec::new(
        1.0,    // T_D^U: detect within 1 s
        3600.0, // T_MR^U: at most one mistake per hour
        1.0,    // T_M^U: mistakes corrected within 1 s
    );

    // 2. Measure the network from a short probe trace (the paper's
    //    §V-A.1 estimation of pL and V(D)).
    let probe_scenario = NetworkScenario::uniform(
        "probe",
        2_000,
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.04,
                std_dev: 0.012,
            },
            floor_nanos: 1_000_000,
        },
        LossSpec::Bernoulli { p: 0.01 },
    );
    let probe = generate_scripted(
        "probe",
        Span::from_millis(50),
        probe_scenario.clone(),
        3,
        None,
    );
    let mut estimator = NetworkEstimator::new(1000);
    for r in &probe.records {
        if let Some(at) = r.arrival {
            estimator.observe(r.seq, r.send, at);
        }
    }
    let net = estimator.behavior();
    println!(
        "measured network: pL = {:.4}, V(D) = {:.3e} s² (sd {:.1} ms)",
        net.loss_prob,
        net.delay_var,
        1e3 * net.delay_var.sqrt()
    );

    // 3. Configure.
    let cfg = configure(&spec, &net).expect("spec achievable on this network");
    println!(
        "\nconfiguration: Δi = {} (heartbeat rate {:.2}/s), Δto = {}",
        cfg.interval,
        1.0 / cfg.interval.as_secs_f64(),
        cfg.safety_margin,
    );
    assert_eq!(
        cfg.detection_budget(),
        Span::from_secs_f64(spec.detection_time)
    );

    // 4. Validate by replay over a long trace with the same behaviour.
    let horizon_secs = 6.0 * 3600.0;
    let n = (horizon_secs / cfg.interval.as_secs_f64()) as u64;
    let long = NetworkScenario::uniform(
        "validation",
        n,
        probe_scenario.phases[0].delay,
        probe_scenario.phases[0].loss.clone(),
    );
    let trace = generate_scripted("validation", cfg.interval, long, 4, None);
    let mut fd = DetectorConfig::from_qos(DetectorSpec::default(), &cfg).build();
    let m = replay(&mut fd, &trace).metrics();
    println!(
        "\nvalidation over {:.0} h of heartbeats:",
        horizon_secs / 3600.0
    );
    println!(
        "  detection time {:.0} ms (bound {:.0} ms)",
        1e3 * m.detection_time,
        1e3 * spec.detection_time
    );
    let recurrence = m.mistake_recurrence();
    println!(
        "  mistake recurrence {:.0} s (bound ≥ {:.0} s) — {} mistakes total",
        recurrence, spec.mistake_recurrence, m.mistakes
    );
    println!(
        "  mistake duration {:.1} ms (bound {:.0} ms)",
        1e3 * m.avg_mistake_duration,
        1e3 * spec.mistake_duration
    );
    let ok = m.detection_time <= spec.detection_time
        && recurrence >= spec.mistake_recurrence
        && m.avg_mistake_duration <= spec.mistake_duration;
    println!("\nQoS requirement satisfied: {ok}");
}
