//! Live failure detection over real UDP sockets.
//!
//! Spawns a heartbeat sender and a monitor on localhost (the paper's
//! two-process setup, compressed onto one machine), runs three detectors
//! side by side, injects a network partition and then a crash, and
//! prints every Trust/Suspect transition as it happens.
//!
//! Run: `cargo run --release --example live_udp`

use std::thread::sleep;
use std::time::Duration;
use twofd::core::{DetectorConfig, DetectorSpec};
use twofd::net::{HeartbeatSender, Monitor};
use twofd::sim::Span;

fn main() {
    let interval = Span::from_millis(20);
    let margin = Span::from_millis(60);

    // The monitoring process q: three spec-built detectors on one socket.
    let tuning = margin.as_secs_f64();
    let detectors = vec![
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 500 }, interval, tuning),
        DetectorConfig::new(DetectorSpec::Chen { window: 500 }, interval, tuning),
        DetectorConfig::new(DetectorSpec::Phi { window: 500 }, interval, 2.0),
    ];
    let monitor = Monitor::spawn(detectors).expect("bind monitor socket");
    let names = monitor.detector_names();
    println!("monitor listening on {}", monitor.local_addr());

    // The monitored process p.
    let sender = HeartbeatSender::spawn(1, interval, monitor.local_addr()).expect("spawn sender");
    println!(
        "sender started ({} every {})",
        sender.local_addr(),
        interval
    );

    let phase = |name: &str, secs: f64, monitor: &Monitor| {
        sleep(Duration::from_secs_f64(secs));
        let est = monitor.network_estimate();
        println!(
            "\n--- {name}: {} heartbeats received, pL≈{:.3}, V(D)≈{:.2e} s² ---",
            monitor.received(),
            est.loss_prob,
            est.delay_var,
        );
        for e in monitor.events().try_iter() {
            println!(
                "  [{:>9.3}s] {:<14} -> {:?}",
                e.at.as_secs_f64(),
                names[e.detector],
                e.output
            );
        }
        for (i, out) in monitor.outputs().iter().enumerate() {
            println!("  {:<14} now: {:?}", names[i], out);
        }
    };

    phase("steady state", 2.0, &monitor);

    println!("\n>>> injecting a 300 ms partition (heartbeats lost, not delayed)");
    sender.pause();
    sleep(Duration::from_millis(300));
    sender.resume();
    phase("after partition", 2.0, &monitor);

    println!("\n>>> crashing the monitored process");
    sender.crash();
    phase("after crash", 2.0, &monitor);

    let verdicts = monitor.outputs();
    println!(
        "\nall detectors suspect the crashed process: {}",
        verdicts
            .iter()
            .all(|o| *o == twofd::core::FdOutput::Suspect)
    );
}
