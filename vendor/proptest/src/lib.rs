//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, numeric-range / tuple / collection / `any`
//! strategies, `prop_map`, `prop::sample::Index`, and
//! `ProptestConfig::with_cases`. Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the test name and
//!   case number; since generation is fully deterministic (seeded from
//!   the test's name), every failure reproduces exactly under
//!   `cargo test`.
//! * **String strategies** accept the regex-like patterns upstream
//!   takes, but only honour a trailing `{lo,hi}` length bound and
//!   generate printable (non-control) characters — sufficient for the
//!   robustness fuzzing done here.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod sample;

pub mod string;

pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, …).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.effective_cases() {
                    $crate::test_runner::CURRENT_CASE.with(|c| c.set(case));
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut rng
                    );)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "[proptest case #{}] {}",
                $crate::test_runner::CURRENT_CASE.with(|c| c.get()),
                format!($($fmt)*)
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case when an assumption does not hold.
///
/// Without shrinking there is nothing to backtrack, so an unmet
/// assumption simply moves on to the next generated case by panicking
/// is wrong — instead it is treated as a vacuous pass for the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}
