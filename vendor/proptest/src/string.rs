//! String strategies: `&str` patterns as strategies.
//!
//! Upstream interprets a `&str` strategy as a full regex. This
//! stand-in honours only the piece the workspace uses — a trailing
//! `{lo,hi}` repetition bound — and generates printable, non-control
//! characters (the `\PC` class), which is exactly what the CSV-decoder
//! robustness test feeds.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Printable sample alphabet: ASCII plus a few multi-byte characters so
/// decoders see non-trivial UTF-8.
const EXTRA: [char; 8] = ['é', 'λ', 'Ж', '→', '∀', '中', '🦀', '\u{00A0}'];

fn repetition_bounds(pattern: &str) -> (usize, usize) {
    // Parse a trailing "{lo,hi}" if present; otherwise default 0..=64.
    if let Some(open) = pattern.rfind('{') {
        if let Some(close) = pattern[open..].find('}') {
            let body = &pattern[open + 1..open + close];
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse()) {
                    return (lo, hi);
                }
            } else if let Ok(n) = body.trim().parse::<usize>() {
                return (n, n);
            }
        }
    }
    (0, 64)
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = repetition_bounds(self);
        let span = (hi - lo + 1) as u64;
        let n = lo + (rng.next_u64() % span) as usize;
        (0..n)
            .map(|_| {
                let roll = rng.next_u64();
                if roll.is_multiple_of(8) {
                    EXTRA[(roll >> 8) as usize % EXTRA.len()]
                } else {
                    // Printable ASCII: 0x20..=0x7E.
                    char::from(0x20 + ((roll >> 8) % 95) as u8)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honours_trailing_repetition_bound() {
        let mut rng = TestRng::for_test("string_bounds");
        for _ in 0..300 {
            let s = "\\PC{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::for_test("string_exact");
        let s = "x{7}".generate(&mut rng);
        assert_eq!(s.chars().count(), 7);
    }
}
