//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream, strategies here are generate-only (no value tree /
/// shrinking); `generate` must be deterministic given the RNG state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number
    /// of times (upstream rejects globally; here it panics if the
    /// predicate is pathologically narrow).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding one constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    base: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1_000 {
            let u = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&u));
            let i = (-10i64..-2).generate(&mut rng);
            assert!((-10..-2).contains(&i));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_test("map_and_tuple_compose");
        let s = (1u64..10, 0.0f64..1.0).prop_map(|(n, x)| n as f64 + x);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1.0..11.0).contains(&v));
        }
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::for_test("filter_retries");
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
