//! Sampling helpers (`prop::sample`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection whose length is only known at use time.
///
/// Mirrors `proptest::sample::Index`: generate one with
/// `any::<Index>()`, then project it onto a concrete length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this abstract index onto `0..len`.
    ///
    /// # Panics
    /// If `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_always_in_bounds() {
        let mut rng = TestRng::for_test("index_bounds");
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(Index::arbitrary(&mut rng).index(len) < len);
            }
        }
    }
}
