//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// Strategy for `Vec`s with a length drawn from `len` and elements
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::for_test("vec_bounds");
        let s = vec(10u64..20, 3..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (10..20).contains(x)));
        }
    }
}
