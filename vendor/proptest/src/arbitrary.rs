//! The [`any`] strategy and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values across many magnitudes (no NaN/inf: upstream's
    /// default `any::<f64>()` likewise excludes them unless asked).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 41) as i32 - 20;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * unit * 10f64.powi(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_all_octets_eventually() {
        let mut rng = TestRng::for_test("any_u8_covers");
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[u8::arbitrary(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::for_test("any_f64_finite");
        for _ in 0..10_000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
