//! Test configuration and the deterministic RNG behind strategies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;

/// Per-test configuration (upstream-compatible subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `TWOFD_PROPTEST_CASES` cap —
    /// the quick-mode knob (consistent with `TWOFD_BENCH_QUICK` /
    /// `TWOFD_SIM_QUICK`) that lets slow interpreters (Miri,
    /// ThreadSanitizer builds in CI) bound property-test wall time
    /// without forking the test code. Unset or unparsable means no
    /// cap; the cap never *raises* the configured count.
    pub fn effective_cases(&self) -> u32 {
        apply_case_cap(
            self.cases,
            std::env::var("TWOFD_PROPTEST_CASES").ok().as_deref(),
        )
    }
}

/// Pure body of [`ProptestConfig::effective_cases`]: `cap` is the raw
/// `TWOFD_PROPTEST_CASES` value, if set.
fn apply_case_cap(cases: u32, cap: Option<&str>) -> u32 {
    match cap.and_then(|v| v.trim().parse::<u32>().ok()) {
        Some(cap) => cases.min(cap.max(1)),
        None => cases,
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

thread_local! {
    /// The case index currently executing (for failure messages).
    pub static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

/// The RNG strategies draw from. Seeded from the test's fully qualified
/// name so every run of `cargo test` explores the identical sequence —
/// failures always reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the deterministic RNG for one named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn case_cap_is_a_cap_not_a_floor() {
        // (Tested through the pure helper: the env var is
        // process-global and the harness is multi-threaded.)
        assert_eq!(apply_case_cap(256, None), 256);
        assert_eq!(apply_case_cap(256, Some("8")), 8);
        assert_eq!(apply_case_cap(4, Some("8")), 4, "never raises");
        assert_eq!(
            apply_case_cap(256, Some("0")),
            1,
            "zero still runs one case"
        );
        assert_eq!(apply_case_cap(256, Some("lots")), 256, "garbage ignored");
    }
}
