//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro/API surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `Throughput`, `BenchmarkId`, `Bencher::iter`, `black_box`) and backs
//! it with a simple calibrated-loop timer: no statistics, plots or
//! baselines, just honest ns/iter and derived throughput on stderr.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that runs
    /// for roughly the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find n such that n iterations ≳ 50 ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || n >= 1 << 30 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                break;
            }
            n = n.saturating_mul(4);
        }
        // One measured pass at the calibrated count.
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for compatibility; the stand-in has no sampling.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for compatibility; the stand-in has one fixed window.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let mut line = format!("{}/{}: {:.1} ns/iter", self.name, id, b.ns_per_iter);
        match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                let rate = n as f64 * 1e9 / b.ns_per_iter;
                line.push_str(&format!(" ({rate:.0} elem/s)"));
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                let rate = n as f64 * 1e9 / b.ns_per_iter;
                line.push_str(&format!(" ({:.1} MiB/s)", rate / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        eprintln!("{line}");
    }

    /// Parameterized variant of [`BenchmarkGroup::bench_function`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op; upstream flushes reports here).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter("bench"), f);
        group.finish();
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
