//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serializes through serde (the trace codecs
//! are hand-written); the types merely carry `Serialize`/`Deserialize`
//! derives for forward compatibility. This stand-in supplies the trait
//! names and re-exports no-op derive macros so those annotations
//! compile offline.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
