//! Offline stand-in for the `rand` crate.
//!
//! The workspace draws every variate through `twofd_sim::SimRng`, which
//! needs only `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen` for
//! `u64`/`f64` and `Rng::gen_range` over integer ranges. This crate
//! provides exactly that, with `SmallRng` implemented as xoshiro256++ —
//! the same algorithm upstream `rand 0.8` uses for `SmallRng` on 64-bit
//! targets — seeded through SplitMix64 as recommended by its authors.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Types constructible from an explicit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a uniform 64-bit source.
pub trait Rng {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (standard distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream layout).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types supporting uniform range sampling.
pub trait UniformInt: Sized {
    /// Draws uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Multiply-shift with rejection (Lemire) for unbiased draws.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return range.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// algorithm upstream `rand 0.8` ships as `SmallRng` on 64-bit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
