//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the API slice the workspace codecs use: little-
//! endian put/get, slice advancing, `BytesMut::freeze`. Panic behaviour
//! on underflow matches the real crate (the decoders always check
//! `remaining()` first).

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 15);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_moves_the_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur, &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn advance_past_end_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.advance(3);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&*b, b"hello");
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), b"hello".to_vec());
    }
}
