//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module slice this workspace uses: MPMC
//! bounded/unbounded channels with cloneable `Sender`/`Receiver`,
//! timeouts, and non-blocking operations, implemented over
//! `Mutex` + `Condvar`. Two deliberate extensions beyond the upstream
//! API: [`channel::Sender::force_send`], a drop-oldest enqueue used by
//! the sharded monitor runtime for lossy backpressure (upstream offers
//! the same semantics on `ArrayQueue::force_push`), and
//! [`channel::Sender::force_send_many`], its batch form — one lock
//! acquisition and at most one receiver wakeup for a whole slice, which
//! is what makes batched ingest amortize channel costs.

#![forbid(unsafe_code)]

/// Synchronization primitives behind the model-checking facade.
///
/// Ordinary builds re-export `std::sync`; building with
/// `RUSTFLAGS="--cfg twofd_check"` swaps in the instrumented
/// `twofd-check` shims so the channel's park/wake protocol runs under
/// exhaustive schedule exploration. The shims delegate to `std` outside
/// a model run, so even cfg'd builds behave identically in normal
/// tests.
pub mod sync {
    #[cfg(not(twofd_check))]
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    #[cfg(twofd_check)]
    pub use twofd_check::sync::{Condvar, Mutex, MutexGuard};
}

pub mod channel {
    //! MPMC channels (stand-in for `crossbeam-channel`).

    use crate::sync::{Condvar, Mutex, MutexGuard};
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers parked on `not_empty`. Senders skip the condvar
        /// notification (a syscall on the hot enqueue path) when no one
        /// is waiting.
        recv_waiting: usize,
        /// Senders parked on `not_full`; same idea for the dequeue path.
        send_waiting: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error on [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error on [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Error on [`Receiver::recv`]: channel empty and every sender gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Channel empty and every sender gone.
        Disconnected,
    }

    /// Error on [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Channel empty and every sender gone.
        Disconnected,
    }

    /// The sending half; clone freely across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone freely across threads.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel buffering at most `capacity` messages.
    ///
    /// # Panics
    /// If `capacity` is zero (rendezvous channels are not supported by
    /// this stand-in; nothing in the workspace uses them).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "zero-capacity channels are not supported");
        with_capacity(Some(capacity))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        // Pre-size bounded queues (capped so a huge bound doesn't
        // reserve memory it may never use) to keep the enqueue hot path
        // free of growth reallocations.
        let prealloc = capacity.unwrap_or(0).min(1 << 16);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(prealloc),
                senders: 1,
                receivers: 1,
                recv_waiting: 0,
                send_waiting: 0,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state.send_waiting += 1;
                        state = self
                            .inner
                            .not_full
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner());
                        state.send_waiting -= 1;
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            let wake = state.recv_waiting > 0;
            drop(state);
            if wake {
                self.inner.not_empty.notify_one();
            }
            Ok(())
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            let wake = state.recv_waiting > 0;
            drop(state);
            if wake {
                self.inner.not_empty.notify_one();
            }
            Ok(())
        }

        /// Sends without blocking, evicting the *oldest* queued message
        /// when the channel is full. Returns the displaced message, if
        /// any. This is the drop-oldest backpressure primitive of the
        /// sharded monitor runtime.
        pub fn force_send(&self, value: T) -> Result<Option<T>, SendError<T>> {
            let mut state = self.inner.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let displaced = match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => state.queue.pop_front(),
                _ => None,
            };
            state.queue.push_back(value);
            let wake = state.recv_waiting > 0;
            drop(state);
            if wake {
                self.inner.not_empty.notify_one();
            }
            Ok(displaced)
        }

        /// Enqueues every element of `batch` under a single lock
        /// acquisition, evicting the *oldest* messages (queued first,
        /// then the front of `batch` itself if the batch alone exceeds
        /// capacity) as needed. Returns the number of messages evicted.
        /// At most one parked receiver is woken for the whole batch.
        pub fn force_send_many(&self, batch: &[T]) -> Result<usize, SendError<()>>
        where
            T: Clone,
        {
            if batch.is_empty() {
                return Ok(0);
            }
            let mut state = self.inner.lock();
            if state.receivers == 0 {
                return Err(SendError(()));
            }
            let evicted = match self.inner.capacity {
                Some(cap) => {
                    let need = (state.queue.len() + batch.len()).saturating_sub(cap);
                    let from_queue = need.min(state.queue.len());
                    state.queue.drain(..from_queue);
                    // A batch longer than the capacity sheds its own
                    // oldest elements before they are ever queued.
                    let skip = need - from_queue;
                    state.queue.extend(batch[skip..].iter().cloned());
                    need
                }
                None => {
                    state.queue.extend(batch.iter().cloned());
                    0
                }
            };
            let wake = state.recv_waiting > 0;
            drop(state);
            if wake {
                self.inner.not_empty.notify_one();
            }
            Ok(evicted)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True when a bounded channel is at capacity.
        pub fn is_full(&self) -> bool {
            match self.inner.capacity {
                Some(cap) => self.len() >= cap,
                None => false,
            }
        }

        /// The channel's capacity (`None` when unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.capacity
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    let wake = state.send_waiting > 0;
                    drop(state);
                    if wake {
                        self.inner.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state.recv_waiting += 1;
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
                state.recv_waiting -= 1;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.lock();
            if let Some(v) = state.queue.pop_front() {
                let wake = state.send_waiting > 0;
                drop(state);
                if wake {
                    self.inner.not_full.notify_one();
                }
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    let wake = state.send_waiting > 0;
                    drop(state);
                    if wake {
                        self.inner.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                state.recv_waiting += 1;
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                state.recv_waiting -= 1;
            }
        }

        /// Non-blocking iterator draining whatever is queued right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocking iterator; ends when every sender is gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Iterator for [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Iterator for [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_try_send_fills() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert!(tx.is_full());
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
        }

        #[test]
        fn force_send_drops_oldest() {
            let (tx, rx) = bounded(2);
            assert_eq!(tx.force_send(1), Ok(None));
            assert_eq!(tx.force_send(2), Ok(None));
            assert_eq!(tx.force_send(3), Ok(Some(1)));
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
        }

        #[test]
        fn force_send_many_evicts_oldest_across_queue_and_batch() {
            let (tx, rx) = bounded(4);
            assert_eq!(tx.force_send_many(&[1, 2, 3]), Ok(0));
            // Two evictions: the two oldest queued messages.
            assert_eq!(tx.force_send_many(&[4, 5, 6]), Ok(2));
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
            // A batch longer than capacity sheds its own front.
            assert_eq!(tx.force_send_many(&[10, 11, 12, 13, 14, 15]), Ok(2));
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![12, 13, 14, 15]);
            // Unbounded never evicts; empty batches are free.
            let (tx, rx) = unbounded();
            assert_eq!(tx.force_send_many(&[] as &[u8]), Ok(0));
            assert_eq!(tx.force_send_many(&[7, 8]), Ok(0));
            drop(rx);
            assert_eq!(tx.force_send_many(&[9]), Err(SendError(())));
        }

        #[test]
        fn force_send_many_wakes_a_parked_receiver() {
            let (tx, rx) = bounded(8);
            let handle = thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
            thread::sleep(Duration::from_millis(20));
            tx.force_send_many(&[42]).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(42));
        }

        #[test]
        fn disconnect_signalling() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let handle = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(9).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(9));
            handle.join().unwrap();
        }

        #[test]
        fn mpmc_cross_thread() {
            let (tx, rx) = bounded(4);
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..100u32 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let collector = thread::spawn(move || rx.iter().count());
            for h in producers {
                h.join().unwrap();
            }
            assert_eq!(collector.join().unwrap(), 300);
        }
    }
}
