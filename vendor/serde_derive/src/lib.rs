//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its config/record types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for a real
//! serializer, but nothing in-tree performs serialization (there is no
//! `serde_json`/`bincode` dependency — the trace codecs are hand
//! written). These derives therefore only need to *accept* the
//! annotations, including `#[serde(...)]` helper attributes, and emit
//! nothing.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
