//! Phase-scripted network scenarios.
//!
//! The paper's WAN experiment is naturally described as a sequence of
//! regimes — *Stable 1*, *Burst*, *Worm*, *Stable 2* (Table I) — each with
//! its own delay and loss behaviour. A [`NetworkScenario`] is exactly
//! that: an ordered list of [`Phase`]s, each active for a number of
//! heartbeats, with serializable model specs so the whole scenario can be
//! persisted next to the traces it generated.

use crate::delay::{DelayModel, DelaySpec};
use crate::loss::{LossModel, LossSpec};
use crate::rng::SimRng;
use crate::time::{Nanos, Span};
use serde::{Deserialize, Serialize};

/// One regime of network behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable label ("Stable 1", "Burst", …).
    pub name: String,
    /// Number of heartbeats sent during this phase.
    pub heartbeats: u64,
    /// Delay behaviour while the phase is active.
    pub delay: DelaySpec,
    /// Loss behaviour while the phase is active.
    pub loss: LossSpec,
}

/// An ordered sequence of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkScenario {
    /// The regimes, applied to heartbeats in order.
    pub phases: Vec<Phase>,
}

impl NetworkScenario {
    /// Creates a scenario from non-empty phases.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "scenario needs at least one phase");
        assert!(
            phases.iter().all(|p| p.heartbeats > 0),
            "phases must cover at least one heartbeat"
        );
        NetworkScenario { phases }
    }

    /// A single-phase scenario.
    pub fn uniform(name: &str, heartbeats: u64, delay: DelaySpec, loss: LossSpec) -> Self {
        NetworkScenario::new(vec![Phase {
            name: name.to_string(),
            heartbeats,
            delay,
            loss,
        }])
    }

    /// Total number of heartbeats across all phases.
    pub fn total_heartbeats(&self) -> u64 {
        self.phases.iter().map(|p| p.heartbeats).sum()
    }

    /// Index of the phase covering heartbeat `seq` (0-based), if any.
    pub fn phase_of(&self, seq: u64) -> Option<usize> {
        let mut start = 0;
        for (i, p) in self.phases.iter().enumerate() {
            if seq < start + p.heartbeats {
                return Some(i);
            }
            start += p.heartbeats;
        }
        None
    }

    /// `[start, end)` heartbeat range of phase `i`.
    pub fn phase_range(&self, i: usize) -> (u64, u64) {
        let start: u64 = self.phases[..i].iter().map(|p| p.heartbeats).sum();
        (start, start + self.phases[i].heartbeats)
    }

    /// Instantiates the per-phase models into a stateful network.
    pub fn instantiate(&self) -> ScenarioNetwork {
        ScenarioNetwork {
            scenario: self.clone(),
            models: self
                .phases
                .iter()
                .map(|p| (p.delay.build(), p.loss.build()))
                .collect(),
            next_seq: 0,
        }
    }
}

/// A [`NetworkScenario`] with live model state, consumed heartbeat by
/// heartbeat in sequence order.
pub struct ScenarioNetwork {
    scenario: NetworkScenario,
    models: Vec<(Box<dyn DelayModel + Send>, Box<dyn LossModel + Send>)>,
    next_seq: u64,
}

/// Outcome of pushing one heartbeat through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// Delivered after the contained delay.
    Delivered {
        /// One-way delay experienced by the message.
        delay: Span,
    },
    /// Dropped by the network.
    Lost,
}

impl ScenarioNetwork {
    /// Transmits the next heartbeat (sent at `send_time`); heartbeats must
    /// be offered in increasing sequence order, one call per heartbeat.
    pub fn transmit(&mut self, rng: &mut SimRng, send_time: Nanos) -> Transmission {
        let phase = self
            .scenario
            .phase_of(self.next_seq)
            .unwrap_or(self.scenario.phases.len() - 1);
        self.next_seq += 1;
        let (delay_model, loss_model) = &mut self.models[phase];
        if loss_model.is_lost(rng, send_time) {
            Transmission::Lost
        } else {
            Transmission::Delivered {
                delay: delay_model.delay(rng, send_time),
            }
        }
    }

    /// Heartbeats transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.next_seq
    }

    /// The scenario this network was built from.
    pub fn scenario(&self) -> &NetworkScenario {
        &self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DistSpec;

    fn two_phase() -> NetworkScenario {
        NetworkScenario::new(vec![
            Phase {
                name: "clean".into(),
                heartbeats: 100,
                delay: DelaySpec::Constant { nanos: 1_000_000 },
                loss: LossSpec::None,
            },
            Phase {
                name: "dead".into(),
                heartbeats: 50,
                delay: DelaySpec::Constant { nanos: 1_000_000 },
                loss: LossSpec::Bernoulli { p: 1.0 },
            },
        ])
    }

    #[test]
    fn totals_and_ranges() {
        let s = two_phase();
        assert_eq!(s.total_heartbeats(), 150);
        assert_eq!(s.phase_range(0), (0, 100));
        assert_eq!(s.phase_range(1), (100, 150));
    }

    #[test]
    fn phase_lookup() {
        let s = two_phase();
        assert_eq!(s.phase_of(0), Some(0));
        assert_eq!(s.phase_of(99), Some(0));
        assert_eq!(s.phase_of(100), Some(1));
        assert_eq!(s.phase_of(149), Some(1));
        assert_eq!(s.phase_of(150), None);
    }

    #[test]
    fn phases_apply_in_order() {
        let s = two_phase();
        let mut net = s.instantiate();
        let mut rng = SimRng::seed_from_u64(0);
        for i in 0..100 {
            assert_eq!(
                net.transmit(&mut rng, Nanos::from_millis(i)),
                Transmission::Delivered {
                    delay: Span::from_millis(1)
                }
            );
        }
        for i in 100..150 {
            assert_eq!(
                net.transmit(&mut rng, Nanos::from_millis(i)),
                Transmission::Lost
            );
        }
        assert_eq!(net.transmitted(), 150);
    }

    #[test]
    fn overrun_uses_last_phase() {
        let s = two_phase();
        let mut net = s.instantiate();
        let mut rng = SimRng::seed_from_u64(0);
        for i in 0..150 {
            net.transmit(&mut rng, Nanos::from_millis(i));
        }
        // Past the scripted range: keeps using the "dead" phase.
        assert_eq!(
            net.transmit(&mut rng, Nanos::from_millis(151)),
            Transmission::Lost
        );
    }

    #[test]
    fn rejects_empty_scenarios() {
        assert!(std::panic::catch_unwind(|| NetworkScenario::new(vec![])).is_err());
    }

    #[test]
    fn uniform_constructor() {
        let s = NetworkScenario::uniform(
            "lan",
            10,
            DelaySpec::Iid {
                dist: DistSpec::Constant { value: 0.0001 },
                floor_nanos: 0,
            },
            LossSpec::None,
        );
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.total_heartbeats(), 10);
    }
}
