//! Deterministic random variates for the simulation substrate.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the continuous distributions needed by the network models (normal,
//! log-normal, exponential, Pareto) are implemented here on top of
//! `rand`'s uniform source:
//!
//! * normal — Box–Muller with a cached spare variate,
//! * log-normal — `exp` of a normal variate,
//! * exponential — inversion,
//! * Pareto — inversion.
//!
//! Everything is seeded explicitly; no generator in this workspace ever
//! draws entropy from the OS, which keeps every experiment and test
//! reproducible bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The deterministic RNG used throughout the simulator.
///
/// A thin wrapper around [`SmallRng`] so that call sites never accidentally
/// construct an OS-seeded generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second variate from the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from an explicit 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator. Useful to give each
    /// simulated component its own stream so that adding draws to one
    /// component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen::<u64>())
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `(0, 1]` — safe as a `ln` argument.
    pub fn uniform_open(&mut self) -> f64 {
        1.0 - self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal variate via Box–Muller (polar-free form).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0,1] so ln(u1) is finite; u2 in [0,1).
        let u1 = self.uniform_open();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal variate parametrised by the *underlying* normal's
    /// `mu` and `sigma` (i.e. `exp(N(mu, sigma^2))`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential variate with the given mean (`1/lambda`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * self.uniform_open().ln()
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / self.uniform_open().powf(1.0 / alpha)
    }
}

/// Converts a log-normal's desired *linear-space* mean and standard
/// deviation into the `(mu, sigma)` parameters of the underlying normal.
///
/// Network delay models are most naturally specified as "mean delay
/// 120 ms, std dev 40 ms"; this helper performs the standard moment
/// matching so [`SimRng::log_normal`] produces exactly those moments.
pub fn log_normal_params(mean: f64, std_dev: f64) -> (f64, f64) {
    assert!(mean > 0.0, "log-normal mean must be positive");
    assert!(std_dev >= 0.0, "log-normal std dev must be non-negative");
    if std_dev == 0.0 {
        return (mean.ln(), 0.0);
    }
    let cv2 = (std_dev / mean).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu, sigma2.sqrt())
}

/// Serializable description of a scalar distribution; the simulation
/// scenarios use this to script network phases.
///
/// Variant fields are the distributions' usual parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DistSpec {
    /// A degenerate point mass.
    Constant { value: f64 },
    /// Uniform over `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Normal with given mean/std-dev, truncated below at `min`.
    Normal { mean: f64, std_dev: f64, min: f64 },
    /// Log-normal specified by linear-space mean/std-dev.
    LogNormal { mean: f64, std_dev: f64 },
    /// Exponential with the given mean, shifted by `offset`.
    Exponential { mean: f64, offset: f64 },
    /// Pareto with scale `x_min` and shape `alpha`.
    Pareto { x_min: f64, alpha: f64 },
}

impl DistSpec {
    /// Draws one variate from the described distribution.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            DistSpec::Constant { value } => value,
            DistSpec::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            DistSpec::Normal { mean, std_dev, min } => rng.normal(mean, std_dev).max(min),
            DistSpec::LogNormal { mean, std_dev } => {
                let (mu, sigma) = log_normal_params(mean, std_dev);
                rng.log_normal(mu, sigma)
            }
            DistSpec::Exponential { mean, offset } => offset + rng.exponential(mean),
            DistSpec::Pareto { x_min, alpha } => rng.pareto(x_min, alpha),
        }
    }

    /// The distribution's theoretical mean (used for sanity checks and
    /// for seeding online estimators).
    pub fn mean(&self) -> f64 {
        match *self {
            DistSpec::Constant { value } => value,
            DistSpec::Uniform { lo, hi } => (lo + hi) / 2.0,
            // Truncation shifts the mean slightly; for the tiny tail
            // masses used in practice the untruncated mean is accurate.
            DistSpec::Normal { mean, .. } => mean,
            DistSpec::LogNormal { mean, .. } => mean,
            DistSpec::Exponential { mean, offset } => mean + offset,
            DistSpec::Pareto { x_min, alpha } => {
                if alpha > 1.0 {
                    alpha * x_min / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child1 = parent1.fork();
        let mut child2 = parent2.fork();
        // Consuming from parent1 must not change child1's stream.
        for _ in 0..10 {
            parent1.uniform();
        }
        for _ in 0..50 {
            assert_eq!(child1.uniform().to_bits(), child2.uniform().to_bits());
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..200_000).map(|_| rng.standard_normal()).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = SimRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..200_000).map(|_| rng.exponential(2.5)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
        assert!((var - 6.25).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_moment_matching() {
        let mut rng = SimRng::seed_from_u64(5);
        let (mu, sigma) = log_normal_params(0.120, 0.040);
        let samples: Vec<f64> = (0..200_000).map(|_| rng.log_normal(mu, sigma)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 0.120).abs() < 0.002, "mean {mean}");
        assert!((var.sqrt() - 0.040).abs() < 0.002, "std {}", var.sqrt());
    }

    #[test]
    fn log_normal_zero_std_dev_is_constant() {
        let (mu, sigma) = log_normal_params(3.0, 0.0);
        assert_eq!(sigma, 0.0);
        let mut rng = SimRng::seed_from_u64(6);
        assert!((rng.log_normal(mu, sigma) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_stays_above_scale() {
        let mut rng = SimRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(rng.pareto(0.5, 1.5) >= 0.5);
        }
    }

    #[test]
    fn chance_edge_cases() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
        let hits = (0..100_000).filter(|_| rng.chance(0.1)).count();
        assert!((hits as f64 / 100_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn dist_spec_sampling_matches_means() {
        let mut rng = SimRng::seed_from_u64(10);
        let specs = [
            DistSpec::Constant { value: 1.5 },
            DistSpec::Uniform { lo: 0.0, hi: 2.0 },
            DistSpec::Normal {
                mean: 5.0,
                std_dev: 1.0,
                min: 0.0,
            },
            DistSpec::LogNormal {
                mean: 0.1,
                std_dev: 0.02,
            },
            DistSpec::Exponential {
                mean: 1.0,
                offset: 0.5,
            },
            DistSpec::Pareto {
                x_min: 1.0,
                alpha: 3.0,
            },
        ];
        for spec in specs {
            let n = 100_000;
            let mean: f64 = (0..n).map(|_| spec.sample(&mut rng)).sum::<f64>() / n as f64;
            let expected = spec.mean();
            assert!(
                (mean - expected).abs() < 0.05 * expected.max(0.2),
                "{spec:?}: empirical {mean} vs theoretical {expected}"
            );
        }
    }

    #[test]
    fn uniform_open_never_zero() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..100_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u <= 1.0);
        }
    }
}
