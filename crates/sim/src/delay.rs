//! One-way message delay models.
//!
//! A [`DelayModel`] answers one question for each heartbeat: *given it is
//! sent now, how long does the network take to deliver it?* Models are
//! stateful (auto-correlated delays, congestion spikes), so they take
//! `&mut self`.
//!
//! Serializable [`DelaySpec`] descriptions build the concrete models; the
//! scenario scripting in [`crate::scenario`] stores specs, not trait
//! objects, so scenarios can be persisted alongside generated traces.

use crate::rng::{log_normal_params, DistSpec, SimRng};
use crate::time::{Nanos, Span};
use serde::{Deserialize, Serialize};

/// A stateful one-way delay process.
pub trait DelayModel {
    /// Delay experienced by a message sent at `send_time`.
    fn delay(&mut self, rng: &mut SimRng, send_time: Nanos) -> Span;
}

/// Fixed delay for every message.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDelay(pub Span);

impl DelayModel for ConstantDelay {
    fn delay(&mut self, _rng: &mut SimRng, _send_time: Nanos) -> Span {
        self.0
    }
}

/// Independent draws from a scalar distribution (seconds), clamped below
/// at `floor` so a heavy-tailed spec can never produce a negative or
/// implausibly small delay.
#[derive(Debug, Clone, Copy)]
pub struct IidDelay {
    /// Scalar delay distribution, in seconds.
    pub dist: DistSpec,
    /// Lower clamp applied to every draw.
    pub floor: Span,
}

impl IidDelay {
    /// Creates the model.
    pub fn new(dist: DistSpec, floor: Span) -> Self {
        IidDelay { dist, floor }
    }
}

impl DelayModel for IidDelay {
    fn delay(&mut self, rng: &mut SimRng, _send_time: Nanos) -> Span {
        let secs = self.dist.sample(rng);
        Span::from_secs_f64(secs).max(self.floor)
    }
}

/// First-order auto-regressive delay in log space.
///
/// Wide-area delays are strongly auto-correlated: a congested path stays
/// congested for many consecutive heartbeats. This model keeps a latent
/// AR(1) state `x_{k+1} = rho * x_k + sqrt(1-rho^2) * eps` (`eps` standard
/// normal) and outputs `exp(mu + sigma * x_k)`, i.e. marginally log-normal
/// with the requested linear-space mean and standard deviation, but with
/// lag-1 autocorrelation `rho` in log space.
#[derive(Debug, Clone, Copy)]
pub struct Ar1LogNormalDelay {
    mu: f64,
    sigma: f64,
    rho: f64,
    state: f64,
    floor: Span,
}

impl Ar1LogNormalDelay {
    /// `mean`/`std_dev` are the marginal delay moments in seconds; `rho`
    /// in `(-1,1)` is the log-space lag-1 autocorrelation. Positive
    /// values model sticky congestion; negative values model the
    /// oscillation of queue build-up and drain (a delayed packet is
    /// typically followed by a back-to-back fast delivery).
    pub fn new(mean: f64, std_dev: f64, rho: f64, floor: Span) -> Self {
        assert!((-1.0..1.0).contains(&rho), "rho must be in (-1,1)");
        let (mu, sigma) = log_normal_params(mean, std_dev);
        Ar1LogNormalDelay {
            mu,
            sigma,
            rho,
            state: 0.0,
            floor,
        }
    }
}

impl DelayModel for Ar1LogNormalDelay {
    fn delay(&mut self, rng: &mut SimRng, _send_time: Nanos) -> Span {
        let eps = rng.standard_normal();
        self.state = self.rho * self.state + (1.0 - self.rho * self.rho).sqrt() * eps;
        let secs = (self.mu + self.sigma * self.state).exp();
        Span::from_secs_f64(secs).max(self.floor)
    }
}

/// A base model plus rare long stalls.
///
/// Reproduces the LAN trace's "largest interval between two heartbeats was
/// about 1.5 s" behaviour: with probability `spike_prob` per message the
/// delay is drawn from `spike_dist` instead of the base model.
#[derive(Debug)]
pub struct SpikeDelay<M> {
    /// Delay process for non-spike messages.
    pub base: M,
    /// Per-message probability of drawing from `spike_dist` instead.
    pub spike_prob: f64,
    /// Spike delay distribution, in seconds.
    pub spike_dist: DistSpec,
}

impl<M: DelayModel> DelayModel for SpikeDelay<M> {
    fn delay(&mut self, rng: &mut SimRng, send_time: Nanos) -> Span {
        if rng.chance(self.spike_prob) {
            Span::from_secs_f64(self.spike_dist.sample(rng).max(0.0))
        } else {
            self.base.delay(rng, send_time)
        }
    }
}

/// Spikes arriving in *episodes*: a two-state Markov process switches
/// between a calm state (no spikes) and a congestion episode in which
/// each message is a spike with probability `spike_prob`. This models
/// the clustered congestion of real WAN paths — long quiet stretches
/// punctuated by multi-second bursts of queueing — which is the regime
/// where short-memory estimators (window-1 Chen, Jacobson margins) are
/// repeatedly surprised at episode onsets while long windows remember.
#[derive(Debug)]
pub struct EpisodicSpikeDelay<M> {
    /// Delay process between spikes.
    pub base: M,
    /// Calm → episode transition probability per message.
    pub onset_prob: f64,
    /// Episode → calm transition probability per message.
    pub end_prob: f64,
    /// Spike probability per message while inside an episode.
    pub spike_prob: f64,
    /// Spike delay distribution (seconds).
    pub spike_dist: DistSpec,
    in_episode: bool,
}

impl<M> EpisodicSpikeDelay<M> {
    /// Creates the process, starting in the calm state.
    pub fn new(
        base: M,
        onset_prob: f64,
        end_prob: f64,
        spike_prob: f64,
        spike_dist: DistSpec,
    ) -> Self {
        for (name, p) in [
            ("onset_prob", onset_prob),
            ("end_prob", end_prob),
            ("spike_prob", spike_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
        EpisodicSpikeDelay {
            base,
            onset_prob,
            end_prob,
            spike_prob,
            spike_dist,
            in_episode: false,
        }
    }
}

impl<M: DelayModel> DelayModel for EpisodicSpikeDelay<M> {
    fn delay(&mut self, rng: &mut SimRng, send_time: Nanos) -> Span {
        if self.in_episode {
            if rng.chance(self.end_prob) {
                self.in_episode = false;
            }
        } else if rng.chance(self.onset_prob) {
            self.in_episode = true;
        }
        let base = self.base.delay(rng, send_time);
        if self.in_episode && rng.chance(self.spike_prob) {
            base + Span::from_secs_f64(self.spike_dist.sample(rng).max(0.0))
        } else {
            base
        }
    }
}

impl DelayModel for Box<dyn DelayModel + Send> {
    fn delay(&mut self, rng: &mut SimRng, send_time: Nanos) -> Span {
        (**self).delay(rng, send_time)
    }
}

/// Serializable description of a delay model.
///
/// Variant fields mirror the corresponding model constructors; all
/// times are seconds unless the field name says `nanos`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DelaySpec {
    /// Every message takes exactly `nanos`.
    Constant { nanos: u64 },
    /// Independent draws from `dist` (seconds), clamped at `floor_nanos`.
    Iid { dist: DistSpec, floor_nanos: u64 },
    /// Auto-correlated log-normal (see [`Ar1LogNormalDelay`]).
    Ar1LogNormal {
        mean_secs: f64,
        std_dev_secs: f64,
        rho: f64,
        floor_nanos: u64,
    },
    /// `base` with probability `1 - spike_prob`, otherwise a stall drawn
    /// from `spike_dist` (seconds).
    Spiky {
        base: DistSpec,
        floor_nanos: u64,
        spike_prob: f64,
        spike_dist: DistSpec,
    },
    /// Auto-correlated log-normal base delays overlaid with independent
    /// congestion spikes — the bimodal, rapidly changing behaviour of a
    /// congested WAN path (the regime the 2W-FD targets).
    Ar1Spiky {
        mean_secs: f64,
        std_dev_secs: f64,
        rho: f64,
        floor_nanos: u64,
        spike_prob: f64,
        spike_dist: DistSpec,
    },
    /// Auto-correlated log-normal base delays with spikes arriving in
    /// Markov-modulated episodes (see [`EpisodicSpikeDelay`]).
    Episodic {
        mean_secs: f64,
        std_dev_secs: f64,
        rho: f64,
        floor_nanos: u64,
        onset_prob: f64,
        end_prob: f64,
        spike_prob: f64,
        spike_dist: DistSpec,
    },
}

impl DelaySpec {
    /// Instantiates the described model.
    pub fn build(&self) -> Box<dyn DelayModel + Send> {
        match *self {
            DelaySpec::Constant { nanos } => Box::new(ConstantDelay(Span(nanos))),
            DelaySpec::Iid { dist, floor_nanos } => {
                Box::new(IidDelay::new(dist, Span(floor_nanos)))
            }
            DelaySpec::Ar1LogNormal {
                mean_secs,
                std_dev_secs,
                rho,
                floor_nanos,
            } => Box::new(Ar1LogNormalDelay::new(
                mean_secs,
                std_dev_secs,
                rho,
                Span(floor_nanos),
            )),
            DelaySpec::Spiky {
                base,
                floor_nanos,
                spike_prob,
                spike_dist,
            } => Box::new(SpikeDelay {
                base: IidDelay::new(base, Span(floor_nanos)),
                spike_prob,
                spike_dist,
            }),
            DelaySpec::Ar1Spiky {
                mean_secs,
                std_dev_secs,
                rho,
                floor_nanos,
                spike_prob,
                spike_dist,
            } => Box::new(SpikeDelay {
                base: Ar1LogNormalDelay::new(mean_secs, std_dev_secs, rho, Span(floor_nanos)),
                spike_prob,
                spike_dist,
            }),
            DelaySpec::Episodic {
                mean_secs,
                std_dev_secs,
                rho,
                floor_nanos,
                onset_prob,
                end_prob,
                spike_prob,
                spike_dist,
            } => Box::new(EpisodicSpikeDelay::new(
                Ar1LogNormalDelay::new(mean_secs, std_dev_secs, rho, Span(floor_nanos)),
                onset_prob,
                end_prob,
                spike_prob,
                spike_dist,
            )),
        }
    }

    /// Approximate mean delay in seconds (ignores truncation and spikes'
    /// contribution beyond their own mean).
    pub fn mean_secs(&self) -> f64 {
        match *self {
            DelaySpec::Constant { nanos } => Span(nanos).as_secs_f64(),
            DelaySpec::Iid { dist, .. } => dist.mean(),
            DelaySpec::Ar1LogNormal { mean_secs, .. } => mean_secs,
            DelaySpec::Spiky {
                base,
                spike_prob,
                spike_dist,
                ..
            } => (1.0 - spike_prob) * base.mean() + spike_prob * spike_dist.mean(),
            DelaySpec::Ar1Spiky {
                mean_secs,
                spike_prob,
                spike_dist,
                ..
            } => (1.0 - spike_prob) * mean_secs + spike_prob * spike_dist.mean(),
            DelaySpec::Episodic {
                mean_secs,
                onset_prob,
                end_prob,
                spike_prob,
                spike_dist,
                ..
            } => {
                let frac_in_episode = if onset_prob + end_prob > 0.0 {
                    onset_prob / (onset_prob + end_prob)
                } else {
                    0.0
                };
                mean_secs + frac_in_episode * spike_prob * spike_dist.mean()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_delay_is_constant() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut m = ConstantDelay(Span::from_millis(5));
        for i in 0..10 {
            assert_eq!(m.delay(&mut rng, Nanos::from_secs(i)), Span::from_millis(5));
        }
    }

    #[test]
    fn iid_delay_respects_floor() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut m = IidDelay::new(
            DistSpec::Normal {
                mean: 0.0,
                std_dev: 0.001,
                min: -1.0,
            },
            Span::from_micros(50),
        );
        for _ in 0..1000 {
            assert!(m.delay(&mut rng, Nanos::ZERO) >= Span::from_micros(50));
        }
    }

    #[test]
    fn ar1_marginal_moments_match() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut m = Ar1LogNormalDelay::new(0.120, 0.040, 0.9, Span::ZERO);
        // Warm up past the initial deterministic state.
        for _ in 0..1000 {
            m.delay(&mut rng, Nanos::ZERO);
        }
        let n = 200_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| m.delay(&mut rng, Nanos::ZERO).as_secs_f64())
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.120).abs() < 0.004, "mean {mean}");
    }

    #[test]
    fn ar1_is_autocorrelated() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut m = Ar1LogNormalDelay::new(0.1, 0.05, 0.95, Span::ZERO);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| m.delay(&mut rng, Nanos::ZERO).as_secs_f64().ln())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!(rho > 0.8, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn ar1_rejects_invalid_rho() {
        let r = std::panic::catch_unwind(|| {
            Ar1LogNormalDelay::new(0.1, 0.01, 1.0, Span::ZERO);
        });
        assert!(r.is_err());
    }

    #[test]
    fn spikes_occur_at_expected_rate() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut m = SpikeDelay {
            base: ConstantDelay(Span::from_micros(100)),
            spike_prob: 0.01,
            spike_dist: DistSpec::Constant { value: 1.5 },
        };
        let n = 100_000;
        let spikes = (0..n)
            .filter(|_| m.delay(&mut rng, Nanos::ZERO) > Span::from_millis(1))
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.002, "spike rate {rate}");
    }

    #[test]
    fn episodic_spikes_cluster() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut m = EpisodicSpikeDelay::new(
            ConstantDelay(Span::from_millis(100)),
            1.0 / 200.0, // episodes every ~200 messages
            1.0 / 25.0,  // lasting ~25 messages
            0.8,
            DistSpec::Constant { value: 0.5 },
        );
        let spikes: Vec<bool> = (0..100_000)
            .map(|_| m.delay(&mut rng, Nanos::ZERO) > Span::from_millis(200))
            .collect();
        let total = spikes.iter().filter(|&&s| s).count();
        // Stationary fraction ≈ (1/200)/(1/200 + 1/25) ≈ 0.111 of time in
        // episode, times 0.8 spike rate ≈ 8.9% of messages.
        let rate = total as f64 / spikes.len() as f64;
        assert!((rate - 0.089).abs() < 0.03, "spike rate {rate}");
        // Clustering: the probability that the message after a spike is
        // also a spike must far exceed the marginal rate.
        let mut after_spike = 0usize;
        let mut after_spike_spike = 0usize;
        for w in spikes.windows(2) {
            if w[0] {
                after_spike += 1;
                if w[1] {
                    after_spike_spike += 1;
                }
            }
        }
        let conditional = after_spike_spike as f64 / after_spike as f64;
        assert!(
            conditional > 3.0 * rate,
            "conditional {conditional} vs marginal {rate}"
        );
    }

    #[test]
    fn episodic_spec_mean_accounts_for_episodes() {
        let spec = DelaySpec::Episodic {
            mean_secs: 0.1,
            std_dev_secs: 0.0,
            rho: 0.0,
            floor_nanos: 0,
            onset_prob: 0.01,
            end_prob: 0.09,
            spike_prob: 0.5,
            spike_dist: DistSpec::Constant { value: 0.4 },
        };
        // 10% of time in episode × 0.5 × 0.4 s = 20 ms extra.
        assert!((spec.mean_secs() - 0.12).abs() < 1e-9);
        let mut rng = SimRng::seed_from_u64(10);
        let mut model = spec.build();
        let _ = model.delay(&mut rng, Nanos::ZERO);
    }

    #[test]
    fn spec_build_round_trip_behaviour() {
        let mut rng = SimRng::seed_from_u64(5);
        let spec = DelaySpec::Constant {
            nanos: 2_000_000, // 2 ms
        };
        let mut m = spec.build();
        assert_eq!(m.delay(&mut rng, Nanos::ZERO), Span::from_millis(2));
        assert!((spec.mean_secs() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn spiky_spec_mean_blends() {
        let spec = DelaySpec::Spiky {
            base: DistSpec::Constant { value: 0.1 },
            floor_nanos: 0,
            spike_prob: 0.5,
            spike_dist: DistSpec::Constant { value: 0.3 },
        };
        assert!((spec.mean_secs() - 0.2).abs() < 1e-12);
    }
}
