//! Message-loss models.
//!
//! A [`LossModel`] decides, per heartbeat, whether the network drops it.
//! Besides the memoryless Bernoulli process the substrate provides a
//! Gilbert–Elliott two-state Markov model, which is what actually creates
//! the *bursts of lost messages* the 2W-FD paper targets: in the `Bad`
//! state, long runs of consecutive heartbeats disappear, defeating
//! estimators that only track long-run averages.

use crate::rng::SimRng;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// A stateful loss process.
pub trait LossModel {
    /// Whether a message sent at `send_time` is dropped.
    fn is_lost(&mut self, rng: &mut SimRng, send_time: Nanos) -> bool;
}

/// Never loses a message (the paper's LAN trace lost none).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn is_lost(&mut self, _rng: &mut SimRng, _send_time: Nanos) -> bool {
        false
    }
}

/// Independent loss with fixed probability.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliLoss(pub f64);

impl LossModel for BernoulliLoss {
    fn is_lost(&mut self, rng: &mut SimRng, _send_time: Nanos) -> bool {
        rng.chance(self.0)
    }
}

/// Gilbert–Elliott two-state Markov loss.
///
/// The channel alternates between a `Good` state (loss probability
/// `loss_good`, typically near zero) and a `Bad` state (loss probability
/// `loss_bad`, typically near one). Transitions are evaluated once per
/// message: `p_gb` is the Good→Bad probability, `p_bg` the Bad→Good
/// probability. Expected burst length is `1 / p_bg` messages and the
/// stationary probability of being in `Bad` is `p_gb / (p_gb + p_bg)`.
#[derive(Debug, Clone, Copy)]
pub struct GilbertElliottLoss {
    /// Good → Bad transition probability per message.
    pub p_gb: f64,
    /// Bad → Good transition probability per message.
    pub p_bg: f64,
    /// Loss probability while in the Good state.
    pub loss_good: f64,
    /// Loss probability while in the Bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliottLoss {
    /// Creates the model (all arguments are probabilities), starting in
    /// the Good state.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
        GilbertElliottLoss {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// Stationary probability of a message being lost.
    pub fn stationary_loss(&self) -> f64 {
        let p_bad = if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        };
        p_bad * self.loss_bad + (1.0 - p_bad) * self.loss_good
    }
}

impl LossModel for GilbertElliottLoss {
    fn is_lost(&mut self, rng: &mut SimRng, _send_time: Nanos) -> bool {
        // State transition first, then the per-state coin flip.
        if self.in_bad {
            if rng.chance(self.p_bg) {
                self.in_bad = false;
            }
        } else if rng.chance(self.p_gb) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.chance(p)
    }
}

/// Forces loss inside explicit time windows, delegating elsewhere.
///
/// Used to script the paper's *Burst* segment deterministically: every
/// heartbeat sent inside a window is dropped regardless of the base model.
#[derive(Debug)]
pub struct ScriptedLoss<M> {
    /// Loss process applied outside the forced windows.
    pub base: M,
    /// Half-open `[start, end)` windows of forced loss, sorted by start.
    pub windows: Vec<(Nanos, Nanos)>,
}

impl<M: LossModel> LossModel for ScriptedLoss<M> {
    fn is_lost(&mut self, rng: &mut SimRng, send_time: Nanos) -> bool {
        let forced = self
            .windows
            .iter()
            .any(|&(start, end)| send_time >= start && send_time < end);
        // Always advance the base model so scripting does not shift its
        // random stream relative to an unscripted run.
        let base_lost = self.base.is_lost(rng, send_time);
        forced || base_lost
    }
}

/// Serializable description of a loss model.
///
/// Variant fields mirror the corresponding model constructors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum LossSpec {
    /// No losses.
    None,
    /// Independent loss with probability `p`.
    Bernoulli { p: f64 },
    /// Gilbert–Elliott bursty loss.
    GilbertElliott {
        p_gb: f64,
        p_bg: f64,
        loss_good: f64,
        loss_bad: f64,
    },
    /// A base spec plus forced-loss windows (`[start, end)` in nanos).
    Scripted {
        base: Box<LossSpec>,
        windows: Vec<(u64, u64)>,
    },
}

impl LossSpec {
    /// Instantiates the described model.
    pub fn build(&self) -> Box<dyn LossModel + Send> {
        match self {
            LossSpec::None => Box::new(NoLoss),
            LossSpec::Bernoulli { p } => Box::new(BernoulliLoss(*p)),
            LossSpec::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => Box::new(GilbertElliottLoss::new(*p_gb, *p_bg, *loss_good, *loss_bad)),
            LossSpec::Scripted { base, windows } => Box::new(ScriptedLoss {
                base: base.build(),
                windows: windows.iter().map(|&(s, e)| (Nanos(s), Nanos(e))).collect(),
            }),
        }
    }

    /// Approximate long-run loss probability.
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossSpec::None => 0.0,
            LossSpec::Bernoulli { p } => *p,
            LossSpec::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => GilbertElliottLoss::new(*p_gb, *p_bg, *loss_good, *loss_bad).stationary_loss(),
            LossSpec::Scripted { base, .. } => base.mean_loss(),
        }
    }
}

impl LossModel for Box<dyn LossModel + Send> {
    fn is_lost(&mut self, rng: &mut SimRng, send_time: Nanos) -> bool {
        (**self).is_lost(rng, send_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_never_drops() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut m = NoLoss;
        assert!((0..1000).all(|i| !m.is_lost(&mut rng, Nanos::from_millis(i))));
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut m = BernoulliLoss(0.05);
        let n = 200_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng, Nanos::ZERO)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_stationary_loss_matches() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut m = GilbertElliottLoss::new(0.01, 0.2, 0.001, 0.9);
        let expected = m.stationary_loss();
        let n = 400_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng, Nanos::ZERO)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - expected).abs() < 0.01, "rate {rate} vs {expected}");
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut m = GilbertElliottLoss::new(0.002, 0.05, 0.0, 1.0);
        let outcomes: Vec<bool> = (0..200_000)
            .map(|_| m.is_lost(&mut rng, Nanos::ZERO))
            .collect();
        // Longest run of consecutive losses should be far longer than a
        // Bernoulli process with the same rate would plausibly produce.
        let mut longest = 0usize;
        let mut run = 0usize;
        for &l in &outcomes {
            if l {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest >= 20, "longest burst {longest}");
    }

    #[test]
    fn gilbert_elliott_rejects_bad_probabilities() {
        assert!(std::panic::catch_unwind(|| GilbertElliottLoss::new(1.5, 0.1, 0.0, 1.0)).is_err());
    }

    #[test]
    fn scripted_windows_force_loss() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut m = ScriptedLoss {
            base: NoLoss,
            windows: vec![(Nanos::from_secs(10), Nanos::from_secs(12))],
        };
        assert!(!m.is_lost(&mut rng, Nanos::from_secs(9)));
        assert!(m.is_lost(&mut rng, Nanos::from_secs(10)));
        assert!(m.is_lost(&mut rng, Nanos::from_secs(11)));
        assert!(!m.is_lost(&mut rng, Nanos::from_secs(12)));
    }

    #[test]
    fn spec_builds_and_reports_mean() {
        let spec = LossSpec::GilbertElliott {
            p_gb: 0.01,
            p_bg: 0.19,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let expected = 0.01 / 0.20;
        assert!((spec.mean_loss() - expected).abs() < 1e-12);
        let mut rng = SimRng::seed_from_u64(5);
        let mut model = spec.build();
        // Smoke: just exercise it.
        let _ = model.is_lost(&mut rng, Nanos::ZERO);
    }

    #[test]
    fn scripted_spec_round_trip() {
        let spec = LossSpec::Scripted {
            base: Box::new(LossSpec::None),
            windows: vec![(0, 1_000)],
        };
        let mut rng = SimRng::seed_from_u64(6);
        let mut model = spec.build();
        assert!(model.is_lost(&mut rng, Nanos(500)));
        assert!(!model.is_lost(&mut rng, Nanos(2_000)));
        assert_eq!(spec.mean_loss(), 0.0);
    }
}
