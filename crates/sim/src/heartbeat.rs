//! Heartbeat emission through a scripted network.
//!
//! [`HeartbeatRun`] ties together the paper's process model: a monitored
//! process `p` sends heartbeat `m_i` at time `i · Δi` (sequence numbers
//! start at 1, exactly as in Algorithm 1), each message traverses a
//! [`ScenarioNetwork`] that may drop or delay it, and an optional crash
//! time cuts the stream short. The output is a list of
//! [`HeartbeatOutcome`]s — precisely the information a trace file records.

use crate::rng::SimRng;
use crate::scenario::{NetworkScenario, ScenarioNetwork, Transmission};
use crate::time::{Nanos, Span};
use serde::{Deserialize, Serialize};

/// The fate of one heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatOutcome {
    /// Sequence number, starting at 1.
    pub seq: u64,
    /// Send time on `p`'s clock (`seq · Δi`).
    pub send: Nanos,
    /// Arrival time at `q`, or `None` if the network dropped it.
    pub arrival: Option<Nanos>,
}

impl HeartbeatOutcome {
    /// One-way delay, if delivered.
    pub fn delay(&self) -> Option<Span> {
        self.arrival.map(|a| a - self.send)
    }
}

/// Configuration of a heartbeat emission run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatRun {
    /// Heartbeat interval Δi.
    pub interval: Span,
    /// Network behaviour across the run.
    pub scenario: NetworkScenario,
    /// If set, `p` crashes at this instant: no heartbeat with
    /// `send >= crash_at` is emitted.
    pub crash_at: Option<Nanos>,
    /// RNG seed for the network models.
    pub seed: u64,
}

impl HeartbeatRun {
    /// Creates a run description (no crash by default).
    pub fn new(interval: Span, scenario: NetworkScenario, seed: u64) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        HeartbeatRun {
            interval,
            scenario,
            crash_at: None,
            seed,
        }
    }

    /// Sets a crash time for the monitored process.
    pub fn with_crash_at(mut self, at: Nanos) -> Self {
        self.crash_at = Some(at);
        self
    }

    /// Executes the run, producing one outcome per emitted heartbeat, in
    /// send order.
    pub fn execute(&self) -> Vec<HeartbeatOutcome> {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut net: ScenarioNetwork = self.scenario.instantiate();
        let total = self.scenario.total_heartbeats();
        let mut out = Vec::with_capacity(total as usize);
        for seq in 1..=total {
            let send = Nanos(seq * self.interval.0);
            if let Some(crash) = self.crash_at {
                if send >= crash {
                    break;
                }
            }
            let arrival = match net.transmit(&mut rng, send) {
                Transmission::Delivered { delay } => Some(send + delay),
                Transmission::Lost => None,
            };
            out.push(HeartbeatOutcome { seq, send, arrival });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelaySpec;
    use crate::loss::LossSpec;

    fn clean_scenario(n: u64) -> NetworkScenario {
        NetworkScenario::uniform(
            "clean",
            n,
            DelaySpec::Constant { nanos: 2_000_000 },
            LossSpec::None,
        )
    }

    #[test]
    fn sends_at_multiples_of_interval() {
        let run = HeartbeatRun::new(Span::from_millis(100), clean_scenario(5), 1);
        let out = run.execute();
        assert_eq!(out.len(), 5);
        for (i, hb) in out.iter().enumerate() {
            let seq = i as u64 + 1;
            assert_eq!(hb.seq, seq);
            assert_eq!(hb.send, Nanos::from_millis(100 * seq));
            assert_eq!(hb.arrival, Some(Nanos::from_millis(100 * seq + 2)));
            assert_eq!(hb.delay(), Some(Span::from_millis(2)));
        }
    }

    #[test]
    fn crash_truncates_the_stream() {
        let run = HeartbeatRun::new(Span::from_millis(100), clean_scenario(10), 1)
            .with_crash_at(Nanos::from_millis(450));
        let out = run.execute();
        // Heartbeats at 100..400 ms are sent; the one at 500 ms is not.
        assert_eq!(out.len(), 4);
        assert_eq!(out.last().unwrap().send, Nanos::from_millis(400));
    }

    #[test]
    fn crash_exactly_at_send_time_suppresses_that_heartbeat() {
        let run = HeartbeatRun::new(Span::from_millis(100), clean_scenario(10), 1)
            .with_crash_at(Nanos::from_millis(300));
        let out = run.execute();
        assert_eq!(out.last().unwrap().send, Nanos::from_millis(200));
    }

    #[test]
    fn lost_heartbeats_have_no_arrival() {
        let scenario = NetworkScenario::uniform(
            "dead",
            3,
            DelaySpec::Constant { nanos: 0 },
            LossSpec::Bernoulli { p: 1.0 },
        );
        let out = HeartbeatRun::new(Span::from_millis(20), scenario, 7).execute();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|hb| hb.arrival.is_none()));
        assert!(out.iter().all(|hb| hb.delay().is_none()));
    }

    #[test]
    fn same_seed_same_outcomes() {
        let scenario = NetworkScenario::uniform(
            "noisy",
            500,
            DelaySpec::Iid {
                dist: crate::rng::DistSpec::Exponential {
                    mean: 0.05,
                    offset: 0.01,
                },
                floor_nanos: 0,
            },
            LossSpec::Bernoulli { p: 0.05 },
        );
        let a = HeartbeatRun::new(Span::from_millis(100), scenario.clone(), 42).execute();
        let b = HeartbeatRun::new(Span::from_millis(100), scenario, 42).execute();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        HeartbeatRun::new(Span::ZERO, clean_scenario(1), 0);
    }
}
