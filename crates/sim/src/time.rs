//! Nanosecond-precision simulated time.
//!
//! All of the reproduction works on a single monotonically increasing
//! simulated clock. Two newtypes keep instants and durations apart:
//!
//! * [`Nanos`] — an *instant*: nanoseconds elapsed since the start of the
//!   simulation (or of a trace).
//! * [`Span`] — a *duration*: a non-negative number of nanoseconds.
//!
//! Both wrap a `u64`, which covers roughly 584 years of simulated time —
//! far beyond any trace in the paper (the longest is about a week).
//!
//! Arithmetic that could underflow (e.g. subtracting a later instant from
//! an earlier one) is exposed through `checked_*` / `saturating_*`
//! variants; the plain operators panic in debug builds exactly like the
//! standard integer types, which is the behaviour we want while replaying
//! traces (a negative duration is always a logic error).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since time zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(pub u64);

/// A non-negative duration, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Span(pub u64);

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl Nanos {
    /// The origin of simulated time.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Builds an instant `secs` seconds after time zero.
    pub const fn from_secs(secs: u64) -> Self {
        Nanos(secs * NANOS_PER_SEC)
    }

    /// Builds an instant `ms` milliseconds after time zero.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * NANOS_PER_MILLI)
    }

    /// Builds an instant `us` microseconds after time zero.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * NANOS_PER_MICRO)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to time zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration since `earlier`, or `None` if `earlier` is in the future.
    pub fn checked_since(self, earlier: Nanos) -> Option<Span> {
        self.0.checked_sub(earlier.0).map(Span)
    }

    /// Duration since `earlier`, clamped to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Nanos) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// Adds a span, saturating at [`Nanos::MAX`].
    pub fn saturating_add(self, span: Span) -> Nanos {
        Nanos(self.0.saturating_add(span.0))
    }

    /// Subtracts a span, saturating at time zero.
    pub fn saturating_sub(self, span: Span) -> Nanos {
        Nanos(self.0.saturating_sub(span.0))
    }
}

impl Span {
    /// The empty duration.
    pub const ZERO: Span = Span(0);
    /// The largest representable duration.
    pub const MAX: Span = Span(u64::MAX);

    /// Builds a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Span(secs * NANOS_PER_SEC)
    }

    /// Builds a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Span(ms * NANOS_PER_MILLI)
    }

    /// Builds a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Span(us * NANOS_PER_MICRO)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return Span::ZERO;
        }
        Span((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Builds a span from fractional milliseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// This span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if this is the empty duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: Span) -> Span {
        Span(self.0.saturating_sub(other.0))
    }

    /// Saturating addition of spans.
    pub fn saturating_add(self, other: Span) -> Span {
        Span(self.0.saturating_add(other.0))
    }

    /// Multiplies by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> Span {
        Span(self.0.saturating_mul(k))
    }

    /// Scales by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> Span {
        debug_assert!(k >= 0.0, "span scale factor must be non-negative");
        Span::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<Span> for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Span) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Nanos {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Span) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Sub<Nanos> for Nanos {
    type Output = Span;
    fn sub(self, rhs: Nanos) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl Add<Span> for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Span {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl SubAssign<Span> for Span {
    fn sub_assign(&mut self, rhs: Span) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    fn mul(self, rhs: u64) -> Span {
        Span(self.0 * rhs)
    }
}

impl Div<u64> for Span {
    type Output = Span;
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Div<Span> for Span {
    /// How many times `rhs` fits into `self`, as a float ratio.
    type Output = f64;
    fn div(self, rhs: Span) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Human-readable rendering picking the most natural unit.
fn format_nanos(n: u64) -> String {
    if n == 0 {
        "0s".to_string()
    } else if n.is_multiple_of(NANOS_PER_SEC) {
        format!("{}s", n / NANOS_PER_SEC)
    } else if n >= NANOS_PER_SEC {
        format!("{:.3}s", n as f64 / NANOS_PER_SEC as f64)
    } else if n >= NANOS_PER_MILLI {
        format!("{:.3}ms", n as f64 / NANOS_PER_MILLI as f64)
    } else if n >= NANOS_PER_MICRO {
        format!("{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos(2_000_000_000));
        assert_eq!(Nanos::from_millis(2), Nanos(2_000_000));
        assert_eq!(Nanos::from_micros(2), Nanos(2_000));
        assert_eq!(Span::from_secs(3), Span(3_000_000_000));
        assert_eq!(Span::from_millis(3), Span(3_000_000));
        assert_eq!(Span::from_micros(3), Span(3_000));
    }

    #[test]
    fn float_round_trip() {
        let t = Nanos::from_secs_f64(1.25);
        assert_eq!(t, Nanos(1_250_000_000));
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        let s = Span::from_millis_f64(0.5);
        assert_eq!(s, Span(500_000));
        assert!((s.as_millis_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Span::from_secs_f64(-0.001), Span::ZERO);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let a = Nanos::from_millis(100);
        let d = Span::from_millis(20);
        assert_eq!(a + d, Nanos::from_millis(120));
        assert_eq!((a + d) - a, Span::from_millis(20));
        assert_eq!(a - d, Nanos::from_millis(80));
    }

    #[test]
    fn checked_and_saturating() {
        let early = Nanos::from_millis(10);
        let late = Nanos::from_millis(30);
        assert_eq!(late.checked_since(early), Some(Span::from_millis(20)));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(early.saturating_since(late), Span::ZERO);
        assert_eq!(early.saturating_sub(Span::from_secs(1)), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(Span::from_secs(1)), Nanos::MAX);
    }

    #[test]
    fn span_scalar_ops() {
        let s = Span::from_millis(10);
        assert_eq!(s * 3, Span::from_millis(30));
        assert_eq!(s / 2, Span::from_millis(5));
        assert!((Span::from_secs(1) / Span::from_millis(250) - 4.0).abs() < 1e-12);
        assert_eq!(s.mul_f64(2.5), Span::from_millis(25));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Nanos::from_millis(1) < Nanos::from_millis(2));
        assert!(Span::from_micros(999) < Span::from_millis(1));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(Nanos::ZERO.to_string(), "0s");
        assert_eq!(Nanos::from_secs(2).to_string(), "2s");
        assert_eq!(Span::from_millis(215).to_string(), "215.000ms");
        assert_eq!(Span(1_500).to_string(), "1.500us");
        assert_eq!(Span(999).to_string(), "999ns");
        assert_eq!(Span(1_500_000_000).to_string(), "1.500s");
    }
}
