//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by timestamp with a monotone tie-breaker,
//! so two events scheduled for the same instant pop in scheduling order —
//! a property the service simulations rely on for reproducibility (a
//! `BinaryHeap` alone is not stable).

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (and, within a timestamp, the earliest-scheduled) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (initially zero).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is before the current simulation time — scheduling into
    /// the past is always a logic error.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({} < {})",
            at,
            self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|s| {
            self.now = s.at;
            (s.at, s.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_millis(30), "c");
        q.schedule(Nanos::from_millis(10), "a");
        q.schedule(Nanos::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = Nanos::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_millis(7), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_millis(10), ());
        q.pop();
        q.schedule(Nanos::from_millis(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_millis(10), 1);
        q.pop();
        q.schedule(Nanos::from_millis(10), 2);
        assert_eq!(q.pop(), Some((Nanos::from_millis(10), 2)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_secs(1), ());
        q.schedule(Nanos::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos::from_secs(1)));
    }
}
