//! # twofd-sim — deterministic simulation substrate
//!
//! The 2W-FD paper evaluates failure detectors by *replaying traces* of
//! heartbeat arrival times collected on real WAN/LAN links. Those traces
//! are not available, so this crate provides the substitute substrate: a
//! fully deterministic, seeded simulation of a monitored process sending
//! heartbeats through an unreliable network.
//!
//! Building blocks:
//!
//! * [`time`] — nanosecond instants ([`Nanos`]) and durations ([`Span`]).
//! * [`rng`] — seeded randomness and hand-built continuous distributions
//!   (the approved dependency set has `rand` but not `rand_distr`).
//! * [`delay`] — one-way delay models, including auto-correlated
//!   log-normal delays for WAN-like behaviour.
//! * [`loss`] — loss models, including Gilbert–Elliott bursty loss.
//! * [`scenario`] — phase-scripted network regimes (Stable/Burst/Worm…).
//! * [`link`] — time-windowed directives (blackouts, brownouts, extra
//!   loss) layered over a scenario to script one directed link.
//! * [`event`] — a stable discrete-event queue for service simulations.
//! * [`heartbeat`] — the paper's process model: `p` sends `m_i` at
//!   `i · Δi` through a scripted network, optionally crashing.
//!
//! Everything is `Send`, seedable and reproducible: the same seed always
//! produces the same trace on every platform.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delay;
pub mod event;
pub mod heartbeat;
pub mod link;
pub mod loss;
pub mod rng;
pub mod scenario;
pub mod time;

pub use delay::{DelayModel, DelaySpec};
pub use event::EventQueue;
pub use heartbeat::{HeartbeatOutcome, HeartbeatRun};
pub use link::{LinkDirective, LinkEffect, LinkModel, LinkSpec};
pub use loss::{LossModel, LossSpec};
pub use rng::{DistSpec, SimRng};
pub use scenario::{NetworkScenario, Phase, ScenarioNetwork, Transmission};
pub use time::{Nanos, Span};
