//! Link-level scenario directives.
//!
//! A [`crate::scenario::NetworkScenario`] scripts regimes by *heartbeat
//! count* — good for single-sender traces, but a cluster simulation
//! needs to script the behaviour of a directed **link** (sender →
//! monitor) in *time*: "this link blacks out from t=30s to t=45s",
//! "that one browns out with +200ms delay and 30% loss for a minute".
//! A [`LinkSpec`] is a base scenario plus an ordered list of
//! time-windowed [`LinkDirective`]s layered on top.
//!
//! Asymmetric behaviour falls out of directionality: each simulated
//! link owns its own `LinkSpec`, so partitioning A→B while leaving B→A
//! clean is just two different specs. Correlated burst loss scripts as
//! a Gilbert–Elliott base plus `Lossy` windows; a slow-node brownout is
//! `ExtraDelay` + `Lossy` over the same window.
//!
//! Like [`crate::loss::ScriptedLoss`], the base scenario's models are
//! advanced for **every** transmission — even ones a `Blackout`
//! directive then discards — so adding or removing directives never
//! shifts the base random stream relative to an unscripted run.

use crate::rng::SimRng;
use crate::scenario::{NetworkScenario, ScenarioNetwork, Transmission};
use crate::time::{Nanos, Span};
use serde::{Deserialize, Serialize};

/// What a [`LinkDirective`] does to transmissions inside its window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkEffect {
    /// Drop every message (a hard partition of this direction).
    Blackout,
    /// Add a constant delay on top of whatever the base model drew
    /// (a congested or distant path).
    ExtraDelay {
        /// Added one-way delay in nanoseconds.
        nanos: u64,
    },
    /// Drop messages with an extra independent probability, on top of
    /// the base loss model (a brownout's flaky half).
    Lossy {
        /// Additional independent loss probability.
        p: f64,
    },
}

/// One time-windowed effect on a link: `effect` applies to every
/// message sent in `[start, end)` (nanoseconds, half-open — the same
/// convention as [`crate::loss::LossSpec::Scripted`] windows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDirective {
    /// Window start (inclusive), in nanoseconds of send time.
    pub start: u64,
    /// Window end (exclusive), in nanoseconds of send time.
    pub end: u64,
    /// The effect applied inside the window.
    pub effect: LinkEffect,
}

impl LinkDirective {
    /// Whether the window covers a message sent at `t`.
    pub fn covers(&self, t: Nanos) -> bool {
        t.0 >= self.start && t.0 < self.end
    }
}

/// Serializable description of one directed link: a base
/// [`NetworkScenario`] plus layered time-windowed directives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Baseline behaviour (phase-scripted delay and loss).
    pub scenario: NetworkScenario,
    /// Time-windowed effects layered over the baseline, applied in
    /// order for every covered message.
    pub directives: Vec<LinkDirective>,
}

impl LinkSpec {
    /// A link with baseline behaviour only.
    pub fn clean(scenario: NetworkScenario) -> Self {
        LinkSpec {
            scenario,
            directives: Vec::new(),
        }
    }

    /// Adds a directive window (builder-style).
    pub fn with(mut self, start: Span, end: Span, effect: LinkEffect) -> Self {
        assert!(start.0 < end.0, "directive window must be non-empty");
        if let LinkEffect::Lossy { p } = effect {
            assert!((0.0..=1.0).contains(&p), "loss must be a probability");
        }
        self.directives.push(LinkDirective {
            start: start.0,
            end: end.0,
            effect,
        });
        self
    }

    /// Instantiates the live model.
    pub fn instantiate(&self) -> LinkModel {
        LinkModel {
            network: self.scenario.instantiate(),
            directives: self.directives.clone(),
        }
    }
}

/// A [`LinkSpec`] with live base-model state.
pub struct LinkModel {
    network: ScenarioNetwork,
    directives: Vec<LinkDirective>,
}

impl LinkModel {
    /// Transmits the next message over this link (sent at `send_time`);
    /// messages must be offered in send order, one call per message.
    ///
    /// The base scenario always draws first (keeping its random stream
    /// aligned with an unscripted run), then every directive covering
    /// `send_time` applies in list order: a `Blackout` loses the
    /// message outright, a `Lossy` window flips one extra coin, and
    /// `ExtraDelay` stretches whatever delay survives.
    pub fn transmit(&mut self, rng: &mut SimRng, send_time: Nanos) -> Transmission {
        let base = self.network.transmit(rng, send_time);
        let mut delay = match base {
            Transmission::Lost => None,
            Transmission::Delivered { delay } => Some(delay),
        };
        for directive in &self.directives {
            if !directive.covers(send_time) {
                continue;
            }
            match directive.effect {
                LinkEffect::Blackout => delay = None,
                LinkEffect::Lossy { p } => {
                    // Drawn even for already-lost messages so that the
                    // base loss pattern does not shift this window's
                    // coin sequence.
                    if rng.chance(p) {
                        delay = None;
                    }
                }
                LinkEffect::ExtraDelay { nanos } => {
                    delay = delay.map(|d| Span(d.0.saturating_add(nanos)));
                }
            }
        }
        match delay {
            Some(delay) => Transmission::Delivered { delay },
            None => Transmission::Lost,
        }
    }

    /// Messages transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.network.transmitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelaySpec;
    use crate::loss::LossSpec;

    fn base() -> NetworkScenario {
        NetworkScenario::uniform(
            "clean",
            1_000,
            DelaySpec::Constant { nanos: 1_000_000 },
            LossSpec::None,
        )
    }

    #[test]
    fn blackout_window_partitions_the_link() {
        let spec = LinkSpec::clean(base()).with(
            Span::from_secs(10),
            Span::from_secs(20),
            LinkEffect::Blackout,
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(1);
        assert!(matches!(
            link.transmit(&mut rng, Nanos::from_secs(9)),
            Transmission::Delivered { .. }
        ));
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(10)),
            Transmission::Lost
        );
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(19)),
            Transmission::Lost
        );
        assert!(matches!(
            link.transmit(&mut rng, Nanos::from_secs(20)),
            Transmission::Delivered { .. }
        ));
    }

    #[test]
    fn extra_delay_stretches_deliveries_inside_the_window() {
        let spec = LinkSpec::clean(base()).with(
            Span::from_secs(5),
            Span::from_secs(6),
            LinkEffect::ExtraDelay { nanos: 200_000_000 },
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(4)),
            Transmission::Delivered {
                delay: Span::from_millis(1)
            }
        );
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(5)),
            Transmission::Delivered {
                delay: Span::from_millis(201)
            }
        );
    }

    #[test]
    fn lossy_window_raises_the_loss_rate() {
        let spec = LinkSpec::clean(base()).with(
            Span::ZERO,
            Span::from_secs(1_000_000),
            LinkEffect::Lossy { p: 0.5 },
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 10_000;
        let lost = (0..n)
            .filter(|i| link.transmit(&mut rng, Nanos::from_millis(*i)) == Transmission::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    /// Directives must not shift the base random stream: outside every
    /// window, a scripted link behaves bit-identically to a clean one.
    #[test]
    fn directives_leave_the_base_stream_unshifted() {
        let stochastic = NetworkScenario::uniform(
            "wan",
            1_000,
            DelaySpec::Ar1LogNormal {
                mean_secs: 0.02,
                std_dev_secs: 0.01,
                rho: 0.9,
                floor_nanos: 1_000_000,
            },
            LossSpec::Bernoulli { p: 0.05 },
        );
        let scripted = LinkSpec::clean(stochastic.clone()).with(
            Span::from_secs(10),
            Span::from_secs(20),
            LinkEffect::Blackout,
        );
        let clean = LinkSpec::clean(stochastic);
        let mut a = scripted.instantiate();
        let mut b = clean.instantiate();
        let mut rng_a = SimRng::seed_from_u64(9);
        let mut rng_b = SimRng::seed_from_u64(9);
        for i in 0..300u64 {
            let t = Nanos::from_millis(i * 100);
            let ta = a.transmit(&mut rng_a, t);
            let tb = b.transmit(&mut rng_b, t);
            if t >= Nanos::from_secs(10) && t < Nanos::from_secs(20) {
                assert_eq!(ta, Transmission::Lost);
            } else {
                assert_eq!(ta, tb, "diverged at t={t:?}");
            }
        }
    }

    #[test]
    fn brownout_composes_delay_and_loss() {
        let spec = LinkSpec::clean(base())
            .with(
                Span::from_secs(1),
                Span::from_secs(2),
                LinkEffect::ExtraDelay { nanos: 100_000_000 },
            )
            .with(
                Span::from_secs(1),
                Span::from_secs(2),
                LinkEffect::Lossy { p: 0.0 },
            );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_millis(1_500)),
            Transmission::Delivered {
                delay: Span::from_millis(101)
            }
        );
    }

    #[test]
    fn rejects_empty_windows_and_bad_probabilities() {
        assert!(std::panic::catch_unwind(|| {
            LinkSpec::clean(base()).with(
                Span::from_secs(2),
                Span::from_secs(2),
                LinkEffect::Blackout,
            )
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            LinkSpec::clean(base()).with(
                Span::ZERO,
                Span::from_secs(1),
                LinkEffect::Lossy { p: 1.5 },
            )
        })
        .is_err());
    }
}
