//! Link-level scenario directives.
//!
//! A [`crate::scenario::NetworkScenario`] scripts regimes by *heartbeat
//! count* — good for single-sender traces, but a cluster simulation
//! needs to script the behaviour of a directed **link** (sender →
//! monitor) in *time*: "this link blacks out from t=30s to t=45s",
//! "that one browns out with +200ms delay and 30% loss for a minute".
//! A [`LinkSpec`] is a base scenario plus an ordered list of
//! time-windowed [`LinkDirective`]s layered on top.
//!
//! Asymmetric behaviour falls out of directionality: each simulated
//! link owns its own `LinkSpec`, so partitioning A→B while leaving B→A
//! clean is just two different specs. Correlated burst loss is a
//! first-class directive: a `BurstLoss` window runs its own
//! Gilbert–Elliott chain ([`crate::loss::GilbertElliottLoss`]) seeded
//! from the scenario RNG, so losses cluster instead of falling
//! independently; a slow-node brownout is `ExtraDelay` + `Lossy` over
//! the same window.
//!
//! Like [`crate::loss::ScriptedLoss`], the base scenario's models are
//! advanced for **every** transmission — even ones a `Blackout`
//! directive then discards — so adding or removing directives never
//! shifts the base random stream relative to an unscripted run.

use crate::loss::{GilbertElliottLoss, LossModel};
use crate::rng::SimRng;
use crate::scenario::{NetworkScenario, ScenarioNetwork, Transmission};
use crate::time::{Nanos, Span};
use serde::{Deserialize, Serialize};

/// What a [`LinkDirective`] does to transmissions inside its window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkEffect {
    /// Drop every message (a hard partition of this direction).
    Blackout,
    /// Add a constant delay on top of whatever the base model drew
    /// (a congested or distant path).
    ExtraDelay {
        /// Added one-way delay in nanoseconds.
        nanos: u64,
    },
    /// Drop messages with an extra independent probability, on top of
    /// the base loss model (a brownout's flaky half).
    Lossy {
        /// Additional independent loss probability.
        p: f64,
    },
    /// Drop messages through a two-state Gilbert–Elliott chain layered
    /// on the base model: losses arrive in correlated bursts (mean
    /// burst length `1/p_bg` messages) instead of independently — the
    /// radio-link / congested-queue picture. The chain starts Good at
    /// the window's first covered message and advances once per
    /// message, drawing from the link's scenario RNG.
    BurstLoss {
        /// Good → Bad transition probability per message.
        p_gb: f64,
        /// Bad → Good transition probability per message.
        p_bg: f64,
        /// Loss probability while in the Good state.
        loss_good: f64,
        /// Loss probability while in the Bad state.
        loss_bad: f64,
    },
}

/// One time-windowed effect on a link: `effect` applies to every
/// message sent in `[start, end)` (nanoseconds, half-open — the same
/// convention as [`crate::loss::LossSpec::Scripted`] windows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDirective {
    /// Window start (inclusive), in nanoseconds of send time.
    pub start: u64,
    /// Window end (exclusive), in nanoseconds of send time.
    pub end: u64,
    /// The effect applied inside the window.
    pub effect: LinkEffect,
}

impl LinkDirective {
    /// Whether the window covers a message sent at `t`.
    pub fn covers(&self, t: Nanos) -> bool {
        t.0 >= self.start && t.0 < self.end
    }
}

/// Serializable description of one directed link: a base
/// [`NetworkScenario`] plus layered time-windowed directives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Baseline behaviour (phase-scripted delay and loss).
    pub scenario: NetworkScenario,
    /// Time-windowed effects layered over the baseline, applied in
    /// order for every covered message.
    pub directives: Vec<LinkDirective>,
}

impl LinkSpec {
    /// A link with baseline behaviour only.
    pub fn clean(scenario: NetworkScenario) -> Self {
        LinkSpec {
            scenario,
            directives: Vec::new(),
        }
    }

    /// Adds a directive window (builder-style).
    pub fn with(mut self, start: Span, end: Span, effect: LinkEffect) -> Self {
        assert!(start.0 < end.0, "directive window must be non-empty");
        match effect {
            LinkEffect::Lossy { p } => {
                assert!((0.0..=1.0).contains(&p), "loss must be a probability");
            }
            LinkEffect::BurstLoss {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                // Constructing the chain runs its probability asserts.
                let _ = GilbertElliottLoss::new(p_gb, p_bg, loss_good, loss_bad);
            }
            LinkEffect::Blackout | LinkEffect::ExtraDelay { .. } => {}
        }
        self.directives.push(LinkDirective {
            start: start.0,
            end: end.0,
            effect,
        });
        self
    }

    /// Instantiates the live model.
    pub fn instantiate(&self) -> LinkModel {
        // Burst-loss directives carry Markov state; give each its own
        // chain, parallel to the directive list.
        let bursts = self
            .directives
            .iter()
            .map(|d| match d.effect {
                LinkEffect::BurstLoss {
                    p_gb,
                    p_bg,
                    loss_good,
                    loss_bad,
                } => Some(GilbertElliottLoss::new(p_gb, p_bg, loss_good, loss_bad)),
                _ => None,
            })
            .collect();
        LinkModel {
            network: self.scenario.instantiate(),
            directives: self.directives.clone(),
            bursts,
        }
    }
}

/// A [`LinkSpec`] with live base-model state.
pub struct LinkModel {
    network: ScenarioNetwork,
    directives: Vec<LinkDirective>,
    /// Per-directive Gilbert–Elliott state, `Some` iff the directive at
    /// the same index is a [`LinkEffect::BurstLoss`].
    bursts: Vec<Option<GilbertElliottLoss>>,
}

impl LinkModel {
    /// Transmits the next message over this link (sent at `send_time`);
    /// messages must be offered in send order, one call per message.
    ///
    /// The base scenario always draws first (keeping its random stream
    /// aligned with an unscripted run), then every directive covering
    /// `send_time` applies in list order: a `Blackout` loses the
    /// message outright, a `Lossy` window flips one extra coin, and
    /// `ExtraDelay` stretches whatever delay survives.
    pub fn transmit(&mut self, rng: &mut SimRng, send_time: Nanos) -> Transmission {
        let base = self.network.transmit(rng, send_time);
        let mut delay = match base {
            Transmission::Lost => None,
            Transmission::Delivered { delay } => Some(delay),
        };
        for (directive, burst) in self.directives.iter().zip(&mut self.bursts) {
            if !directive.covers(send_time) {
                continue;
            }
            match directive.effect {
                LinkEffect::Blackout => delay = None,
                LinkEffect::Lossy { p } => {
                    // Drawn even for already-lost messages so that the
                    // base loss pattern does not shift this window's
                    // coin sequence.
                    if rng.chance(p) {
                        delay = None;
                    }
                }
                LinkEffect::BurstLoss { .. } => {
                    // Same convention: the chain advances once per
                    // covered message, lost or not, so the burst
                    // pattern is independent of the base loss draws.
                    let chain = burst.as_mut().expect("bursts parallels directives");
                    if chain.is_lost(rng, send_time) {
                        delay = None;
                    }
                }
                LinkEffect::ExtraDelay { nanos } => {
                    delay = delay.map(|d| Span(d.0.saturating_add(nanos)));
                }
            }
        }
        match delay {
            Some(delay) => Transmission::Delivered { delay },
            None => Transmission::Lost,
        }
    }

    /// Messages transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.network.transmitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelaySpec;
    use crate::loss::LossSpec;

    fn base() -> NetworkScenario {
        NetworkScenario::uniform(
            "clean",
            1_000,
            DelaySpec::Constant { nanos: 1_000_000 },
            LossSpec::None,
        )
    }

    #[test]
    fn blackout_window_partitions_the_link() {
        let spec = LinkSpec::clean(base()).with(
            Span::from_secs(10),
            Span::from_secs(20),
            LinkEffect::Blackout,
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(1);
        assert!(matches!(
            link.transmit(&mut rng, Nanos::from_secs(9)),
            Transmission::Delivered { .. }
        ));
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(10)),
            Transmission::Lost
        );
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(19)),
            Transmission::Lost
        );
        assert!(matches!(
            link.transmit(&mut rng, Nanos::from_secs(20)),
            Transmission::Delivered { .. }
        ));
    }

    #[test]
    fn extra_delay_stretches_deliveries_inside_the_window() {
        let spec = LinkSpec::clean(base()).with(
            Span::from_secs(5),
            Span::from_secs(6),
            LinkEffect::ExtraDelay { nanos: 200_000_000 },
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(4)),
            Transmission::Delivered {
                delay: Span::from_millis(1)
            }
        );
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_secs(5)),
            Transmission::Delivered {
                delay: Span::from_millis(201)
            }
        );
    }

    #[test]
    fn lossy_window_raises_the_loss_rate() {
        let spec = LinkSpec::clean(base()).with(
            Span::ZERO,
            Span::from_secs(1_000_000),
            LinkEffect::Lossy { p: 0.5 },
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 10_000;
        let lost = (0..n)
            .filter(|i| link.transmit(&mut rng, Nanos::from_millis(*i)) == Transmission::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    /// Directives must not shift the base random stream: outside every
    /// window, a scripted link behaves bit-identically to a clean one.
    #[test]
    fn directives_leave_the_base_stream_unshifted() {
        let stochastic = NetworkScenario::uniform(
            "wan",
            1_000,
            DelaySpec::Ar1LogNormal {
                mean_secs: 0.02,
                std_dev_secs: 0.01,
                rho: 0.9,
                floor_nanos: 1_000_000,
            },
            LossSpec::Bernoulli { p: 0.05 },
        );
        let scripted = LinkSpec::clean(stochastic.clone()).with(
            Span::from_secs(10),
            Span::from_secs(20),
            LinkEffect::Blackout,
        );
        let clean = LinkSpec::clean(stochastic);
        let mut a = scripted.instantiate();
        let mut b = clean.instantiate();
        let mut rng_a = SimRng::seed_from_u64(9);
        let mut rng_b = SimRng::seed_from_u64(9);
        for i in 0..300u64 {
            let t = Nanos::from_millis(i * 100);
            let ta = a.transmit(&mut rng_a, t);
            let tb = b.transmit(&mut rng_b, t);
            if t >= Nanos::from_secs(10) && t < Nanos::from_secs(20) {
                assert_eq!(ta, Transmission::Lost);
            } else {
                assert_eq!(ta, tb, "diverged at t={t:?}");
            }
        }
    }

    #[test]
    fn brownout_composes_delay_and_loss() {
        let spec = LinkSpec::clean(base())
            .with(
                Span::from_secs(1),
                Span::from_secs(2),
                LinkEffect::ExtraDelay { nanos: 100_000_000 },
            )
            .with(
                Span::from_secs(1),
                Span::from_secs(2),
                LinkEffect::Lossy { p: 0.0 },
            );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(
            link.transmit(&mut rng, Nanos::from_millis(1_500)),
            Transmission::Delivered {
                delay: Span::from_millis(101)
            }
        );
    }

    /// Burst loss must hit the stationary Gilbert–Elliott rate *and*
    /// cluster: mean loss-run length ≈ 1/p_bg, far above what an
    /// independent `Lossy` window at the same rate produces.
    #[test]
    fn burst_loss_clusters_losses_at_the_stationary_rate() {
        // p_bad = 0.05/(0.05+0.2) = 0.2 stationary loss; bursts of ~5.
        let spec = LinkSpec::clean(base()).with(
            Span::ZERO,
            Span::from_secs(1_000_000),
            LinkEffect::BurstLoss {
                p_gb: 0.05,
                p_bg: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
        );
        let mut link = spec.instantiate();
        let mut rng = SimRng::seed_from_u64(5);
        let n: u64 = 50_000;
        let outcomes: Vec<bool> = (0..n)
            .map(|i| link.transmit(&mut rng, Nanos::from_millis(i)) == Transmission::Lost)
            .collect();
        let lost = outcomes.iter().filter(|&&l| l).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "stationary rate {rate}");

        let mut runs = 0usize;
        for i in 0..outcomes.len() {
            if outcomes[i] && (i == 0 || !outcomes[i - 1]) {
                runs += 1;
            }
        }
        let mean_burst = lost as f64 / runs as f64;
        assert!(
            mean_burst > 3.0,
            "losses must cluster (mean burst {mean_burst:.2}, independent would be ~1.25)"
        );
    }

    /// Outside its window a burst-loss directive draws nothing, so the
    /// base stream stays aligned with a clean link.
    #[test]
    fn burst_loss_window_leaves_the_outside_untouched() {
        let scripted = LinkSpec::clean(base()).with(
            Span::from_secs(10),
            Span::from_secs(20),
            LinkEffect::BurstLoss {
                p_gb: 1.0,
                p_bg: 0.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
        );
        let mut link = scripted.instantiate();
        let mut rng = SimRng::seed_from_u64(6);
        for i in 0..300u64 {
            let t = Nanos::from_millis(i * 100);
            let out = link.transmit(&mut rng, t);
            if t >= Nanos::from_secs(10) && t < Nanos::from_secs(20) {
                // p_gb=1 flips to Bad on the first covered message and
                // p_bg=0 pins it there: the whole window is lost.
                assert_eq!(out, Transmission::Lost, "t={t:?}");
            } else {
                assert!(matches!(out, Transmission::Delivered { .. }), "t={t:?}");
            }
        }
    }

    #[test]
    fn rejects_empty_windows_and_bad_probabilities() {
        assert!(std::panic::catch_unwind(|| {
            LinkSpec::clean(base()).with(
                Span::from_secs(2),
                Span::from_secs(2),
                LinkEffect::Blackout,
            )
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            LinkSpec::clean(base()).with(
                Span::ZERO,
                Span::from_secs(1),
                LinkEffect::Lossy { p: 1.5 },
            )
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            LinkSpec::clean(base()).with(
                Span::ZERO,
                Span::from_secs(1),
                LinkEffect::BurstLoss {
                    p_gb: 0.1,
                    p_bg: -0.1,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                },
            )
        })
        .is_err());
    }
}
