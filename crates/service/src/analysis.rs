//! Empirical QoS analysis of the shared service (§V-C.1, plus the
//! paper's proposed future work: "an empirical analysis on resulting QoS
//! of applications using the service").
//!
//! For every registered application the analysis replays two deployments
//! over equivalent network conditions:
//!
//! * **dedicated** — a heartbeat stream at the app's own `Δi_j`, a
//!   detector with its own `Δto_j`;
//! * **shared** — the single stream at `Δi_min`, a detector with the
//!   app's widened margin `Δto_j' = T_D,j − Δi_min`.
//!
//! The paper predicts: detection budgets identical, and for every
//! *adapted* application (one whose own `Δi_j > Δi_min`) both the mistake
//! rate and the mistake duration improve. [`analyze`] measures exactly
//! that, alongside the network-load comparison.

use crate::accounting::{load_report, LoadReport};
use crate::combine::{combine, CombineError, SharedConfig};
use crate::registry::{AppId, AppRegistry};
use serde::{Deserialize, Serialize};
use twofd_core::{replay, DetectorConfig, DetectorSpec, NetworkBehavior, QosMetrics};
use twofd_sim::time::Span;
use twofd_trace::Trace;

/// QoS of one application under both deployments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppQosComparison {
    /// The application.
    pub id: AppId,
    /// Its name.
    pub name: String,
    /// Whether the shared service adapted its parameters.
    pub adapted: bool,
    /// Metrics with a dedicated detector at `(Δi_j, Δto_j)`.
    pub dedicated: QosMetrics,
    /// Metrics on the shared stream at `(Δi_min, Δto_j')`.
    pub shared: QosMetrics,
}

impl AppQosComparison {
    /// Whether the shared deployment's mistake rate is no worse.
    pub fn mistake_rate_improved_or_equal(&self) -> bool {
        self.shared.mistake_rate <= self.dedicated.mistake_rate + 1e-12
    }
}

/// Full analysis output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceAnalysis {
    /// The combined configuration under analysis.
    pub config: SharedConfig,
    /// Per-application QoS comparison, in registry order.
    pub apps: Vec<AppQosComparison>,
    /// The network-load comparison.
    pub load: LoadReport,
}

/// Runs the full shared-vs-dedicated analysis.
///
/// `trace_for_interval` must produce a heartbeat trace of the *same
/// network conditions* for any requested sending interval — the analysis
/// calls it once per distinct interval (the shared `Δi_min` plus each
/// app's dedicated `Δi_j`).
pub fn analyze(
    registry: &AppRegistry,
    net: &NetworkBehavior,
    spec: &DetectorSpec,
    horizon: Span,
    mut trace_for_interval: impl FnMut(Span) -> Trace,
) -> Result<ServiceAnalysis, CombineError> {
    let config = combine(registry, net)?;
    let shared_trace = trace_for_interval(config.interval);
    assert_eq!(
        shared_trace.interval, config.interval,
        "trace_for_interval must honour the requested interval"
    );

    let mut apps = Vec::with_capacity(config.shares.len());
    for share in &config.shares {
        // Dedicated deployment.
        let dedicated_trace = if share.dedicated.interval == config.interval {
            shared_trace.clone()
        } else {
            trace_for_interval(share.dedicated.interval)
        };
        let mut fd = DetectorConfig::new(
            spec.clone(),
            share.dedicated.interval,
            share.dedicated.safety_margin.as_secs_f64(),
        )
        .build();
        let dedicated = replay(&mut fd, &dedicated_trace).metrics();

        // Shared deployment.
        let mut fd = DetectorConfig::new(
            spec.clone(),
            config.interval,
            share.shared_margin.as_secs_f64(),
        )
        .build();
        let shared = replay(&mut fd, &shared_trace).metrics();

        apps.push(AppQosComparison {
            id: share.id,
            name: share.name.clone(),
            adapted: share.adapted,
            dedicated,
            shared,
        });
    }

    let load = load_report(&config, horizon);
    Ok(ServiceAnalysis { config, apps, load })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_core::QosSpec;
    use twofd_sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario};
    use twofd_trace::generate_scripted;

    fn lossy_trace(interval: Span) -> Trace {
        // ~60 s of heartbeats with moderate jitter and loss, scaled to
        // the interval so all traces cover the same wall-clock span.
        let n = (60.0 / interval.as_secs_f64()).ceil() as u64;
        let scenario = NetworkScenario::uniform(
            "svc",
            n,
            DelaySpec::Iid {
                dist: DistSpec::LogNormal {
                    mean: 0.02,
                    std_dev: 0.01,
                },
                floor_nanos: 100_000,
            },
            LossSpec::Bernoulli { p: 0.02 },
        );
        generate_scripted("svc", interval, scenario, 77, None)
    }

    fn registry() -> AppRegistry {
        let mut r = AppRegistry::new();
        r.register("strict", QosSpec::new(0.25, 86_400.0, 0.3));
        r.register("lax", QosSpec::new(2.0, 600.0, 1.5));
        r
    }

    fn net() -> NetworkBehavior {
        NetworkBehavior::new(0.02, 0.01 * 0.01)
    }

    #[test]
    fn analysis_covers_all_apps_and_load() {
        let analysis = analyze(
            &registry(),
            &net(),
            &DetectorSpec::default(),
            Span::from_secs(3600),
            lossy_trace,
        )
        .unwrap();
        assert_eq!(analysis.apps.len(), 2);
        assert!(analysis.load.reduction_factor > 1.0);
    }

    #[test]
    fn adapted_app_mistake_rate_improves_or_holds() {
        let analysis = analyze(
            &registry(),
            &net(),
            &DetectorSpec::Chen { window: 1000 },
            Span::from_secs(3600),
            lossy_trace,
        )
        .unwrap();
        let lax = analysis.apps.iter().find(|a| a.name == "lax").unwrap();
        assert!(lax.adapted);
        assert!(
            lax.mistake_rate_improved_or_equal(),
            "shared {} vs dedicated {}",
            lax.shared.mistake_rate,
            lax.dedicated.mistake_rate
        );
    }

    #[test]
    fn non_adapted_app_unchanged_in_configuration() {
        let analysis = analyze(
            &registry(),
            &net(),
            &DetectorSpec::default(),
            Span::from_secs(60),
            lossy_trace,
        )
        .unwrap();
        // The strictest app defines Δi_min: by definition not adapted.
        let strict = analysis.apps.iter().find(|a| a.name == "strict").unwrap();
        assert!(!strict.adapted);
        let share = analysis.config.share(strict.id).unwrap();
        assert_eq!(share.shared_margin, share.dedicated.safety_margin);
    }

    #[test]
    #[should_panic(expected = "must honour the requested interval")]
    fn mismatched_trace_interval_is_rejected() {
        let _ = analyze(
            &registry(),
            &net(),
            &DetectorSpec::default(),
            Span::from_secs(60),
            |_interval| lossy_trace(Span::from_millis(999)),
        );
    }
}
