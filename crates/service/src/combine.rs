//! Combining multiple QoS requirements (§V-C of the paper).
//!
//! One physical machine sends a single heartbeat stream that must serve
//! every application's failure detector. The paper's procedure:
//!
//! 1. For each application `app_j`, run Chen's configuration procedure on
//!    its own tuple, obtaining `(Δi_j, Δto_j)`.
//! 2. Use `Δi_min = min_j Δi_j` as the shared heartbeat interval.
//! 3. Give each application the timeout `Δto_j' = T_D,j − Δi_min`, so its
//!    detection-time budget is preserved *exactly*.
//! 4. The service computes freshness points per application from its own
//!    `Δto_j'`.
//!
//! Consequences (§V-C.1): every application whose own `Δi_j` exceeded
//! `Δi_min` gets a **larger** safety margin and a **faster** heartbeat
//! than it asked for — both its mistake rate and its mistake duration
//! improve — while the network carries one stream instead of `n`.

use crate::registry::{AppId, AppRegistry};
use serde::{Deserialize, Serialize};
use twofd_core::{configure, ConfigError, FdConfig, NetworkBehavior};
use twofd_sim::time::Span;

/// Per-application share of the combined configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppShare {
    /// The application this share belongs to.
    pub id: AppId,
    /// Application name (echoed for reporting).
    pub name: String,
    /// The configuration the app would use with a dedicated detector.
    pub dedicated: FdConfig,
    /// The safety margin under the shared stream:
    /// `Δto' = T_D − Δi_min ≥ Δto`.
    pub shared_margin: Span,
    /// Whether the app's parameters were adapted (its own `Δi_j` was not
    /// the minimum).
    pub adapted: bool,
}

/// The combined service configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedConfig {
    /// The shared heartbeat interval `Δi_min`.
    pub interval: Span,
    /// Per-application shares, in registry order.
    pub shares: Vec<AppShare>,
}

impl SharedConfig {
    /// The share of a specific application.
    pub fn share(&self, id: AppId) -> Option<&AppShare> {
        self.shares.iter().find(|s| s.id == id)
    }

    /// Heartbeats per second of the shared stream.
    pub fn shared_rate(&self) -> f64 {
        1.0 / self.interval.as_secs_f64()
    }

    /// Heartbeats per second if every app ran a dedicated detector.
    pub fn dedicated_rate(&self) -> f64 {
        self.shares
            .iter()
            .map(|s| 1.0 / s.dedicated.interval.as_secs_f64())
            .sum()
    }

    /// Network-load reduction factor `dedicated / shared` (≥ 1 whenever
    /// more than one app is registered; == 1 for a single app).
    pub fn load_reduction(&self) -> f64 {
        self.dedicated_rate() / self.shared_rate()
    }
}

/// Errors from combining requirements.
#[derive(Debug, Clone, PartialEq)]
pub enum CombineError {
    /// No applications are registered.
    EmptyRegistry,
    /// One application's own QoS tuple is unachievable on this network.
    AppUnachievable {
        /// The offending application.
        id: AppId,
        /// Its name.
        name: String,
        /// The underlying configuration error.
        source: ConfigError,
    },
}

impl std::fmt::Display for CombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineError::EmptyRegistry => write!(f, "no applications registered"),
            CombineError::AppUnachievable { name, source, .. } => {
                write!(f, "application {name:?}: {source}")
            }
        }
    }
}

impl std::error::Error for CombineError {}

/// Runs Steps 1–3 of §V-C for every registered application.
///
/// ```
/// use twofd_core::{NetworkBehavior, QosSpec};
/// use twofd_service::{combine, AppRegistry};
///
/// let mut apps = AppRegistry::new();
/// apps.register("strict", QosSpec::new(0.5, 86_400.0, 0.5));
/// apps.register("lax", QosSpec::new(5.0, 600.0, 3.0));
/// let net = NetworkBehavior::new(0.01, 0.0004);
///
/// let shared = combine(&apps, &net).unwrap();
/// // One heartbeat stream at the strictest app's interval…
/// assert!(shared.interval.as_secs_f64() < 0.5);
/// // …and fewer messages than one detector per app.
/// assert!(shared.load_reduction() > 1.0);
/// ```
pub fn combine(
    registry: &AppRegistry,
    net: &NetworkBehavior,
) -> Result<SharedConfig, CombineError> {
    if registry.is_empty() {
        return Err(CombineError::EmptyRegistry);
    }

    // Step 1: per-app dedicated configurations.
    let mut dedicated = Vec::with_capacity(registry.len());
    for app in registry.apps() {
        let cfg = configure(&app.qos, net).map_err(|source| CombineError::AppUnachievable {
            id: app.id,
            name: app.name.clone(),
            source,
        })?;
        dedicated.push((app, cfg));
    }

    // Step 2: the shared interval is the minimum.
    let interval = dedicated
        .iter()
        .map(|(_, cfg)| cfg.interval)
        .min()
        .expect("registry not empty");

    // Step 3: per-app shared margins preserve each detection budget.
    let shares = dedicated
        .into_iter()
        .map(|(app, cfg)| {
            let shared_margin = Span::from_secs_f64(app.qos.detection_time) - interval;
            AppShare {
                id: app.id,
                name: app.name.clone(),
                adapted: cfg.interval > interval,
                dedicated: cfg,
                shared_margin,
            }
        })
        .collect();

    Ok(SharedConfig { interval, shares })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_core::QosSpec;

    fn net() -> NetworkBehavior {
        NetworkBehavior::new(0.01, 0.02 * 0.02)
    }

    fn registry_of(specs: &[(&str, f64, f64, f64)]) -> AppRegistry {
        let mut r = AppRegistry::new();
        for &(name, td, tmr, tm) in specs {
            r.register(name, QosSpec::new(td, tmr, tm));
        }
        r
    }

    #[test]
    fn empty_registry_is_an_error() {
        assert_eq!(
            combine(&AppRegistry::new(), &net()),
            Err(CombineError::EmptyRegistry)
        );
    }

    #[test]
    fn single_app_matches_dedicated_configuration() {
        let r = registry_of(&[("only", 1.0, 3600.0, 1.0)]);
        let combined = combine(&r, &net()).unwrap();
        let share = &combined.shares[0];
        assert_eq!(combined.interval, share.dedicated.interval);
        assert_eq!(share.shared_margin, share.dedicated.safety_margin);
        assert!(!share.adapted);
        assert!((combined.load_reduction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_interval_is_the_minimum() {
        let r = registry_of(&[("strict", 0.3, 86_400.0, 0.5), ("lax", 3.0, 600.0, 2.0)]);
        let combined = combine(&r, &net()).unwrap();
        let min = combined
            .shares
            .iter()
            .map(|s| s.dedicated.interval)
            .min()
            .unwrap();
        assert_eq!(combined.interval, min);
    }

    #[test]
    fn detection_budget_preserved_exactly_for_every_app() {
        let r = registry_of(&[
            ("a", 0.4, 3600.0, 0.5),
            ("b", 1.0, 600.0, 1.0),
            ("c", 5.0, 60.0, 3.0),
        ]);
        let combined = combine(&r, &net()).unwrap();
        for (share, app) in combined.shares.iter().zip(r.apps()) {
            let budget = (combined.interval + share.shared_margin).as_secs_f64();
            assert!(
                (budget - app.qos.detection_time).abs() < 1e-6,
                "{}: budget {budget} vs T_D {}",
                share.name,
                app.qos.detection_time
            );
        }
    }

    #[test]
    fn adapted_apps_get_larger_margins() {
        let r = registry_of(&[("strict", 0.3, 86_400.0, 0.5), ("lax", 3.0, 600.0, 2.0)]);
        let combined = combine(&r, &net()).unwrap();
        let lax = combined.shares.iter().find(|s| s.name == "lax").unwrap();
        assert!(lax.adapted);
        assert!(lax.shared_margin > lax.dedicated.safety_margin);
    }

    #[test]
    fn load_reduction_grows_with_apps() {
        let two = registry_of(&[("a", 0.5, 3600.0, 0.5), ("b", 2.0, 600.0, 1.0)]);
        let three = registry_of(&[
            ("a", 0.5, 3600.0, 0.5),
            ("b", 2.0, 600.0, 1.0),
            ("c", 4.0, 300.0, 2.0),
        ]);
        let r2 = combine(&two, &net()).unwrap().load_reduction();
        let r3 = combine(&three, &net()).unwrap().load_reduction();
        assert!(r2 > 1.0);
        assert!(r3 > r2);
    }

    #[test]
    fn unachievable_app_is_reported_by_name() {
        let mut r = AppRegistry::new();
        r.register("fine", QosSpec::new(1.0, 3600.0, 1.0));
        r.register("impossible", QosSpec::new(0.1, 1e12, 1e-6));
        let err = combine(&r, &NetworkBehavior::new(0.5, 1.0)).unwrap_err();
        match err {
            CombineError::AppUnachievable { name, .. } => assert_eq!(name, "impossible"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn share_lookup_by_id() {
        let r = registry_of(&[("a", 0.5, 3600.0, 0.5), ("b", 2.0, 600.0, 1.0)]);
        let combined = combine(&r, &net()).unwrap();
        let id = r.apps()[1].id;
        assert_eq!(combined.share(id).unwrap().name, "b");
        assert!(combined.share(AppId(999)).is_none());
    }
}
