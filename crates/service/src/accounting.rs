//! Network-load accounting: shared service vs. dedicated detectors.
//!
//! The paper's final claim (§V-C.1): "network traffic is reduced from the
//! case of using a single failure detector per application, because in
//! that case, for each app_j a heartbeat should be sent every Δi_j."
//! This module quantifies it: heartbeats per second and total messages
//! over an horizon, for both deployments.

use crate::combine::SharedConfig;
use serde::{Deserialize, Serialize};
use twofd_sim::time::Span;

/// Message-load comparison over a given horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Horizon the totals are computed over, seconds.
    pub horizon_secs: f64,
    /// Heartbeats per second on the wire with the shared service.
    pub shared_rate: f64,
    /// Heartbeats per second with one dedicated detector per app.
    pub dedicated_rate: f64,
    /// Total messages with the shared service.
    pub shared_messages: u64,
    /// Total messages with dedicated detectors.
    pub dedicated_messages: u64,
    /// `dedicated_rate / shared_rate`.
    pub reduction_factor: f64,
    /// Absolute messages saved over the horizon.
    pub messages_saved: u64,
}

/// Computes the load comparison for a combined configuration.
pub fn load_report(config: &SharedConfig, horizon: Span) -> LoadReport {
    let horizon_secs = horizon.as_secs_f64();
    let shared_rate = config.shared_rate();
    let dedicated_rate = config.dedicated_rate();
    let count = |rate: f64| (rate * horizon_secs).floor() as u64;
    let shared_messages = count(shared_rate);
    let dedicated_messages: u64 = config
        .shares
        .iter()
        .map(|s| count(1.0 / s.dedicated.interval.as_secs_f64()))
        .sum();
    LoadReport {
        horizon_secs,
        shared_rate,
        dedicated_rate,
        shared_messages,
        dedicated_messages,
        reduction_factor: dedicated_rate / shared_rate,
        messages_saved: dedicated_messages.saturating_sub(shared_messages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine;
    use crate::registry::AppRegistry;
    use twofd_core::{NetworkBehavior, QosSpec};

    fn config(specs: &[(f64, f64, f64)]) -> SharedConfig {
        let mut r = AppRegistry::new();
        for (i, &(td, tmr, tm)) in specs.iter().enumerate() {
            r.register(format!("app{i}"), QosSpec::new(td, tmr, tm));
        }
        combine(&r, &NetworkBehavior::new(0.01, 0.0004)).unwrap()
    }

    #[test]
    fn shared_never_exceeds_dedicated() {
        let cfg = config(&[(0.5, 3600.0, 0.5), (2.0, 600.0, 1.0), (5.0, 60.0, 3.0)]);
        let report = load_report(&cfg, Span::from_secs(3600));
        assert!(report.shared_messages <= report.dedicated_messages);
        assert!(report.reduction_factor >= 1.0);
        assert_eq!(
            report.messages_saved,
            report.dedicated_messages - report.shared_messages
        );
    }

    #[test]
    fn single_app_sees_no_reduction() {
        let cfg = config(&[(1.0, 3600.0, 1.0)]);
        let report = load_report(&cfg, Span::from_secs(100));
        assert!((report.reduction_factor - 1.0).abs() < 1e-9);
        assert_eq!(report.messages_saved, 0);
    }

    #[test]
    fn rates_are_reciprocal_intervals() {
        let cfg = config(&[(0.5, 3600.0, 0.5), (2.0, 600.0, 1.0)]);
        let report = load_report(&cfg, Span::from_secs(10));
        let expect_shared = 1.0 / cfg.interval.as_secs_f64();
        assert!((report.shared_rate - expect_shared).abs() < 1e-9);
        assert!(report.dedicated_rate > report.shared_rate);
    }

    #[test]
    fn reduction_grows_with_heterogeneous_apps() {
        let homo = config(&[(1.0, 3600.0, 1.0), (1.0, 3600.0, 1.0)]);
        let hetero = config(&[(0.3, 86_400.0, 0.3), (5.0, 60.0, 3.0)]);
        let r_homo = load_report(&homo, Span::from_secs(100)).reduction_factor;
        let r_hetero = load_report(&hetero, Span::from_secs(100)).reduction_factor;
        // Identical apps: dedicated streams are identical → factor n.
        assert!((r_homo - 2.0).abs() < 1e-6);
        // Heterogeneous: the lax app's slow stream is replaced by the
        // strict app's fast one → factor between 1 and 2.
        assert!(r_hetero > 1.0 && r_hetero < 2.0);
    }
}
