//! Application registry for the shared failure-detection service.
//!
//! Section V of the paper considers `n` applications (or VMs) on one
//! physical host, each with its own QoS requirement tuple, all monitoring
//! the same remote host through a single shared heartbeat stream.
//! [`AppRegistry`] holds the applications and their requirements.
//!
//! With the sharded fleet runtime one service endpoint multiplexes many
//! heartbeat streams, so each application additionally *binds* to the
//! stream id it monitors. The registry can then answer, per stream, the
//! strictest QoS any bound application demands — which is what the
//! detector factory needs when a shard instantiates a stream's detector.

use serde::{Deserialize, Serialize};
use twofd_core::QosSpec;

/// Identifier of a registered application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub u32);

/// A registered application with its QoS requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequirement {
    /// Stable identifier.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// The application's QoS tuple `(T_Dᵁ, T_MRᵁ, T_Mᵁ)`.
    pub qos: QosSpec,
    /// Wire stream id this application monitors, once bound
    /// (`None` for apps on the legacy single-stream deployment).
    pub stream: Option<u64>,
}

/// The set of applications sharing one failure-detection service.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AppRegistry {
    apps: Vec<AppRequirement>,
    next_id: u32,
}

impl AppRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application, returning its id.
    pub fn register(&mut self, name: impl Into<String>, qos: QosSpec) -> AppId {
        let id = AppId(self.next_id);
        self.next_id += 1;
        self.apps.push(AppRequirement {
            id,
            name: name.into(),
            qos,
            stream: None,
        });
        id
    }

    /// Registers an application already bound to a heartbeat stream.
    pub fn register_on_stream(
        &mut self,
        name: impl Into<String>,
        qos: QosSpec,
        stream: u64,
    ) -> AppId {
        let id = self.register(name, qos);
        self.bind_stream(id, stream);
        id
    }

    /// Binds (or re-binds) an application to a heartbeat stream; returns
    /// whether the application exists.
    pub fn bind_stream(&mut self, id: AppId, stream: u64) -> bool {
        match self.apps.iter_mut().find(|a| a.id == id) {
            Some(app) => {
                app.stream = Some(stream);
                true
            }
            None => false,
        }
    }

    /// The stream an application is bound to, if any.
    pub fn stream_of(&self, id: AppId) -> Option<u64> {
        self.get(id).and_then(|a| a.stream)
    }

    /// All applications bound to `stream`, in registration order.
    pub fn apps_on_stream(&self, stream: u64) -> Vec<&AppRequirement> {
        self.apps
            .iter()
            .filter(|a| a.stream == Some(stream))
            .collect()
    }

    /// The strictest QoS demanded by any application bound to `stream`:
    /// componentwise minimum of `T_Dᵁ` and `T_Mᵁ`, maximum of `T_MRᵁ`
    /// (shorter detection/mistake-duration bounds and longer
    /// mistake-recurrence bounds are all *harder* to satisfy). `None`
    /// when no application is bound to the stream.
    pub fn strictest_qos_for_stream(&self, stream: u64) -> Option<QosSpec> {
        self.apps_on_stream(stream)
            .into_iter()
            .map(|a| a.qos)
            .reduce(|acc, q| QosSpec {
                detection_time: acc.detection_time.min(q.detection_time),
                mistake_recurrence: acc.mistake_recurrence.max(q.mistake_recurrence),
                mistake_duration: acc.mistake_duration.min(q.mistake_duration),
            })
    }

    /// The [`DetectorConfig`](twofd_core::DetectorConfig) a shard should
    /// run for `stream`: the given algorithm `spec` at the `(Δi, Δto)`
    /// that Chen's configuration procedure derives from the strictest QoS
    /// any bound application demands under network behaviour `net`.
    ///
    /// `None` when no application is bound to the stream;
    /// `Some(Err(_))` when the strictest requirement is infeasible under
    /// `net` (Eq. 16 has no solution).
    pub fn detector_config_for_stream(
        &self,
        stream: u64,
        net: &twofd_core::NetworkBehavior,
        spec: &twofd_core::DetectorSpec,
    ) -> Option<Result<twofd_core::DetectorConfig, twofd_core::ConfigError>> {
        let qos = self.strictest_qos_for_stream(stream)?;
        Some(
            twofd_core::configure(&qos, net)
                .map(|fd_config| twofd_core::DetectorConfig::from_qos(spec.clone(), &fd_config)),
        )
    }

    /// Removes an application; returns whether it existed.
    pub fn deregister(&mut self, id: AppId) -> bool {
        let before = self.apps.len();
        self.apps.retain(|a| a.id != id);
        self.apps.len() != before
    }

    /// Looks up an application.
    pub fn get(&self, id: AppId) -> Option<&AppRequirement> {
        self.apps.iter().find(|a| a.id == id)
    }

    /// All registered applications, in registration order.
    pub fn apps(&self) -> &[AppRequirement] {
        &self.apps
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(td: f64) -> QosSpec {
        QosSpec::new(td, 3600.0, 1.0)
    }

    #[test]
    fn register_assigns_unique_ids() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        let b = r.register("b", spec(2.0));
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().name, "a");
        assert_eq!(r.get(b).unwrap().qos.detection_time, 2.0);
    }

    #[test]
    fn deregister_removes() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        assert!(r.deregister(a));
        assert!(!r.deregister(a));
        assert!(r.is_empty());
        assert_eq!(r.get(a), None);
    }

    #[test]
    fn ids_are_not_reused_after_deregistration() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        r.deregister(a);
        let b = r.register("b", spec(1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn stream_binding_round_trips() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        assert_eq!(r.stream_of(a), None);
        assert!(r.bind_stream(a, 7));
        assert_eq!(r.stream_of(a), Some(7));
        // Re-binding moves the app to the new stream.
        assert!(r.bind_stream(a, 8));
        assert_eq!(r.stream_of(a), Some(8));
        assert!(r.apps_on_stream(7).is_empty());
        // Unknown app ids are reported, not silently ignored.
        assert!(!r.bind_stream(AppId(999), 1));
    }

    #[test]
    fn apps_on_stream_filters_and_preserves_order() {
        let mut r = AppRegistry::new();
        let a = r.register_on_stream("a", spec(1.0), 5);
        let _b = r.register_on_stream("b", spec(2.0), 6);
        let c = r.register_on_stream("c", spec(3.0), 5);
        let on5: Vec<_> = r.apps_on_stream(5).iter().map(|x| x.id).collect();
        assert_eq!(on5, vec![a, c]);
    }

    #[test]
    fn strictest_qos_takes_hardest_component_bounds() {
        let mut r = AppRegistry::new();
        r.register_on_stream("fast-detect", QosSpec::new(0.5, 600.0, 2.0), 1);
        r.register_on_stream("rare-mistakes", QosSpec::new(4.0, 86_400.0, 0.3), 1);
        let q = r.strictest_qos_for_stream(1).unwrap();
        assert_eq!(q.detection_time, 0.5);
        assert_eq!(q.mistake_recurrence, 86_400.0);
        assert_eq!(q.mistake_duration, 0.3);
        assert_eq!(r.strictest_qos_for_stream(2), None);
    }

    #[test]
    fn detector_config_for_stream_follows_strictest_qos() {
        use twofd_core::{DetectorSpec, NetworkBehavior};
        let mut r = AppRegistry::new();
        r.register_on_stream("lax", QosSpec::new(4.0, 600.0, 2.0), 1);
        r.register_on_stream("strict", QosSpec::new(0.5, 3600.0, 0.5), 1);
        let net = NetworkBehavior::new(0.01, 0.02 * 0.02);
        let spec = DetectorSpec::default();

        let config = r
            .detector_config_for_stream(1, &net, &spec)
            .expect("stream 1 has apps")
            .expect("feasible requirement");
        assert_eq!(config.spec, spec);
        // The derived interval must fit inside the strictest detection
        // budget (Δi ≤ T_D by Eq. 14/15), not the lax app's.
        assert!(config.interval.as_secs_f64() <= 0.5);
        assert!(config.tuning >= 0.0);

        assert!(r.detector_config_for_stream(2, &net, &spec).is_none());
    }

    #[test]
    fn apps_keep_registration_order() {
        let mut r = AppRegistry::new();
        r.register("first", spec(1.0));
        r.register("second", spec(2.0));
        let names: Vec<_> = r.apps().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
