//! Application registry for the shared failure-detection service.
//!
//! Section V of the paper considers `n` applications (or VMs) on one
//! physical host, each with its own QoS requirement tuple, all monitoring
//! the same remote host through a single shared heartbeat stream.
//! [`AppRegistry`] holds the applications and their requirements.

use serde::{Deserialize, Serialize};
use twofd_core::QosSpec;

/// Identifier of a registered application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub u32);

/// A registered application with its QoS requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequirement {
    /// Stable identifier.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// The application's QoS tuple `(T_Dᵁ, T_MRᵁ, T_Mᵁ)`.
    pub qos: QosSpec,
}

/// The set of applications sharing one failure-detection service.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AppRegistry {
    apps: Vec<AppRequirement>,
    next_id: u32,
}

impl AppRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application, returning its id.
    pub fn register(&mut self, name: impl Into<String>, qos: QosSpec) -> AppId {
        let id = AppId(self.next_id);
        self.next_id += 1;
        self.apps.push(AppRequirement {
            id,
            name: name.into(),
            qos,
        });
        id
    }

    /// Removes an application; returns whether it existed.
    pub fn deregister(&mut self, id: AppId) -> bool {
        let before = self.apps.len();
        self.apps.retain(|a| a.id != id);
        self.apps.len() != before
    }

    /// Looks up an application.
    pub fn get(&self, id: AppId) -> Option<&AppRequirement> {
        self.apps.iter().find(|a| a.id == id)
    }

    /// All registered applications, in registration order.
    pub fn apps(&self) -> &[AppRequirement] {
        &self.apps
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(td: f64) -> QosSpec {
        QosSpec::new(td, 3600.0, 1.0)
    }

    #[test]
    fn register_assigns_unique_ids() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        let b = r.register("b", spec(2.0));
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().name, "a");
        assert_eq!(r.get(b).unwrap().qos.detection_time, 2.0);
    }

    #[test]
    fn deregister_removes() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        assert!(r.deregister(a));
        assert!(!r.deregister(a));
        assert!(r.is_empty());
        assert_eq!(r.get(a), None);
    }

    #[test]
    fn ids_are_not_reused_after_deregistration() {
        let mut r = AppRegistry::new();
        let a = r.register("a", spec(1.0));
        r.deregister(a);
        let b = r.register("b", spec(1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn apps_keep_registration_order() {
        let mut r = AppRegistry::new();
        r.register("first", spec(1.0));
        r.register("second", spec(2.0));
        let names: Vec<_> = r.apps().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
