//! Adaptive reconfiguration of the shared service.
//!
//! §V-A of the paper: "it is possible to run the configuration procedure
//! periodically in order to make the algorithm adaptive to changes in
//! the probabilistic behavior of the network." This module closes that
//! loop in a discrete-event simulation:
//!
//! * the monitored host sends heartbeats at the service's current
//!   `Δi_min`;
//! * the monitor estimates `(pL, V(D))` online from the stream
//!   (§V-A.1);
//! * every `reconfig_period`, the service re-runs the combination
//!   procedure (Steps 1–4) with the fresh estimates, adopts the new
//!   shared interval, and re-derives every application's margin.
//!
//! The simulation driver lets tests inject a network-regime change and
//! assert that the service converges to a configuration suited to the
//! new conditions — the paper's adaptivity claim, made executable.

use crate::combine::{combine, CombineError, SharedConfig};
use crate::registry::AppRegistry;
use crate::shared::SharedServiceDetector;
use serde::{Deserialize, Serialize};
use twofd_core::{DetectorSpec, NetworkEstimator};
use twofd_sim::delay::{DelayModel, DelaySpec};
use twofd_sim::event::EventQueue;
use twofd_sim::loss::{LossModel, LossSpec};
use twofd_sim::rng::SimRng;
use twofd_sim::time::{Nanos, Span};

/// One adopted configuration, with the estimates that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigRecord {
    /// When the configuration was adopted.
    pub at: Nanos,
    /// The shared heartbeat interval adopted.
    pub interval: Span,
    /// Loss estimate `pL` at reconfiguration time.
    pub loss_estimate: f64,
    /// Delay-variance estimate `V(D)` at reconfiguration time (s²).
    pub delay_var_estimate: f64,
}

/// Outcome of an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRunReport {
    /// Every configuration adopted, in order (the initial one first).
    pub reconfigurations: Vec<ReconfigRecord>,
    /// Heartbeats emitted by the monitored host.
    pub sent: u64,
    /// Heartbeats delivered to the monitor.
    pub delivered: u64,
}

impl AdaptiveRunReport {
    /// The interval in force at the end of the run.
    pub fn final_interval(&self) -> Span {
        self.reconfigurations
            .last()
            .map(|r| r.interval)
            .expect("at least the initial configuration")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Send,
    Deliver { seq: u64, send: Nanos },
    Reconfigure,
}

/// Discrete-event simulation of a self-reconfiguring shared service.
pub struct AdaptiveServiceSim {
    registry: AppRegistry,
    /// Algorithm every application's detector is built from (via the
    /// workspace-wide `DetectorSpec` path).
    spec: DetectorSpec,
    reconfig_period: Span,
    queue: EventQueue<Event>,
    rng: SimRng,
    delay: Box<dyn DelayModel + Send>,
    loss: Box<dyn LossModel + Send>,
    estimator: NetworkEstimator,
    current: SharedConfig,
    next_seq: u64,
    sent: u64,
    delivered: u64,
    report: AdaptiveRunReport,
    started: bool,
}

impl AdaptiveServiceSim {
    /// Creates the simulation.
    ///
    /// `initial_guess` seeds the very first configuration before any
    /// heartbeat has been observed (a deployment would use provisioning
    /// defaults). Returns an error if any application's tuple is
    /// unachievable under the guess.
    pub fn new(
        registry: AppRegistry,
        initial_guess: twofd_core::NetworkBehavior,
        reconfig_period: Span,
        delay: DelaySpec,
        loss: LossSpec,
        seed: u64,
    ) -> Result<Self, CombineError> {
        assert!(
            !reconfig_period.is_zero(),
            "reconfig period must be positive"
        );
        let current = combine(&registry, &initial_guess)?;
        let initial = ReconfigRecord {
            at: Nanos::ZERO,
            interval: current.interval,
            loss_estimate: initial_guess.loss_prob,
            delay_var_estimate: initial_guess.delay_var,
        };
        Ok(AdaptiveServiceSim {
            registry,
            spec: DetectorSpec::default(),
            reconfig_period,
            queue: EventQueue::new(),
            rng: SimRng::seed_from_u64(seed),
            delay: delay.build(),
            loss: loss.build(),
            estimator: NetworkEstimator::new(2_000),
            current,
            next_seq: 0,
            sent: 0,
            delivered: 0,
            report: AdaptiveRunReport {
                reconfigurations: vec![initial],
                sent: 0,
                delivered: 0,
            },
            started: false,
        })
    }

    /// Swaps the network models — a regime change. Takes effect for all
    /// heartbeats sent after the call.
    pub fn set_network(&mut self, delay: DelaySpec, loss: LossSpec) {
        self.delay = delay.build();
        self.loss = loss.build();
    }

    /// Replaces the detector algorithm (default: the paper's
    /// `2w-fd(1,1000)`). Affects detectors built *after* the call.
    pub fn with_spec(mut self, spec: DetectorSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The configuration currently in force.
    pub fn current_config(&self) -> &SharedConfig {
        &self.current
    }

    /// Builds the per-application shared detector bank for the
    /// configuration currently in force — what the monitoring host would
    /// deploy after adopting it.
    pub fn shared_detector(&self) -> SharedServiceDetector {
        SharedServiceDetector::new(&self.current, &self.spec)
    }

    /// Runs the simulation until simulated time `until`, returning the
    /// cumulative report. May be called repeatedly with increasing
    /// horizons (e.g. to change the network between runs).
    pub fn run_until(&mut self, until: Nanos) -> AdaptiveRunReport {
        if !self.started {
            self.started = true;
            let first_send = self.queue.now() + self.current.interval;
            self.queue.schedule(first_send, Event::Send);
            self.queue
                .schedule(self.queue.now() + self.reconfig_period, Event::Reconfigure);
        }
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            match event {
                Event::Send => {
                    self.next_seq += 1;
                    self.sent += 1;
                    let seq = self.next_seq;
                    if !self.loss.is_lost(&mut self.rng, now) {
                        let arrival = now + self.delay.delay(&mut self.rng, now);
                        self.queue
                            .schedule(arrival, Event::Deliver { seq, send: now });
                    }
                    self.queue
                        .schedule(now + self.current.interval, Event::Send);
                }
                Event::Deliver { seq, send } => {
                    self.delivered += 1;
                    self.estimator.observe(seq, send, now);
                }
                Event::Reconfigure => {
                    self.reconfigure(now);
                    self.queue
                        .schedule(now + self.reconfig_period, Event::Reconfigure);
                }
            }
        }
        self.report.sent = self.sent;
        self.report.delivered = self.delivered;
        self.report.clone()
    }

    fn reconfigure(&mut self, now: Nanos) {
        // Before enough observations the estimates are meaningless;
        // skip (the initial guess stays in force).
        if self.estimator.observed() < 100 {
            return;
        }
        let behavior = self.estimator.behavior();
        match combine(&self.registry, &behavior) {
            Ok(config) => {
                if config.interval != self.current.interval {
                    self.report.reconfigurations.push(ReconfigRecord {
                        at: now,
                        interval: config.interval,
                        loss_estimate: behavior.loss_prob,
                        delay_var_estimate: behavior.delay_var,
                    });
                }
                self.current = config;
            }
            Err(_) => {
                // Conditions too hostile for some tuple: keep the last
                // viable configuration rather than stopping heartbeats.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_core::{NetworkBehavior, QosSpec};
    use twofd_sim::rng::DistSpec;

    fn registry() -> AppRegistry {
        let mut r = AppRegistry::new();
        r.register("a", QosSpec::new(1.0, 3600.0, 1.0));
        r.register("b", QosSpec::new(4.0, 600.0, 2.0));
        r
    }

    fn quiet_delay() -> DelaySpec {
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.02,
                std_dev: 0.004,
            },
            floor_nanos: 100_000,
        }
    }

    fn noisy_delay() -> DelaySpec {
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.08,
                std_dev: 0.05,
            },
            floor_nanos: 100_000,
        }
    }

    fn sim(seed: u64) -> AdaptiveServiceSim {
        AdaptiveServiceSim::new(
            registry(),
            NetworkBehavior::new(0.05, 0.001), // deliberately poor guess
            Span::from_secs(30),
            quiet_delay(),
            LossSpec::Bernoulli { p: 0.002 },
            seed,
        )
        .unwrap()
    }

    #[test]
    fn estimates_replace_the_initial_guess() {
        let mut s = sim(1);
        let report = s.run_until(Nanos::from_secs(300));
        assert!(report.reconfigurations.len() >= 2, "never reconfigured");
        let last = report.reconfigurations.last().unwrap();
        // The measured network is far better than the guess…
        assert!(last.loss_estimate < 0.02, "pL {}", last.loss_estimate);
        assert!(last.delay_var_estimate < 0.001);
        // …so the adopted interval is larger (fewer heartbeats needed).
        assert!(
            report.final_interval() > report.reconfigurations[0].interval,
            "{:?}",
            report.reconfigurations
        );
    }

    #[test]
    fn regime_change_tightens_the_configuration() {
        let mut s = sim(2);
        s.run_until(Nanos::from_secs(300));
        let calm_interval = s.current_config().interval;

        // The network degrades: more loss, much more delay variance.
        s.set_network(noisy_delay(), LossSpec::Bernoulli { p: 0.08 });
        let report = s.run_until(Nanos::from_secs(900));
        let stressed_interval = report.final_interval();
        assert!(
            stressed_interval < calm_interval,
            "interval did not tighten: calm {calm_interval}, stressed {stressed_interval}"
        );
        let last = report.reconfigurations.last().unwrap();
        assert!(last.loss_estimate > 0.03, "pL {}", last.loss_estimate);
    }

    #[test]
    fn heartbeats_flow_continuously() {
        let mut s = sim(3);
        let report = s.run_until(Nanos::from_secs(120));
        assert!(report.sent > 100);
        // ~0.2% loss: nearly everything arrives.
        assert!(report.delivered as f64 > 0.98 * report.sent as f64);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let a = sim(7).run_until(Nanos::from_secs(200));
        let b = sim(7).run_until(Nanos::from_secs(200));
        assert_eq!(a, b);
        let c = sim(8).run_until(Nanos::from_secs(200));
        assert!(a.sent != c.sent || a.reconfigurations != c.reconfigurations);
    }

    #[test]
    fn incremental_runs_match_a_single_run() {
        let mut split = sim(9);
        split.run_until(Nanos::from_secs(100));
        let split_report = split.run_until(Nanos::from_secs(200));
        let whole_report = sim(9).run_until(Nanos::from_secs(200));
        assert_eq!(split_report, whole_report);
    }

    #[test]
    fn hostile_conditions_keep_last_viable_config() {
        let mut s = sim(10);
        s.run_until(Nanos::from_secs(200));
        // Catastrophic loss: most tuples become unachievable; the
        // service must keep heartbeating with the old parameters.
        s.set_network(noisy_delay(), LossSpec::Bernoulli { p: 0.95 });
        let before = s.current_config().interval;
        let report = s.run_until(Nanos::from_secs(600));
        assert!(report.sent > 0);
        // Interval still positive and sane.
        assert!(s.current_config().interval <= before.saturating_mul(4));
        assert!(!s.current_config().interval.is_zero());
    }

    #[test]
    fn shared_detector_tracks_the_current_config() {
        use twofd_sim::time::Nanos as N;
        let mut s = sim(11).with_spec(DetectorSpec::Chen { window: 200 });
        s.run_until(N::from_secs(300));
        let mut svc = s.shared_detector();
        assert_eq!(svc.len(), 2);
        assert_eq!(svc.interval(), s.current_config().interval);
        // The bank is live: heartbeats at the adopted interval establish
        // trust for every application.
        let di = svc.interval();
        for seq in 1..=3u64 {
            svc.on_heartbeat(seq, N(seq * di.0) + Span::from_millis(2));
        }
        let outs = svc.outputs_at(N(3 * di.0) + Span::from_millis(3));
        assert!(outs.iter().all(|(_, o)| *o == twofd_core::FdOutput::Trust));
    }

    #[test]
    #[should_panic(expected = "reconfig period must be positive")]
    fn zero_period_rejected() {
        let _ = AdaptiveServiceSim::new(
            registry(),
            NetworkBehavior::new(0.01, 0.0001),
            Span::ZERO,
            quiet_delay(),
            LossSpec::None,
            0,
        );
    }
}
