//! The shared-stream multi-application detector (§V-C Step 4).
//!
//! The service consumes the single heartbeat stream (interval `Δi_min`)
//! and runs, per application, a freshness-point detector parametrized
//! with that application's own margin `Δto_j' = T_D,j − Δi_min`. Each
//! application queries its own view; a crash of the remote host is
//! reported to each application within its own detection-time bound.

use crate::combine::SharedConfig;
use crate::registry::AppId;
use twofd_core::{AnyDetector, Decision, DetectorConfig, DetectorSpec, FailureDetector, FdOutput};
use twofd_obs::{Counter, Registry};
use twofd_sim::time::{Nanos, Span};

/// Per-application freshness-point counters, attached by
/// [`SharedServiceDetector::instrument`].
struct AppObs {
    /// Fresh heartbeat whose freshness point lies in the future: the
    /// heartbeat bought this application a Trust period.
    hit: Counter,
    /// Fresh heartbeat that arrived after its own freshness point: the
    /// application's margin was already spent in transit.
    miss: Counter,
    /// Stale (duplicate/reordered) heartbeat, ignored by the detector.
    stale: Counter,
}

/// One application's live detector inside the service.
struct AppDetector {
    id: AppId,
    /// Inline spec-built detector: the service has no private
    /// construction path — everything goes through [`DetectorSpec`].
    fd: AnyDetector,
    obs: Option<AppObs>,
}

/// The shared failure-detection service endpoint on the monitoring host.
///
/// Feed it every heartbeat of the shared stream; query any application's
/// output at any instant.
pub struct SharedServiceDetector {
    apps: Vec<AppDetector>,
    interval: Span,
}

impl SharedServiceDetector {
    /// Builds the per-application detectors from a combined
    /// configuration: each application runs `spec` (any algorithm of the
    /// paper's suite) at the shared interval with its own margin
    /// `Δto_j' = T_D,j − Δi_min`.
    pub fn new(config: &SharedConfig, spec: &DetectorSpec) -> Self {
        let apps = config
            .shares
            .iter()
            .map(|share| AppDetector {
                id: share.id,
                fd: DetectorConfig::new(
                    spec.clone(),
                    config.interval,
                    share.shared_margin.as_secs_f64(),
                )
                .build(),
                obs: None,
            })
            .collect();
        SharedServiceDetector {
            apps,
            interval: config.interval,
        }
    }

    /// Attaches per-application freshness-point counters to `registry`
    /// as `twofd_service_freshness_total{app,result}` with `result` one
    /// of `hit` (the heartbeat bought a Trust period), `miss` (fresh but
    /// arrived past its own freshness point — the margin was spent in
    /// transit) and `stale` (ignored by the detector). A persistent miss
    /// imbalance on one app is the live signature of an under-provisioned
    /// `T_D` budget for that app.
    pub fn instrument(&mut self, registry: &Registry) {
        let families = registry.counter_vec(
            "twofd_service_freshness_total",
            "Per-application freshness-point outcomes of shared-stream heartbeats",
            &["app", "result"],
        );
        for app in &mut self.apps {
            let label = app.id.0.to_string();
            app.obs = Some(AppObs {
                hit: families.with(&[&label, "hit"]),
                miss: families.with(&[&label, "miss"]),
                stale: families.with(&[&label, "stale"]),
            });
        }
    }

    /// Feeds one shared-stream heartbeat to every application's detector.
    /// Returns the per-application decisions (None entries for stale
    /// deliveries).
    pub fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Vec<(AppId, Option<Decision>)> {
        self.apps
            .iter_mut()
            .map(|a| {
                let decision = a.fd.on_heartbeat(seq, arrival);
                if let Some(obs) = &a.obs {
                    match decision {
                        Some(d) if d.trust_until > arrival => obs.hit.inc(),
                        Some(_) => obs.miss.inc(),
                        None => obs.stale.inc(),
                    }
                }
                (a.id, decision)
            })
            .collect()
    }

    /// The output the service reports to application `id` at time `t`.
    pub fn output_for(&self, id: AppId, t: Nanos) -> Option<FdOutput> {
        self.apps
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.fd.output_at(t))
    }

    /// Outputs for every application at time `t`.
    pub fn outputs_at(&self, t: Nanos) -> Vec<(AppId, FdOutput)> {
        self.apps
            .iter()
            .map(|a| (a.id, a.fd.output_at(t)))
            .collect()
    }

    /// The shared heartbeat interval.
    pub fn interval(&self) -> Span {
        self.interval
    }

    /// Number of applications served.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no application is served.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine;
    use crate::registry::AppRegistry;
    use twofd_core::{NetworkBehavior, QosSpec};

    fn service(spec: &DetectorSpec) -> (SharedServiceDetector, Vec<AppId>, SharedConfig) {
        let mut r = AppRegistry::new();
        let strict = r.register("strict", QosSpec::new(0.4, 86_400.0, 0.5));
        let lax = r.register("lax", QosSpec::new(3.0, 600.0, 2.0));
        let net = NetworkBehavior::new(0.01, 0.02 * 0.02);
        let cfg = combine(&r, &net).unwrap();
        (
            SharedServiceDetector::new(&cfg, spec),
            vec![strict, lax],
            cfg,
        )
    }

    #[test]
    fn all_apps_trust_after_fresh_heartbeat() {
        let (mut svc, ids, cfg) = service(&DetectorSpec::default());
        let di = cfg.interval;
        for seq in 1..=5u64 {
            svc.on_heartbeat(seq, Nanos(seq * di.0) + Span::from_millis(5));
        }
        let now = Nanos(5 * di.0) + Span::from_millis(6);
        for id in &ids {
            assert_eq!(svc.output_for(*id, now), Some(FdOutput::Trust));
        }
    }

    #[test]
    fn strict_app_suspects_before_lax_app() {
        let (mut svc, ids, cfg) = service(&DetectorSpec::default());
        let di = cfg.interval;
        for seq in 1..=5u64 {
            svc.on_heartbeat(seq, Nanos(seq * di.0) + Span::from_millis(5));
        }
        // Long silence after heartbeat 5.
        let last = Nanos(5 * di.0) + Span::from_millis(5);
        let strict_deadline = last + Span::from_secs_f64(0.4);
        let lax_deadline = last + Span::from_secs_f64(3.0);
        // Shortly after the strict app's budget: strict suspects, lax trusts.
        let t1 = strict_deadline + Span::from_millis(50);
        assert_eq!(svc.output_for(ids[0], t1), Some(FdOutput::Suspect));
        assert_eq!(svc.output_for(ids[1], t1), Some(FdOutput::Trust));
        // Past the lax budget: both suspect.
        let t2 = lax_deadline + Span::from_millis(50);
        assert_eq!(svc.output_for(ids[1], t2), Some(FdOutput::Suspect));
    }

    #[test]
    fn detection_happens_within_each_apps_budget() {
        // The freshness point after the last heartbeat must fall within
        // send-time + T_D for each app (that is what "budget preserved"
        // means operationally).
        let (mut svc, ids, cfg) = service(&DetectorSpec::default());
        let di = cfg.interval;
        let mut decisions = Vec::new();
        for seq in 1..=20u64 {
            decisions = svc.on_heartbeat(seq, Nanos(seq * di.0) + Span::from_millis(5));
        }
        let last_send = Nanos(20 * di.0);
        let budgets = [0.4, 3.0];
        for ((id, d), budget) in decisions.iter().zip(budgets) {
            let d = d.expect("fresh");
            let td = d.trust_until.saturating_since(last_send).as_secs_f64();
            // Within budget plus the observed delay slack (5 ms + estimator noise).
            assert!(
                td <= budget + 0.05,
                "app {id:?}: implied detection {td} vs budget {budget}"
            );
        }
        let _ = ids;
    }

    #[test]
    fn stale_heartbeats_are_stale_for_every_app() {
        let (mut svc, _, cfg) = service(&DetectorSpec::Chen { window: 10 });
        let di = cfg.interval;
        svc.on_heartbeat(5, Nanos(5 * di.0));
        let results = svc.on_heartbeat(4, Nanos(5 * di.0) + Span::from_millis(1));
        assert!(results.iter().all(|(_, d)| d.is_none()));
    }

    #[test]
    fn outputs_at_reports_all_apps() {
        let (mut svc, _, cfg) = service(&DetectorSpec::default());
        svc.on_heartbeat(1, Nanos(cfg.interval.0));
        let outs = svc.outputs_at(Nanos(cfg.interval.0) + Span::from_millis(1));
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn unknown_app_returns_none() {
        let (svc, _, _) = service(&DetectorSpec::default());
        assert_eq!(svc.output_for(AppId(404), Nanos::ZERO), None);
    }

    #[test]
    fn instrument_counts_freshness_hits_misses_and_stales() {
        // Chen averages its arrival estimate over a window, so a wildly
        // late heartbeat arrives past its own freshness point (a miss);
        // 2W-FD's width-1 window would adapt instantly and never miss.
        let (mut svc, _, cfg) = service(&DetectorSpec::Chen { window: 10 });
        let registry = Registry::new();
        svc.instrument(&registry);
        let di = cfg.interval;
        // On-time heartbeats: every app scores hits.
        for seq in 1..=5u64 {
            svc.on_heartbeat(seq, Nanos(seq * di.0) + Span::from_millis(5));
        }
        // A duplicate: every app scores a stale.
        svc.on_heartbeat(5, Nanos(5 * di.0) + Span::from_millis(6));
        // A heartbeat arriving hours late: fresh (higher seq) but past
        // its own freshness point for every app — a miss.
        svc.on_heartbeat(6, Nanos(6 * di.0) + Span::from_secs(3600));
        let text = registry.render();
        for (id, _) in svc.outputs_at(Nanos::ZERO) {
            let app = id.0;
            assert!(
                text.contains(&format!(
                    "twofd_service_freshness_total{{app=\"{app}\",result=\"hit\"}} 5"
                )),
                "{text}"
            );
            assert!(text.contains(&format!(
                "twofd_service_freshness_total{{app=\"{app}\",result=\"stale\"}} 1"
            )));
            assert!(text.contains(&format!(
                "twofd_service_freshness_total{{app=\"{app}\",result=\"miss\"}} 1"
            )));
        }
    }

    #[test]
    fn every_suite_algorithm_works_in_the_service() {
        for spec in [
            DetectorSpec::Chen { window: 100 },
            DetectorSpec::Bertier { window: 100 },
            DetectorSpec::Phi { window: 100 },
            DetectorSpec::Ed { window: 100 },
            DetectorSpec::TwoWindow { n1: 1, n2: 100 },
        ] {
            let (mut svc, ids, cfg) = service(&spec);
            for seq in 1..=3u64 {
                svc.on_heartbeat(seq, Nanos(seq * cfg.interval.0) + Span::from_millis(2));
            }
            let now = Nanos(3 * cfg.interval.0) + Span::from_millis(3);
            assert_eq!(svc.output_for(ids[0], now), Some(FdOutput::Trust));
        }
    }
}
