//! # twofd-service — failure detection as a shared service
//!
//! Section V of the paper: multiple applications (or VMs) on one host,
//! each with its own QoS tuple, served by a **single** heartbeat stream.
//!
//! * [`registry`] — applications and their `(T_Dᵁ, T_MRᵁ, T_Mᵁ)` tuples.
//! * [`combine()`](combine::combine) — Steps 1–4: per-app Chen configuration, shared
//!   `Δi_min`, per-app widened margins `Δto_j' = T_D,j − Δi_min`.
//! * [`shared`] — the live multi-application detector endpoint.
//! * [`accounting`] — network load: shared stream vs. one per app.
//! * [`analysis`] — empirical shared-vs-dedicated QoS comparison (the
//!   paper's proposed future-work experiment, implemented here).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod adaptive;
pub mod analysis;
pub mod combine;
pub mod registry;
pub mod shared;

pub use accounting::{load_report, LoadReport};
pub use adaptive::{AdaptiveRunReport, AdaptiveServiceSim, ReconfigRecord};
pub use analysis::{analyze, AppQosComparison, ServiceAnalysis};
pub use combine::{combine, AppShare, CombineError, SharedConfig};
pub use registry::{AppId, AppRegistry, AppRequirement};
pub use shared::SharedServiceDetector;
