//! The discrete-event cluster scheduler.
//!
//! [`run`] executes a [`ClusterConfig`] — N simulated senders beaming
//! heartbeats over scripted [`LinkSpec`] links at M monitor nodes — in
//! **virtual time**, against the *real* production runtime: each
//! monitor is a live [`ShardRuntime`] with its worker threads, queues,
//! timing wheels and QoS trackers, driven through a
//! [`twofd_net::clock::ManualClock`] instead of the OS clock.
//!
//! ## The determinism protocol
//!
//! The scheduler owns one global [`EventQueue`]; beats and deliveries
//! pop in timestamp order (stable on ties). Per monitor, deliveries
//! accumulate into a batch buffer and flush as:
//!
//! 1. [`ShardRuntime::ingest_batch`] with every arrival `≤ T`,
//! 2. *then* `clock.advance_to(T)` (the last arrival's local time).
//!
//! Enqueue-before-advance means a worker can never sweep a horizon
//! that a queued heartbeat extends, so the published transition
//! timeline is a pure function of the schedule — worker scheduling
//! jitter cannot change it (`tests/shard_equivalence.rs` pins the same
//! property for the runtime itself). A [`ShardRuntime::flush`] barrier
//! every few batches bounds in-flight work below the queue capacity,
//! keeping the drop-oldest backpressure path — whose victims *would*
//! be timing-dependent — unreachable.
//!
//! At the horizon the scheduler flushes, advances each monitor to its
//! local end-of-run instant, and calls [`ShardRuntime::sweep_now`] to
//! retire every pending expiry synchronously. The drained timeline is
//! then canonicalized by `(at, key)` — a total order, since one stream
//! cannot transition twice at one instant — so two runs with the same
//! seed produce byte-identical reports.

use crate::node::NodeClock;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use twofd_core::{DetectorConfig, FdOutput, QosMetrics, TransitionKind};
use twofd_federation::{Federation, FederationConfig, LivenessDigest};
use twofd_net::clock::{ManualClock, TimeSource};
use twofd_net::shard::{FleetEvent, Job, ObsOptions, ShardConfig, ShardRuntime};
use twofd_obs::{QosPlan, QosTrackerConfig, QosVerdict, Registry};
use twofd_sim::link::LinkSpec;
use twofd_sim::rng::SimRng;
use twofd_sim::time::{Nanos, Span};
use twofd_sim::EventQueue;

/// Deliveries buffered per monitor before a batch flush.
const FLUSH_BATCH: usize = 256;

/// Batch flushes between [`ShardRuntime::flush`] barriers. The barrier
/// bounds in-flight heartbeats to `BARRIER_EVERY × FLUSH_BATCH`, far
/// below the per-shard queue capacity, so drop-oldest backpressure —
/// whose victims depend on worker timing — can never engage.
const BARRIER_EVERY: usize = 32;

/// Per-shard queue capacity; must exceed `BARRIER_EVERY × FLUSH_BATCH`
/// (see above) even if every in-flight heartbeat routes to one shard.
const QUEUE_CAPACITY: usize = 16 * 1024;

/// Transition-event channel capacity per monitor. Drained every flush;
/// sized so a burst of transitions between drains cannot overflow
/// (overflow would drop a timing-dependent subset and break replay —
/// [`MonitorReport::events_dropped`] is asserted zero by envelopes).
const EVENT_CAPACITY: usize = 64 * 1024;

/// One monitor node: a real [`ShardRuntime`] plus its virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSpec {
    /// The node's local clock (arrivals are stamped in *its* time).
    pub clock: NodeClock,
    /// Worker shards of this monitor's runtime.
    pub n_shards: usize,
    /// Global instant this *monitor* crashes: it stops ingesting,
    /// digesting and relaying, and its report freezes at the kill
    /// (final outputs and QoS are read at the kill's local instant).
    pub kill: Option<Nanos>,
}

impl Default for MonitorSpec {
    fn default() -> Self {
        MonitorSpec {
            clock: NodeClock::aligned(),
            n_shards: 4,
            kill: None,
        }
    }
}

/// One simulated sender: a stream id, its own clock (which fixes both
/// its join time and its beat cadence), an optional crash instant, and
/// one directed [`LinkSpec`] per monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct SenderSpec {
    /// Stream id carried by this sender's heartbeats.
    pub stream: u64,
    /// The sender's clock; `clock.start` is its join time and beat `i`
    /// is due at *local* `i·Δi`.
    pub clock: NodeClock,
    /// Global instant the process crashes (no beat at or after this).
    pub stop: Option<Nanos>,
    /// Global instant the crashed process reboots (requires `stop`, and
    /// must be later). The restarted process bumps its incarnation,
    /// restarts its sequence numbers from 1 and re-anchors its beat
    /// cadence at the reboot — the crash-recovery model.
    pub restart: Option<Nanos>,
    /// Directed links to each monitor, indexed like
    /// [`ClusterConfig::monitors`].
    pub links: Vec<LinkSpec>,
}

/// Federation tier of a simulated cluster: every monitor periodically
/// digests its per-stream liveness view to every other monitor; digest
/// arrivals drive per-peer detectors (monitors monitoring monitors),
/// and a dead monitor's last view is adopted by each survivor so
/// detection of its streams continues across the crash.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationPlan {
    /// Digest cadence, on the global scheduler grid.
    pub digest_interval: Span,
    /// Fixed monitor-to-monitor relay delay (digests ride a dedicated
    /// deterministic control channel, not the lossy heartbeat links).
    pub relay_delay: Span,
    /// Detector recipe for the per-peer digest detectors; its interval
    /// should match `digest_interval`.
    pub peer_detector: DetectorConfig,
}

/// A complete simulated cluster: the fleet, the monitors, the detector
/// recipe and the QoS contract under test.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Scenario name (carried into the report).
    pub name: String,
    /// Heartbeat inter-send interval `Δi` (in sender-local time).
    pub interval: Span,
    /// Global run length; beats and deliveries beyond it do not happen.
    pub duration: Span,
    /// Detector recipe every monitor applies to every stream.
    pub detector: DetectorConfig,
    /// QoS tracker (and optional contracted bound) attached to every
    /// stream on every monitor; `None` runs without QoS tracking.
    pub qos: Option<QosTrackerConfig>,
    /// The monitor nodes.
    pub monitors: Vec<MonitorSpec>,
    /// The fleet; every sender needs one link per monitor.
    pub senders: Vec<SenderSpec>,
    /// Digest-relay federation between the monitors; `None` runs each
    /// monitor standalone (exactly the pre-federation behaviour —
    /// `tests/cluster_scenarios.rs` pins the equivalence).
    pub federation: Option<FederationPlan>,
}

/// What one monitor observed over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReport {
    /// Every published Trust/Suspect transition, canonicalized by
    /// `(at, key)` — the deterministic replay timeline.
    pub timeline: Vec<FleetEvent>,
    /// Final detector output per stream (sorted by stream id), read at
    /// the monitor's local end-of-run instant.
    pub final_outputs: Vec<(u64, FdOutput)>,
    /// Per-stream QoS estimates and verdicts at end of run (sorted by
    /// stream id; empty when [`ClusterConfig::qos`] is `None`).
    pub qos: Vec<(u64, QosMetrics, QosVerdict)>,
    /// Heartbeats delivered to (and ingested by) this monitor.
    pub ingested: u64,
    /// Streams this monitor adopted from dead peers' relayed digest
    /// views (0 without a federation, or when no peer died).
    pub adopted: u64,
    /// Transition events lost to channel overflow — nonzero means the
    /// timeline is untrustworthy, and envelopes assert it zero.
    pub events_dropped: u64,
}

/// The full outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name, from [`ClusterConfig::name`].
    pub name: String,
    /// The seed the run was driven by.
    pub seed: u64,
    /// Heartbeats emitted across the fleet.
    pub beats_sent: u64,
    /// Heartbeat deliveries across all monitors (sent × monitors −
    /// losses − post-horizon arrivals).
    pub deliveries: u64,
    /// Discrete events processed by the scheduler (beats + deliveries);
    /// the virtual-time throughput numerator.
    pub sim_events: u64,
    /// The scripted global run length.
    pub virtual_duration: Span,
    /// Per-monitor observations, indexed like [`ClusterConfig::monitors`].
    pub monitors: Vec<MonitorReport>,
}

impl ScenarioReport {
    /// An order-stable FNV-1a digest over every timeline event, final
    /// output and QoS estimate — two runs replayed bit-identically iff
    /// their digests match (used by the determinism harness and the
    /// bench artifact).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&self.beats_sent.to_le_bytes());
        eat(&self.deliveries.to_le_bytes());
        for m in &self.monitors {
            for e in &m.timeline {
                eat(&e.key.to_le_bytes());
                eat(&[match e.kind {
                    TransitionKind::Trust => 0u8,
                    TransitionKind::Suspect => 1,
                    TransitionKind::Recovered => 2,
                }]);
                eat(&e.at.0.to_le_bytes());
            }
            for &(stream, out) in &m.final_outputs {
                eat(&stream.to_le_bytes());
                eat(&[matches!(out, FdOutput::Suspect) as u8]);
            }
            for (stream, metrics, verdict) in &m.qos {
                eat(&stream.to_le_bytes());
                eat(&metrics.detection_time.to_bits().to_le_bytes());
                eat(&metrics.mistake_rate.to_bits().to_le_bytes());
                eat(&metrics.avg_mistake_duration.to_bits().to_le_bytes());
                eat(&metrics.query_accuracy.to_bits().to_le_bytes());
                eat(&[verdict.met as u8]);
            }
        }
        h
    }

    /// Total transitions observed across all monitors.
    pub fn transitions(&self) -> usize {
        self.monitors.iter().map(|m| m.timeline.len()).sum()
    }
}

/// A scheduler event: a sender's beat deadline or reboot, a heartbeat
/// landing at a monitor, or the federation's digest cadence/relay.
enum Ev {
    Beat {
        sender: usize,
    },
    Restart {
        sender: usize,
    },
    Deliver {
        monitor: usize,
        stream: u64,
        seq: u64,
        incarnation: u32,
    },
    /// A monitor's digest tick: build + relay its liveness digest, then
    /// sweep its per-peer detectors and adopt dead peers' views.
    Digest {
        monitor: usize,
    },
    /// A relayed digest landing at a monitor.
    RelayDigest {
        monitor: usize,
        digest: LivenessDigest,
    },
}

/// Live state of one sender during the run.
struct SenderState {
    seq: u64,
    /// Boot counter carried in every heartbeat (0 until a restart).
    incarnation: u32,
    /// Local instant the current boot's cadence is anchored at: beat
    /// `i` of this boot is due at local `epoch + i·Δi`.
    epoch_local: Nanos,
    /// One `(link model, private rng)` per monitor; a forked rng per
    /// link keeps each link's random stream independent, so adding a
    /// monitor (or more draws on one link) never perturbs another.
    links: Vec<(twofd_sim::link::LinkModel, SimRng)>,
}

/// Live state of one monitor during the run.
struct MonitorState {
    rt: ShardRuntime,
    clock: Arc<ManualClock>,
    buffer: Vec<Job>,
    timeline: Vec<FleetEvent>,
    ingested: u64,
    adopted: u64,
    flushes: usize,
    fed: Option<Federation>,
}

impl MonitorState {
    /// The batch flush: ingest everything buffered, then advance the
    /// virtual clock to the last arrival (enqueue-before-advance), and
    /// drain whatever transitions the workers have published so far.
    fn flush_batch(&mut self) {
        let Some(&(_, _, last_arrival, _)) = self.buffer.last() else {
            return;
        };
        self.rt.ingest_batch(&self.buffer);
        self.ingested += self.buffer.len() as u64;
        self.buffer.clear();
        self.clock.advance_to(last_arrival);
        self.timeline.extend(self.rt.events().try_iter());
        self.flushes += 1;
        if self.flushes.is_multiple_of(BARRIER_EVERY) {
            // Bound in-flight work so the shard queues can never
            // overflow (drops would be timing-dependent).
            self.rt.flush();
        }
    }

    /// Drains the event channel until every transition the runtime has
    /// counted as published is collected. Called after the final
    /// `flush` + `sweep_now`, when the run is quiescent: the loop only
    /// spins while a worker is mid-publish, which lasts microseconds.
    fn settle(&mut self) {
        let mut stable = 0u32;
        let mut last_published = u64::MAX;
        loop {
            self.timeline.extend(self.rt.events().try_iter());
            let stats = self.rt.stats();
            let published: u64 = stats
                .shards
                .iter()
                .map(|s| s.to_trust + s.to_suspect + s.to_recovered)
                .sum();
            let collected = self.timeline.len() as u64 + stats.events_dropped;
            if collected == published && published == last_published {
                stable += 1;
                if stable >= 3 {
                    return;
                }
            } else {
                stable = 0;
            }
            last_published = published;
            thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Runs `config` under `seed`, returning the full deterministic report.
///
/// # Panics
/// If the config is malformed: no monitors, a zero interval/duration,
/// a sender whose `links` don't match the monitor count, or duplicate
/// stream ids.
pub fn run(config: &ClusterConfig, seed: u64) -> ScenarioReport {
    assert!(!config.monitors.is_empty(), "need at least one monitor");
    assert!(
        !config.interval.is_zero(),
        "heartbeat interval must be positive"
    );
    assert!(!config.duration.is_zero(), "run must cover some time");
    for s in &config.senders {
        assert_eq!(
            s.links.len(),
            config.monitors.len(),
            "sender {} needs one link per monitor",
            s.stream
        );
        if let Some(restart) = s.restart {
            let stop = s.stop.expect("restart requires a stop instant");
            assert!(
                restart > stop,
                "sender {} must restart after it stops",
                s.stream
            );
        }
    }
    if let Some(plan) = &config.federation {
        assert!(
            !plan.digest_interval.is_zero(),
            "digest interval must be positive"
        );
    }
    {
        let mut ids: Vec<u64> = config.senders.iter().map(|s| s.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), config.senders.len(), "duplicate stream ids");
    }

    let mut root = SimRng::seed_from_u64(seed);
    let mut senders: Vec<SenderState> = config
        .senders
        .iter()
        .map(|s| SenderState {
            seq: 0,
            incarnation: 0,
            epoch_local: Nanos::ZERO,
            links: s
                .links
                .iter()
                .map(|l| (l.instantiate(), root.fork()))
                .collect(),
        })
        .collect();

    let mut monitors: Vec<MonitorState> = config
        .monitors
        .iter()
        .enumerate()
        .map(|(idx, m)| {
            let clock = Arc::new(ManualClock::new());
            let rt = ShardRuntime::new(
                ShardConfig {
                    detector: config.detector.clone().into(),
                    n_shards: m.n_shards,
                    queue_capacity: QUEUE_CAPACITY,
                    event_capacity: EVENT_CAPACITY,
                    obs: ObsOptions {
                        jitter: false,
                        qos: config.qos.map(QosPlan::Uniform),
                    },
                    ..ShardConfig::default()
                },
                Arc::clone(&clock) as Arc<dyn TimeSource>,
            );
            // Pre-register the whole fleet: every stream has a defined
            // output (initially Suspect) from the first instant, like a
            // monitor bootstrapped from a membership list.
            for s in &config.senders {
                rt.register(s.stream);
            }
            // A federated monitor watches every *other* monitor through
            // its digests, at the plan's shared peer-detector recipe.
            let fed = config.federation.as_ref().map(|plan| {
                let mut f = Federation::new(
                    FederationConfig {
                        local: idx as u64,
                        digest_interval: plan.digest_interval,
                    },
                    &Registry::new(),
                );
                for peer in 0..config.monitors.len() {
                    if peer != idx {
                        f.register_peer(peer as u64, &plan.peer_detector);
                    }
                }
                f
            });
            MonitorState {
                rt,
                clock,
                buffer: Vec::with_capacity(FLUSH_BATCH),
                timeline: Vec::new(),
                ingested: 0,
                adopted: 0,
                flushes: 0,
                fed,
            }
        })
        .collect();

    let horizon = Nanos::ZERO + config.duration;
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for (i, s) in config.senders.iter().enumerate() {
        let first = s.clock.global_at(Nanos(config.interval.0));
        if first < horizon && s.stop.is_none_or(|stop| first < stop) {
            queue.schedule(first, Ev::Beat { sender: i });
        }
        if let Some(restart) = s.restart {
            if restart < horizon {
                queue.schedule(restart, Ev::Restart { sender: i });
            }
        }
    }
    if let Some(plan) = &config.federation {
        for m in 0..config.monitors.len() {
            let first = Nanos::ZERO + plan.digest_interval;
            if first < horizon {
                queue.schedule(first, Ev::Digest { monitor: m });
            }
        }
    }

    let mut beats_sent = 0u64;
    let mut deliveries = 0u64;
    let mut sim_events = 0u64;
    while let Some((t, ev)) = queue.pop() {
        sim_events += 1;
        match ev {
            Ev::Beat { sender } => {
                beats_sent += 1;
                let spec = &config.senders[sender];
                let state = &mut senders[sender];
                state.seq += 1;
                for (m, (link, rng)) in state.links.iter_mut().enumerate() {
                    if let twofd_sim::Transmission::Delivered { delay } = link.transmit(rng, t) {
                        let arrival = t + delay;
                        if arrival < horizon {
                            queue.schedule(
                                arrival,
                                Ev::Deliver {
                                    monitor: m,
                                    stream: spec.stream,
                                    seq: state.seq,
                                    incarnation: state.incarnation,
                                },
                            );
                        }
                    }
                }
                let next_local = Nanos(
                    state
                        .epoch_local
                        .0
                        .saturating_add(config.interval.0.saturating_mul(state.seq + 1)),
                );
                let next = spec.clock.global_at(next_local);
                // `stop` only fells the original boot; the scripted
                // restart (which is later) starts a fresh cadence.
                let stopped = state.incarnation == 0 && spec.stop.is_some_and(|stop| next >= stop);
                if next < horizon && !stopped {
                    queue.schedule(next, Ev::Beat { sender });
                }
            }
            Ev::Restart { sender } => {
                let spec = &config.senders[sender];
                let state = &mut senders[sender];
                state.incarnation += 1;
                state.seq = 0;
                state.epoch_local = spec.clock.local(t);
                let first = spec
                    .clock
                    .global_at(Nanos(state.epoch_local.0.saturating_add(config.interval.0)));
                if first < horizon {
                    queue.schedule(first, Ev::Beat { sender });
                }
            }
            Ev::Deliver {
                monitor,
                stream,
                seq,
                incarnation,
            } => {
                deliveries += 1;
                if config.monitors[monitor].kill.is_some_and(|k| t >= k) {
                    continue; // the monitor is dead; the datagram is lost
                }
                let local = config.monitors[monitor].clock.local(t);
                let state = &mut monitors[monitor];
                state.buffer.push((stream, seq, local, incarnation));
                if state.buffer.len() >= FLUSH_BATCH {
                    state.flush_batch();
                }
            }
            Ev::Digest { monitor } => {
                let spec = &config.monitors[monitor];
                if spec.kill.is_some_and(|k| t >= k) {
                    continue; // dead monitors neither digest nor adopt
                }
                let plan = config
                    .federation
                    .as_ref()
                    .expect("digest tick implies a plan");
                let local_now = spec.clock.local(t);
                let state = &mut monitors[monitor];
                // The digest summarizes the runtime's view *now*: ingest
                // everything that has arrived, wait for the workers
                // (deterministic — the job set is fixed by the schedule),
                // and advance the virtual clock to the tick.
                state.flush_batch();
                state.rt.flush();
                state.clock.advance_to(local_now);
                let fed = state.fed.as_mut().expect("federated monitor");
                if fed.digest_due(local_now) {
                    let digest = fed.build_digest(&state.rt.statuses(), local_now);
                    let arrive = t + plan.relay_delay;
                    if arrive < horizon {
                        for peer in 0..config.monitors.len() {
                            if peer != monitor {
                                queue.schedule(
                                    arrive,
                                    Ev::RelayDigest {
                                        monitor: peer,
                                        digest: digest.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
                // Sweep the per-peer detectors; a newly dead peer's last
                // view is adopted, rebased from the origin's clock onto
                // this monitor's through the global timeline.
                for adoption in fed.sweep(local_now) {
                    let origin = config.monitors[adoption.peer as usize].clock;
                    for e in &adoption.streams {
                        let global_until = origin.global_at(e.trust_until);
                        let local_until = spec.clock.local(global_until);
                        if state.rt.adopt(e.stream, e.incarnation, local_until) {
                            state.adopted += 1;
                        }
                    }
                }
                state.timeline.extend(state.rt.events().try_iter());
                let next = t + plan.digest_interval;
                if next < horizon {
                    queue.schedule(next, Ev::Digest { monitor });
                }
            }
            Ev::RelayDigest { monitor, digest } => {
                let spec = &config.monitors[monitor];
                if spec.kill.is_some_and(|k| t >= k) {
                    continue;
                }
                let local = spec.clock.local(t);
                let state = &mut monitors[monitor];
                let fed = state.fed.as_mut().expect("relay implies a plan");
                // The wire round-trip keeps the simulator honest about
                // the digest codec: what a peer adopts is exactly what
                // the format can carry.
                let decoded = LivenessDigest::decode(&digest.encode()).expect("digest round-trips");
                fed.on_digest(&decoded, local);
            }
        }
    }

    // End of run: flush the tail, advance every monitor to its local
    // end instant, retire pending expiries synchronously, and collect.
    let mut reports = Vec::with_capacity(monitors.len());
    for (m, mut state) in monitors.into_iter().enumerate() {
        state.flush_batch();
        state.rt.flush();
        // A killed monitor's report freezes at the kill: its clock never
        // passes that instant, so outputs/QoS are read as of the crash.
        let end_global = config.monitors[m].kill.map_or(horizon, |k| k.min(horizon));
        let end_local = config.monitors[m].clock.local(end_global);
        state.clock.advance_to(end_local);
        state.rt.sweep_now();
        state.settle();
        // Canonical order: (at, key) is total — a stream cannot
        // transition twice at one instant (an S needs a strictly
        // earlier horizon; the T restoring it moves the horizon past
        // it) — so sorting erases worker/channel interleaving.
        state
            .timeline
            .sort_unstable_by_key(|e| (e.at, e.key, matches!(e.output, FdOutput::Suspect)));
        let mut streams: Vec<u64> = config.senders.iter().map(|s| s.stream).collect();
        streams.sort_unstable();
        let final_outputs = streams
            .iter()
            .map(|&s| (s, state.rt.output(s).expect("registered stream")))
            .collect();
        let qos = if config.qos.is_some() {
            streams
                .iter()
                .filter_map(|&s| {
                    let metrics = state.rt.qos_metrics(s)?;
                    let verdict = state.rt.qos_verdict(s)?;
                    Some((s, metrics, verdict))
                })
                .collect()
        } else {
            Vec::new()
        };
        reports.push(MonitorReport {
            timeline: state.timeline,
            final_outputs,
            qos,
            ingested: state.ingested,
            adopted: state.adopted,
            events_dropped: state.rt.events_dropped(),
        });
    }

    ScenarioReport {
        name: config.name.clone(),
        seed,
        beats_sent,
        deliveries,
        sim_events,
        virtual_duration: config.duration,
        monitors: reports,
    }
}
