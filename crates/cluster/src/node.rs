//! Per-node virtual clocks.
//!
//! The paper's clock model deliberately leaves sender and monitor
//! clocks unsynchronized: every process reads its own free-running
//! clock, and only *receiver-side* timestamps feed the detectors. A
//! [`NodeClock`] makes that scriptable inside the simulator: it maps
//! the scheduler's single **global** timeline to one node's **local**
//! timeline via an origin (`start`), an initial reading (`offset`) and
//! a rate error (`drift_ppm`).
//!
//! ```text
//!     local(g) = offset + (g − start) · (10⁶ + drift_ppm) / 10⁶
//! ```
//!
//! Senders use the inverse to place beat `i` (due at *local* `i·Δi`)
//! on the global timeline; monitors use the forward map to stamp
//! arrivals in their own time before handing them to the real runtime.

use twofd_sim::time::{Nanos, Span};

/// One node's mapping between global simulation time and its local
/// clock reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeClock {
    /// Global instant the node's clock starts running (its process
    /// start — before this the node does not exist).
    pub start: Nanos,
    /// The local reading at `start` (a per-process origin; real
    /// monotonic clocks all start from an arbitrary point).
    pub offset: Span,
    /// Rate error in parts per million: `+500` runs half a millisecond
    /// fast per second, `-500` slow. Must be `> -1_000_000` so the
    /// clock keeps moving forward.
    pub drift_ppm: i64,
}

impl Default for NodeClock {
    fn default() -> Self {
        NodeClock::aligned()
    }
}

impl NodeClock {
    /// A clock perfectly aligned with the global timeline.
    pub fn aligned() -> Self {
        NodeClock {
            start: Nanos::ZERO,
            offset: Span::ZERO,
            drift_ppm: 0,
        }
    }

    /// A clock starting at global `start`, with the given origin offset
    /// and rate error.
    ///
    /// # Panics
    /// If `drift_ppm <= -1_000_000` (the clock would stop or reverse).
    pub fn new(start: Nanos, offset: Span, drift_ppm: i64) -> Self {
        assert!(
            drift_ppm > -1_000_000,
            "drift must leave the clock moving forward"
        );
        NodeClock {
            start,
            offset,
            drift_ppm,
        }
    }

    /// The node's local reading at global instant `global` (clamped to
    /// `offset` before the node starts). `i128` arithmetic keeps the
    /// ppm scaling exact over multi-hour nanosecond timelines.
    pub fn local(&self, global: Nanos) -> Nanos {
        let since = global.saturating_since(self.start).0 as i128;
        let scaled = since * (1_000_000 + self.drift_ppm as i128) / 1_000_000;
        Nanos(self.offset.0.saturating_add(scaled as u64))
    }

    /// The global instant at which the node's clock reads `local`
    /// (clamped to `start` for readings before the origin). Inverse of
    /// [`NodeClock::local`] up to integer rounding.
    pub fn global_at(&self, local: Nanos) -> Nanos {
        let since_local = local.0.saturating_sub(self.offset.0) as i128;
        let scaled = since_local * 1_000_000 / (1_000_000 + self.drift_ppm as i128);
        Nanos(self.start.0.saturating_add(scaled as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_clock_is_the_identity() {
        let c = NodeClock::aligned();
        let t = Nanos::from_secs(1234);
        assert_eq!(c.local(t), t);
        assert_eq!(c.global_at(t), t);
    }

    #[test]
    fn offset_and_drift_compose() {
        // Starts at global 10s, reads 1000s then, runs +500 ppm fast.
        let c = NodeClock::new(Nanos::from_secs(10), Span::from_secs(1000), 500);
        // 100s of global time → 100.05s of local time.
        let local = c.local(Nanos::from_secs(110));
        assert_eq!(local, Nanos(1_000_000_000_000 + 100_050_000_000));
        // Before the node starts, the clock reads its origin.
        assert_eq!(c.local(Nanos::from_secs(5)), Nanos::from_secs(1000));
    }

    #[test]
    fn global_at_inverts_local() {
        let c = NodeClock::new(Nanos::from_secs(3), Span::from_millis(250), -750);
        for g in [
            Nanos::from_secs(3),
            Nanos::from_secs(40),
            Nanos(123_456_789_012),
        ] {
            let round_trip = c.global_at(c.local(g));
            let err = round_trip.0.abs_diff(g.0);
            assert!(err <= 2, "{g:?} -> {round_trip:?}");
        }
    }

    #[test]
    fn local_is_monotone_in_global() {
        let c = NodeClock::new(Nanos::from_secs(1), Span::from_secs(7), -900_000);
        let mut prev = c.local(Nanos::ZERO);
        for i in 0..1000u64 {
            let next = c.local(Nanos(i * 10_000_000));
            assert!(next >= prev);
            prev = next;
        }
    }

    #[test]
    fn rejects_reversing_drift() {
        assert!(std::panic::catch_unwind(|| {
            NodeClock::new(Nanos::ZERO, Span::ZERO, -1_000_000)
        })
        .is_err());
    }
}
