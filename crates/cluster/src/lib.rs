//! # twofd-cluster — deterministic virtual-time cluster simulation
//!
//! Runs the **real** fleet runtime — [`twofd_net::ShardRuntime`], the
//! same sharded monitor that serves live UDP traffic — inside a
//! discrete-event cluster simulator. A single global event loop owns a
//! [`twofd_net::ManualClock`] per monitor node and drives thousands of
//! simulated heartbeat senders through scripted links
//! ([`twofd_sim::link`]), delivering arrivals via `ingest_batch` and
//! expiries via caller-driven sweeps, all in virtual time.
//!
//! The pieces:
//!
//! * [`node`] — per-node clock scripting (origin offset + ppm drift).
//! * [`sim`] — the event loop: [`sim::ClusterConfig`] in,
//!   [`sim::ScenarioReport`] out, bit-identical for a given seed.
//! * [`scenarios`] — the named scenario library (steady state, crash,
//!   partitions, brownouts, churn, skewed clocks), each carrying the
//!   QoS envelope its report must land in.
//!
//! A year of simulated cluster traffic costs seconds of wall clock, and
//! any interesting run replays exactly from its seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod node;
pub mod scenarios;
pub mod sim;

pub use node::NodeClock;
pub use scenarios::{library, Envelope, Scale, Scenario, StreamEnvelope};
pub use sim::{
    run, ClusterConfig, FederationPlan, MonitorReport, MonitorSpec, ScenarioReport, SenderSpec,
};
