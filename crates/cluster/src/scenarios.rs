//! The scripted scenario library.
//!
//! Each scenario is a [`ClusterConfig`] plus the [`Envelope`] its
//! report must land in: which streams end Trusted or Suspected, how
//! many suspicions each may rack up on the way, and — where the
//! outcome is clear-cut — whether the online [`twofd_obs::QosVerdict`]
//! must come back met or violated. The library covers the failure modes the
//! fleet runtime claims to survive:
//!
//! | scenario             | what it scripts                                  |
//! |----------------------|--------------------------------------------------|
//! | `steady_state`       | jittery WAN links, no faults                     |
//! | `crash`              | a subset of the fleet crashes mid-run            |
//! | `partition_and_heal` | symmetric blackout of a group, then recovery     |
//! | `asymmetric_link`    | one direction dark, the other clean (2 monitors) |
//! | `skewed_clocks`      | offset + drifting clocks on every node           |
//! | `mass_churn`         | staggered joins, half the fleet leaves           |
//! | `brownout`           | one slow, lossy node flapping for a window       |
//! | `crash_recovery`     | reboots with bumped incarnations → `Recovered`   |
//! | `monitor_failover`   | a federated monitor dies; its peer adopts        |
//!
//! Every scenario uses stochastic link delay, so different seeds yield
//! different arrival instants (and thus different timelines) while any
//! fixed seed replays bit-identically — the determinism harness in
//! `tests/cluster_scenarios.rs` checks both directions.

use crate::node::NodeClock;
use crate::sim::{run, ClusterConfig, FederationPlan, MonitorSpec, ScenarioReport, SenderSpec};
use twofd_core::{DetectorConfig, DetectorSpec, FdOutput, QosSpec, TransitionKind};
use twofd_obs::{QosOrigin, QosTrackerConfig};
use twofd_sim::link::{LinkEffect, LinkSpec};
use twofd_sim::loss::LossSpec;
use twofd_sim::rng::DistSpec;
use twofd_sim::scenario::NetworkScenario;
use twofd_sim::time::{Nanos, Span};
use twofd_sim::DelaySpec;

/// How big to build the fleet: `Quick` for CI smoke runs and tests,
/// `Full` for the bench example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small fleets — every scenario finishes in well under a second.
    Quick,
    /// The sizes the bench artifact reports (thousands of streams in
    /// `mass_churn`).
    Full,
}

impl Scale {
    fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Bounds one group of streams must satisfy on one monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEnvelope {
    /// Which monitor's report to check.
    pub monitor: usize,
    /// The streams the bounds apply to.
    pub streams: Vec<u64>,
    /// Required detector output at end of run.
    pub final_output: FdOutput,
    /// Minimum Suspect transitions each stream must show.
    pub min_suspicions: u64,
    /// Maximum Suspect transitions each stream may show.
    pub max_suspicions: u64,
    /// Minimum `Recovered` transitions (incarnation-bump re-trusts)
    /// each stream must show.
    pub min_recoveries: u64,
    /// Maximum `Recovered` transitions each stream may show.
    pub max_recoveries: u64,
    /// If set, the end-of-run [`twofd_obs::QosVerdict::met`] each
    /// stream must report. Leave `None` where the verdict is not
    /// clear-cut.
    pub qos_met: Option<bool>,
}

/// The declared acceptance region of one scenario's report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Envelope {
    /// Per-group bounds; streams not mentioned are unconstrained.
    pub streams: Vec<StreamEnvelope>,
}

impl Envelope {
    /// Checks `report` against every bound; `Err` carries one line per
    /// violation. Always requires zero dropped transition events on
    /// every monitor (a lossy timeline proves nothing).
    pub fn check(&self, report: &ScenarioReport) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        for (m, monitor) in report.monitors.iter().enumerate() {
            if monitor.events_dropped > 0 {
                violations.push(format!(
                    "monitor {m}: {} transition events dropped",
                    monitor.events_dropped
                ));
            }
        }
        for bound in &self.streams {
            let Some(monitor) = report.monitors.get(bound.monitor) else {
                violations.push(format!("no monitor {}", bound.monitor));
                continue;
            };
            for &stream in &bound.streams {
                let actual = monitor
                    .final_outputs
                    .iter()
                    .find(|(s, _)| *s == stream)
                    .map(|&(_, out)| out);
                if actual != Some(bound.final_output) {
                    violations.push(format!(
                        "monitor {} stream {stream}: final output {actual:?}, expected {:?}",
                        bound.monitor, bound.final_output
                    ));
                }
                let suspicions = monitor
                    .timeline
                    .iter()
                    .filter(|e| e.key == stream && e.output == FdOutput::Suspect)
                    .count() as u64;
                if suspicions < bound.min_suspicions || suspicions > bound.max_suspicions {
                    violations.push(format!(
                        "monitor {} stream {stream}: {suspicions} suspicions outside [{}, {}]",
                        bound.monitor, bound.min_suspicions, bound.max_suspicions
                    ));
                }
                let recoveries = monitor
                    .timeline
                    .iter()
                    .filter(|e| e.key == stream && e.kind == TransitionKind::Recovered)
                    .count() as u64;
                if recoveries < bound.min_recoveries || recoveries > bound.max_recoveries {
                    violations.push(format!(
                        "monitor {} stream {stream}: {recoveries} recoveries outside [{}, {}]",
                        bound.monitor, bound.min_recoveries, bound.max_recoveries
                    ));
                }
                if let Some(expected_met) = bound.qos_met {
                    let met = monitor
                        .qos
                        .iter()
                        .find(|(s, _, _)| *s == stream)
                        .map(|(_, _, v)| v.met);
                    if met != Some(expected_met) {
                        violations.push(format!(
                            "monitor {} stream {stream}: qos met = {met:?}, expected {expected_met}",
                            bound.monitor
                        ));
                    }
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// A named cluster scenario: the configuration plus its acceptance
/// envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The cluster to simulate.
    pub config: ClusterConfig,
    /// The region its report must land in.
    pub envelope: Envelope,
}

impl Scenario {
    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Runs the scenario under `seed`.
    pub fn run(&self, seed: u64) -> ScenarioReport {
        run(&self.config, seed)
    }

    /// Runs under `seed` and checks the envelope; `Err` lists the
    /// violations.
    pub fn run_checked(&self, seed: u64) -> Result<ScenarioReport, Vec<String>> {
        let report = self.run(seed);
        self.envelope.check(&report)?;
        Ok(report)
    }
}

/// Heartbeat interval shared by every scenario: the paper's 100 ms.
pub const INTERVAL: Span = Span(100_000_000);

/// The detector every scenario runs: the paper's 2W-FD(1,1000) with a
/// 500 ms safety margin — wide enough that WAN jitter and sub-ms clock
/// drift alone never cause a suspicion, so every suspicion in a report
/// is attributable to the scripted fault.
fn detector() -> DetectorConfig {
    DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 1000 }, INTERVAL, 0.5)
}

/// The QoS contract under test: detect within 2 s, at most one mistake
/// per 20 s, mistakes corrected within 2 s on average.
fn qos() -> QosTrackerConfig {
    QosTrackerConfig {
        spec: Some(QosSpec::new(2.0, 20.0, 2.0)),
        interval: INTERVAL,
        window: Span::MAX,
        origin: QosOrigin::Nominal,
    }
}

/// The same contract with the auto-anchored detection-time origin:
/// scenarios whose senders don't share the monitor's `j·Δi` send axis
/// (clock offsets, staggered joins, incarnation restarts) get full
/// verdicts instead of transitions-only assertions.
fn qos_auto() -> QosTrackerConfig {
    QosTrackerConfig {
        origin: QosOrigin::Auto,
        ..qos()
    }
}

/// The baseline link: WAN-ish jittery delay (15–35 ms uniform) with
/// 1% independent loss. Stochastic delay is what makes different seeds
/// produce different timelines.
fn wan(duration: Span) -> NetworkScenario {
    NetworkScenario::uniform(
        "wan",
        duration.0 / INTERVAL.0 + 2,
        DelaySpec::Iid {
            dist: DistSpec::Uniform {
                lo: 0.015,
                hi: 0.035,
            },
            floor_nanos: 1_000_000,
        },
        LossSpec::Bernoulli { p: 0.01 },
    )
}

/// A fleet of `n` aligned-clock senders with the given per-stream link.
fn fleet(n: usize, link: impl Fn(u64) -> LinkSpec) -> Vec<SenderSpec> {
    (0..n as u64)
        .map(|stream| SenderSpec {
            stream,
            clock: NodeClock::aligned(),
            stop: None,
            restart: None,
            links: vec![link(stream)],
        })
        .collect()
}

fn base_config(name: &str, duration: Span, senders: Vec<SenderSpec>) -> ClusterConfig {
    ClusterConfig {
        name: name.to_string(),
        interval: INTERVAL,
        duration,
        detector: detector(),
        qos: Some(qos()),
        monitors: vec![MonitorSpec::default()],
        senders,
        federation: None,
    }
}

fn all_streams(config: &ClusterConfig) -> Vec<u64> {
    config.senders.iter().map(|s| s.stream).collect()
}

/// No faults: every stream must hold Trust from its first heartbeat to
/// the horizon with zero suspicions, and meet the QoS contract.
pub fn steady_state(scale: Scale) -> Scenario {
    let duration = Span::from_secs(30);
    let n = scale.pick(16, 64);
    let config = base_config(
        "steady_state",
        duration,
        fleet(n, |_| LinkSpec::clean(wan(duration))),
    );
    let streams = all_streams(&config);
    Scenario {
        envelope: Envelope {
            streams: vec![StreamEnvelope {
                monitor: 0,
                streams,
                final_output: FdOutput::Trust,
                min_suspicions: 0,
                max_suspicions: 0,
                min_recoveries: 0,
                max_recoveries: 0,
                qos_met: Some(true),
            }],
        },
        config,
    }
}

/// Every sixth sender crashes at t=12 s; each must be suspected
/// (exactly once — a crash is not a flap) and stay suspected, while
/// the survivors never waver.
pub fn crash(scale: Scale) -> Scenario {
    let duration = Span::from_secs(30);
    let n = scale.pick(18, 48);
    let mut senders = fleet(n, |_| LinkSpec::clean(wan(duration)));
    let crashed: Vec<u64> = (0..n as u64).filter(|s| s.is_multiple_of(6)).collect();
    for s in &mut senders {
        if crashed.contains(&s.stream) {
            s.stop = Some(Nanos::from_secs(12));
        }
    }
    let config = base_config("crash", duration, senders);
    let healthy: Vec<u64> = all_streams(&config)
        .into_iter()
        .filter(|s| !crashed.contains(s))
        .collect();
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: crashed,
                    final_output: FdOutput::Suspect,
                    min_suspicions: 1,
                    max_suspicions: 1,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: None,
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: healthy,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// The first quarter of the fleet is partitioned (link blackout) from
/// t=8 s to t=18 s, then heals. Partitioned streams must be suspected
/// during the outage and re-trusted after it; the 10 s mistake blows
/// the contract's 2 s mistake-duration bound, so their verdict must
/// come back violated.
pub fn partition_and_heal(scale: Scale) -> Scenario {
    let duration = Span::from_secs(40);
    let n = scale.pick(16, 32);
    let cut = (n / 4) as u64;
    let config = base_config(
        "partition_and_heal",
        duration,
        fleet(n, |stream| {
            let base = LinkSpec::clean(wan(duration));
            if stream < cut {
                base.with(
                    Span::from_secs(8),
                    Span::from_secs(18),
                    LinkEffect::Blackout,
                )
            } else {
                base
            }
        }),
    );
    let (partitioned, spared): (Vec<u64>, Vec<u64>) =
        all_streams(&config).into_iter().partition(|&s| s < cut);
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: partitioned,
                    final_output: FdOutput::Trust,
                    min_suspicions: 1,
                    max_suspicions: 2,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(false),
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: spared,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// Two monitors watch the same fleet; stream 0's link to monitor 0
/// goes dark at t=10 s *in that direction only*. Monitor 0 must end
/// suspecting stream 0 while monitor 1 holds Trust on the identical
/// heartbeat history — the asymmetric-partition picture.
pub fn asymmetric_link(scale: Scale) -> Scenario {
    let duration = Span::from_secs(30);
    let n = scale.pick(8, 16);
    let senders = (0..n as u64)
        .map(|stream| {
            let dark = LinkSpec::clean(wan(duration));
            let dark = if stream == 0 {
                dark.with(Span::from_secs(10), duration, LinkEffect::Blackout)
            } else {
                dark
            };
            SenderSpec {
                stream,
                clock: NodeClock::aligned(),
                stop: None,
                restart: None,
                links: vec![dark, LinkSpec::clean(wan(duration))],
            }
        })
        .collect();
    let mut config = base_config("asymmetric_link", duration, senders);
    config.monitors = vec![MonitorSpec::default(), MonitorSpec::default()];
    let others: Vec<u64> = (1..n as u64).collect();
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: vec![0],
                    final_output: FdOutput::Suspect,
                    min_suspicions: 1,
                    max_suspicions: 1,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: None,
                },
                StreamEnvelope {
                    monitor: 1,
                    streams: vec![0],
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: others.clone(),
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
                StreamEnvelope {
                    monitor: 1,
                    streams: others,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// Every node's clock is scripted: the monitor reads an hour ahead and
/// runs 300 ppm fast, each sender starts from its own origin with up
/// to ±500 ppm drift. Receiver-side timestamps make the detector
/// skew-invariant, so the one scripted crash is still detected and
/// nobody else is suspected. The tracker's auto-anchored origin
/// ([`QosOrigin::Auto`]) absorbs the scripted offsets the way the
/// detector does, so the healthy streams' full QoS verdict is asserted
/// met (DESIGN.md §15.5's former transitions-only caveat).
pub fn skewed_clocks(scale: Scale) -> Scenario {
    let duration = Span::from_secs(35);
    let n = scale.pick(12, 24);
    let mut senders = fleet(n, |_| LinkSpec::clean(wan(duration)));
    for s in &mut senders {
        let i = s.stream;
        s.clock = NodeClock::new(
            Nanos::ZERO,
            Span::from_millis(50 * i),
            (i as i64 % 11 - 5) * 100,
        );
    }
    senders[0].stop = Some(Nanos::from_secs(15));
    let mut config = base_config("skewed_clocks", duration, senders);
    config.qos = Some(qos_auto());
    config.monitors = vec![MonitorSpec {
        clock: NodeClock::new(Nanos::ZERO, Span::from_secs(3600), 300),
        n_shards: 4,
        kill: None,
    }];
    let healthy: Vec<u64> = (1..n as u64).collect();
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: vec![0],
                    final_output: FdOutput::Suspect,
                    min_suspicions: 1,
                    max_suspicions: 1,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: None,
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: healthy,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// The whole fleet joins staggered across the first 10 s; the odd half
/// leaves at t=22 s. Leavers must end suspected exactly once (their
/// departure), stayers must never be suspected — churn, at `Full`
/// scale, with thousands of streams against the real runtime. The
/// auto-anchored origin pins each stream's detection-time axis to its
/// own (staggered) join, so stayers carry a full met verdict; leavers
/// stay unasserted — their open end-of-run suspicion is justified, but
/// the tracker cannot know that without a later incarnation bump.
pub fn mass_churn(scale: Scale) -> Scenario {
    let duration = Span::from_secs(45);
    let n = scale.pick(64, 2048);
    let mut senders = fleet(n, |_| LinkSpec::clean(wan(duration)));
    for s in &mut senders {
        let i = s.stream;
        s.clock = NodeClock::new(Nanos(i * 10_000_000_000 / n as u64), Span::ZERO, 0);
        if i % 2 == 1 {
            s.stop = Some(Nanos::from_secs(22));
        }
    }
    let mut config = base_config("mass_churn", duration, senders);
    config.qos = Some(qos_auto());
    let (leavers, stayers): (Vec<u64>, Vec<u64>) =
        all_streams(&config).into_iter().partition(|s| s % 2 == 1);
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: leavers,
                    final_output: FdOutput::Suspect,
                    min_suspicions: 1,
                    max_suspicions: 1,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: None,
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: stayers,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// Stream 3's link browns out from t=15 s to t=30 s: +50 ms delay and
/// 85% loss. The node flaps — repeated suspect/trust cycles — then
/// recovers to Trust, but the flapping must blow its mistake-rate
/// contract while every other stream stays clean.
pub fn brownout(scale: Scale) -> Scenario {
    let duration = Span::from_secs(60);
    let n = scale.pick(8, 16);
    let config = base_config(
        "brownout",
        duration,
        fleet(n, |stream| {
            let base = LinkSpec::clean(wan(duration));
            if stream == 3 {
                base.with(
                    Span::from_secs(15),
                    Span::from_secs(30),
                    LinkEffect::ExtraDelay { nanos: 50_000_000 },
                )
                .with(
                    Span::from_secs(15),
                    Span::from_secs(30),
                    LinkEffect::Lossy { p: 0.85 },
                )
            } else {
                base
            }
        }),
    );
    let others: Vec<u64> = all_streams(&config)
        .into_iter()
        .filter(|&s| s != 3)
        .collect();
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: vec![3],
                    final_output: FdOutput::Trust,
                    min_suspicions: 2,
                    max_suspicions: 200,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(false),
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: others,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// Every fourth sender crashes at t=12 s and reboots at t=16 s with a
/// bumped incarnation. The monitor must suspect each exactly once (the
/// justified crash suspicion), re-trust it through exactly one
/// `Recovered` transition when the higher incarnation's heartbeats
/// arrive, and — because a justified suspicion closed by a recovery is
/// *not* a mistake, and the auto-anchored origin re-anchors on the
/// restart's sequence reset — still report the full QoS contract met.
pub fn crash_recovery(scale: Scale) -> Scenario {
    let duration = Span::from_secs(30);
    let n = scale.pick(12, 24);
    let mut senders = fleet(n, |_| LinkSpec::clean(wan(duration)));
    let restarted: Vec<u64> = (0..n as u64).filter(|s| s.is_multiple_of(4)).collect();
    for s in &mut senders {
        if restarted.contains(&s.stream) {
            s.stop = Some(Nanos::from_secs(12));
            s.restart = Some(Nanos::from_secs(16));
        }
    }
    let mut config = base_config("crash_recovery", duration, senders);
    config.qos = Some(qos_auto());
    let steady: Vec<u64> = all_streams(&config)
        .into_iter()
        .filter(|s| !restarted.contains(s))
        .collect();
    Scenario {
        envelope: Envelope {
            streams: vec![
                StreamEnvelope {
                    monitor: 0,
                    streams: restarted,
                    final_output: FdOutput::Trust,
                    min_suspicions: 1,
                    max_suspicions: 1,
                    min_recoveries: 1,
                    max_recoveries: 1,
                    qos_met: Some(true),
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: steady,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
            ],
        },
        config,
    }
}

/// Two federated monitors; the whole fleet is homed to monitor 0 (its
/// links to monitor 1 are dark) and one stream restarts mid-run with a
/// bumped incarnation. Monitor 0 is killed at t=19.95 s. Monitor 1 —
/// which has never received a heartbeat — must detect the dead peer
/// through its digest silence, adopt its relayed view (incarnations
/// included), and hold every stream in Trust through the failover gap
/// until the fleet re-homes to it at t=20.3 s: continuous detection
/// across a monitor crash, with zero suspicions on the survivor.
pub fn monitor_failover(scale: Scale) -> Scenario {
    let duration = Span::from_secs(30);
    let n = scale.pick(6, 12);
    let kill = Nanos(19_950_000_000);
    let rehome = Span(20_300_000_000);
    let senders = (0..n as u64)
        .map(|stream| SenderSpec {
            stream,
            clock: NodeClock::aligned(),
            // Stream 0 exercises crash-recovery under federation: its
            // bumped incarnation must survive the digest relay.
            stop: (stream == 0).then(|| Nanos::from_secs(8)),
            restart: (stream == 0).then(|| Nanos::from_secs(10)),
            links: vec![
                LinkSpec::clean(wan(duration)),
                // Homed to monitor 0 until the kill; service discovery
                // re-points the fleet at the survivor shortly after.
                LinkSpec::clean(wan(duration)).with(Span::ZERO, rehome, LinkEffect::Blackout),
            ],
        })
        .collect();
    let mut config = base_config("monitor_failover", duration, senders);
    // A wider margin keeps the adopted horizons alive across the
    // detect-and-adopt window (kill → peer-detector expiry → re-home).
    config.detector =
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 1000 }, INTERVAL, 1.0);
    config.qos = Some(qos_auto());
    config.monitors = vec![
        MonitorSpec {
            kill: Some(kill),
            ..MonitorSpec::default()
        },
        MonitorSpec::default(),
    ];
    config.federation = Some(FederationPlan {
        digest_interval: Span::from_millis(200),
        relay_delay: Span::from_millis(1),
        peer_detector: DetectorConfig::new(
            DetectorSpec::Chen { window: 1 },
            Span::from_millis(200),
            0.15,
        ),
    });
    let all = all_streams(&config);
    let steady: Vec<u64> = all.iter().copied().filter(|&s| s != 0).collect();
    Scenario {
        envelope: Envelope {
            streams: vec![
                // The killed monitor's frozen report: everything it saw
                // up to the kill, including the one crash-recovery.
                StreamEnvelope {
                    monitor: 0,
                    streams: vec![0],
                    final_output: FdOutput::Trust,
                    min_suspicions: 1,
                    max_suspicions: 1,
                    min_recoveries: 1,
                    max_recoveries: 1,
                    qos_met: Some(true),
                },
                StreamEnvelope {
                    monitor: 0,
                    streams: steady.clone(),
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: Some(true),
                },
                // The survivor: adoption bridges the gap, so no stream
                // is ever suspected and all end trusted.
                StreamEnvelope {
                    monitor: 1,
                    streams: all,
                    final_output: FdOutput::Trust,
                    min_suspicions: 0,
                    max_suspicions: 0,
                    min_recoveries: 0,
                    max_recoveries: 0,
                    qos_met: None,
                },
            ],
        },
        config,
    }
}

/// The whole library, in a stable order.
pub fn library(scale: Scale) -> Vec<Scenario> {
    vec![
        steady_state(scale),
        crash(scale),
        partition_and_heal(scale),
        asymmetric_link(scale),
        skewed_clocks(scale),
        mass_churn(scale),
        brownout(scale),
        crash_recovery(scale),
        monitor_failover(scale),
    ]
}
