//! # twofd-obs — live observability for the failure-detection service
//!
//! The paper's whole contribution is *QoS*: detection time `T_D`,
//! mistake rate `T_MR`, mistake duration `T_M` and query accuracy
//! `P_A`. The workspace can compute those **offline**
//! ([`twofd_core::metrics`] over replayed timelines); this crate makes a
//! *running* monitor report them, plus its own operational health, while
//! it serves traffic. Three layers:
//!
//! * [`metric`] — dependency-free, lock-free primitives: [`Counter`] and
//!   [`Gauge`] on a single `AtomicU64`, and a fixed-bucket log-linear
//!   [`Histogram`] for latency-shaped data (inter-arrival jitter, sweep
//!   latency). Handles are cheap `Arc` clones; the hot path pays one
//!   relaxed atomic RMW per update and never takes a lock.
//! * [`registry`] + [`expose`] — a [`Registry`] of named metric families
//!   with label support and Prometheus text-format rendering, plus
//!   scrape hooks for snapshot-style gauges (queue depths, live/suspect
//!   tallies) that are read at exposition time instead of being pushed.
//! * [`qos`] — the online mirror of the offline pipeline: a per-stream
//!   [`QosTracker`] consumes the Trust/Suspect transition events the
//!   shard sweepers already publish (plus per-heartbeat freshness
//!   decisions) and maintains sliding-window estimates of
//!   `T_D`/`T_MR`/`T_M`/`P_A` as a [`twofd_core::QosMetrics`] — the
//!   *same* struct the replay pipeline produces — compared live against
//!   a configured [`twofd_core::QosSpec`] into a [`QosVerdict`].
//! * [`http`] — a minimal std-only blocking HTTP listener
//!   ([`MetricsServer`]) answering `GET /metrics` and `GET /healthz`,
//!   runnable as an optional thread beside a fleet monitor.
//!
//! The crate deliberately depends on nothing beyond `twofd-core` /
//! `twofd-sim` (for the shared time and QoS vocabulary): it must be
//! embeddable in every layer of the workspace without dragging in a
//! metrics ecosystem the offline build environment does not have.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expose;
pub mod http;
pub mod metric;
pub mod qos;
pub mod registry;

/// Synchronization primitives behind the model-checking facade.
///
/// Ordinary builds re-export `std::sync`; building with
/// `RUSTFLAGS="--cfg twofd_check"` swaps in the instrumented
/// `twofd-check` shims so the metric cells and the registry lock run
/// under exhaustive schedule exploration (`cargo test -p twofd-check`
/// with that cfg). The shims delegate to `std` outside a model run, so
/// cfg'd builds behave identically in ordinary tests.
pub mod sync {
    #[cfg(not(twofd_check))]
    pub use std::sync::Mutex;

    #[cfg(twofd_check)]
    pub use twofd_check::sync::Mutex;

    /// Atomic types behind the same facade.
    pub mod atomic {
        #[cfg(not(twofd_check))]
        pub use std::sync::atomic::{AtomicU64, Ordering};

        #[cfg(twofd_check)]
        pub use twofd_check::sync::atomic::{AtomicU64, Ordering};
    }
}

pub use http::MetricsServer;
pub use metric::{Counter, Gauge, Histogram};
pub use qos::{
    QosAxis, QosOrigin, QosPlan, QosTracker, QosTrackerConfig, QosVerdict, StreamConfigFn,
};
pub use registry::{CounterVec, GaugeVec, HistogramVec, Registry};
