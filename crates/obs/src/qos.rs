//! Online QoS tracking — the live mirror of the offline replay pipeline.
//!
//! The workspace already knows how to judge a detector *after the fact*:
//! `twofd_core::replay` reconstructs the Trust/Suspect timeline from a
//! recorded trace and `QosMetrics::from_mistakes` turns it into the
//! paper's `T_D` / `T_MR` / `T_M` / `P_A`. A deployed monitor cannot
//! wait for a replay: it must report, *while serving traffic*, whether
//! each stream currently meets its contracted `(T_Dᵁ, T_MRᵁ, T_Mᵁ)`.
//!
//! [`QosTracker`] consumes exactly the inputs the sharded runtime
//! already produces — per-heartbeat freshness [`Decision`]s and the
//! Trust/Suspect [`StreamTransition`](twofd_core::StreamTransition)
//! stream from the sweepers — and
//! maintains a sliding window of mistake intervals and worst-case
//! detection-time samples. [`QosTracker::metrics_at`] assembles those
//! into the **same** [`QosMetrics`] struct the offline pipeline
//! produces, by calling the same `from_mistakes` arithmetic; with the
//! window covering the whole trace the two agree exactly (see
//! `tests/obs_differential.rs`).
//!
//! Semantics deliberately shared with `twofd_core::replay::replay`:
//!
//! * A mistake opens at the **S-transition instant** (the expired
//!   `trust_until`, not when the sweeper happened to notice) and closes
//!   at the restoring heartbeat's **arrival instant**.
//! * A mistake still open at the evaluation instant is **censored**: it
//!   counts toward the mistake *rate* and suspect time but not the mean
//!   *duration* (unless every mistake is censored, in which case the
//!   mean over censored spans is the only estimate available).
//! * The worst-case detection-time sample for heartbeat `j` is
//!   `trust_until(j) − σ(j)` where `σ(j) = j·Δi` is the nominal send
//!   instant; the average-case `T_D` subtracts half an inter-send
//!   interval, floored at zero.

use std::collections::VecDeque;
use std::sync::Arc;
use twofd_core::{Decision, FdOutput, Mistake, QosMetrics, QosSpec, TransitionKind};
use twofd_sim::time::{Nanos, Span};

/// How the tracker recovers a heartbeat's send instant `σ(j)` from its
/// sequence number — the anchor every detection-time sample subtracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosOrigin {
    /// `σ(j) = j·Δi` on the monitor's own clock: the trace builders'
    /// convention, and what the offline replay pipeline assumes. Exact
    /// when senders are born at the monitor's time zero with no clock
    /// offset — every differential test against `twofd_core::replay`
    /// uses this.
    #[default]
    Nominal,
    /// Chen-style estimated origin: anchor on the *fastest observed*
    /// message by tracking `min(arrival − j·Δi)` over the stream's
    /// fresh heartbeats and using `σ(j) = j·Δi + that offset`. Robust
    /// to sender clock offsets and staggered joins (the offset absorbs
    /// both, plus the minimum network delay — the same bias Chen's EA
    /// estimator carries), so full QoS verdicts hold under skewed
    /// clocks and mid-run churn where `Nominal` inflates `T_D` by the
    /// stream's entire birth time. The offset resets on an incarnation
    /// restart, whose sequence numbers restart with it.
    Auto,
}

/// Configuration for one stream's [`QosTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosTrackerConfig {
    /// The contracted bound to judge against; `None` tracks estimates
    /// without issuing verdicts (the verdict is then vacuously met).
    pub spec: Option<QosSpec>,
    /// The heartbeat inter-send interval `Δi` — needed to recover the
    /// nominal send instant `σ(j) = j·Δi` from a sequence number, and
    /// for the half-interval crash-time correction.
    pub interval: Span,
    /// Sliding evaluation window. Estimates at instant `now` cover
    /// `[now − window, now]`; use [`Span::MAX`] for a whole-trace
    /// (cumulative) window.
    pub window: Span,
    /// How send instants are anchored (see [`QosOrigin`]).
    pub origin: QosOrigin,
}

impl QosTrackerConfig {
    /// A cumulative (whole-trace) tracker with no contracted bound.
    pub fn cumulative(interval: Span) -> Self {
        QosTrackerConfig {
            spec: None,
            interval,
            window: Span::MAX,
            origin: QosOrigin::Nominal,
        }
    }
}

/// Per-stream tracker-configuration lookup used by
/// [`QosPlan::PerStream`]; `None` leaves the stream untracked.
pub type StreamConfigFn = Arc<dyn Fn(&u64) -> Option<QosTrackerConfig> + Send + Sync>;

/// How trackers are assigned to streams in a multi-stream runtime.
#[derive(Clone)]
pub enum QosPlan {
    /// Every stream gets the same configuration.
    Uniform(QosTrackerConfig),
    /// Per-stream lookup (e.g. from a service registry's per-app
    /// contracts); `None` leaves the stream untracked.
    PerStream(StreamConfigFn),
}

impl std::fmt::Debug for QosPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosPlan::Uniform(cfg) => f.debug_tuple("Uniform").field(cfg).finish(),
            QosPlan::PerStream(_) => f.write_str("PerStream(..)"),
        }
    }
}

impl QosPlan {
    /// Resolves the configuration for `stream`, if any.
    pub fn config_for(&self, stream: &u64) -> Option<QosTrackerConfig> {
        match self {
            QosPlan::Uniform(cfg) => Some(*cfg),
            QosPlan::PerStream(f) => f(stream),
        }
    }
}

/// One QoS axis of the paper's `(T_Dᵁ, T_MRᵁ, T_Mᵁ)` contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosAxis {
    /// Detection time `T_D` exceeded `T_Dᵁ`.
    DetectionTime,
    /// Mistake rate exceeded `1 / T_MRᵁ` (mistakes recur too often).
    MistakeRecurrence,
    /// Mean mistake duration `T_M` exceeded `T_Mᵁ`.
    MistakeDuration,
}

impl QosAxis {
    /// The label value used in exposition (`axis="detection_time"` …).
    pub fn label(self) -> &'static str {
        match self {
            QosAxis::DetectionTime => "detection_time",
            QosAxis::MistakeRecurrence => "mistake_recurrence",
            QosAxis::MistakeDuration => "mistake_duration",
        }
    }

    /// All three axes, in exposition order.
    pub const ALL: [QosAxis; 3] = [
        QosAxis::DetectionTime,
        QosAxis::MistakeRecurrence,
        QosAxis::MistakeDuration,
    ];
}

/// The live judgement of one stream against its contracted bound.
#[derive(Debug, Clone, PartialEq)]
pub struct QosVerdict {
    /// True iff no axis is violated (vacuously true without a spec).
    pub met: bool,
    /// The axes currently out of contract, in [`QosAxis::ALL`] order.
    pub violated_axes: Vec<QosAxis>,
}

/// Judges `metrics` against `spec`, axis by axis.
pub fn judge(spec: &QosSpec, metrics: &QosMetrics) -> QosVerdict {
    let mut violated_axes = Vec::new();
    if metrics.detection_time > spec.detection_time {
        violated_axes.push(QosAxis::DetectionTime);
    }
    if metrics.mistake_rate > spec.max_mistake_rate() {
        violated_axes.push(QosAxis::MistakeRecurrence);
    }
    if metrics.avg_mistake_duration > spec.mistake_duration {
        violated_axes.push(QosAxis::MistakeDuration);
    }
    QosVerdict {
        met: violated_axes.is_empty(),
        violated_axes,
    }
}

/// Online estimator of one stream's QoS metrics over a sliding window.
///
/// Feed it every processed heartbeat ([`QosTracker::on_heartbeat`]) and
/// every published transition ([`QosTracker::on_transition`]), then ask
/// for [`QosTracker::metrics_at`] / [`QosTracker::verdict_at`] whenever
/// a scrape (or a test) wants the current estimates. All methods take
/// `&mut self`; in the sharded runtime each tracker lives behind its
/// shard and is touched only by that shard's worker or a scrape.
#[derive(Debug)]
pub struct QosTracker {
    config: QosTrackerConfig,
    /// First heartbeat arrival — observation starts here, like the
    /// replay pipeline's `start = first arrival`.
    first_arrival: Option<Nanos>,
    /// `(arrival, worst_td_secs)` per fresh heartbeat, pruned to the
    /// window.
    td_samples: VecDeque<(Nanos, f64)>,
    /// Closed mistakes `(start, end)`, pruned once they fall wholly
    /// before the window.
    closed: VecDeque<(Nanos, Nanos)>,
    /// S-transition instant of the currently open mistake, if any.
    open_since: Option<Nanos>,
    /// Whether any heartbeat ever produced a Trust period — mirrors the
    /// replay convention that a stream whose first heartbeat arrives
    /// already-expired is suspected from that first arrival.
    ever_trusted: bool,
    /// The most recent freshness decision, used to synthesize the
    /// not-yet-swept mistake tail at evaluation time.
    last_decision: Option<Decision>,
    /// Largest sequence number seen fresh — a fresh heartbeat at or
    /// below it is an incarnation restart, which re-anchors the
    /// [`QosOrigin::Auto`] offset.
    last_seq: Option<u64>,
    /// Running `min(arrival − j·Δi)` in nanos ([`QosOrigin::Auto`]
    /// only); signed because a fast sender clock puts arrivals before
    /// the nominal schedule.
    origin_offset: Option<i128>,
    fresh: u64,
}

impl QosTracker {
    /// Creates an empty tracker.
    pub fn new(config: QosTrackerConfig) -> Self {
        QosTracker {
            config,
            first_arrival: None,
            td_samples: VecDeque::new(),
            closed: VecDeque::new(),
            open_since: None,
            ever_trusted: false,
            last_decision: None,
            last_seq: None,
            origin_offset: None,
            fresh: 0,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &QosTrackerConfig {
        &self.config
    }

    /// Records one processed heartbeat: its sequence number, arrival
    /// instant, and the freshness decision (if it was fresh).
    pub fn on_heartbeat(&mut self, seq: u64, arrival: Nanos, decision: Option<Decision>) {
        if self.first_arrival.is_none() {
            self.first_arrival = Some(arrival);
        }
        let Some(d) = decision else { return };
        // A *fresh* decision at or below the largest seen sequence
        // number means the detector's freshness state was reset — an
        // incarnation restart. The new boot's sequence numbers anchor a
        // new origin.
        if self.last_seq.is_some_and(|l| seq <= l) {
            self.origin_offset = None;
        }
        self.last_seq = Some(seq);
        self.fresh += 1;
        self.last_decision = Some(d);
        // Worst-case detection time sample: trust_until − σ(seq). Under
        // `Nominal`, σ(seq) = seq·Δi (the trace builders' convention,
        // and the replay pipeline's — kept byte-exact for the
        // differential tests). Under `Auto`, the nominal instant is
        // shifted by the fastest-message offset (see [`QosOrigin`]).
        let nominal = seq.saturating_mul(self.config.interval.0);
        let worst = match self.config.origin {
            QosOrigin::Nominal => d.trust_until.saturating_since(Nanos(nominal)).as_secs_f64(),
            QosOrigin::Auto => {
                let delta = i128::from(arrival.0) - i128::from(nominal);
                let offset = match self.origin_offset {
                    Some(o) => o.min(delta),
                    None => delta,
                };
                self.origin_offset = Some(offset);
                let send = i128::from(nominal) + offset;
                (i128::from(d.trust_until.0) - send).max(0) as f64 / 1e9
            }
        };
        self.td_samples.push_back((arrival, worst));
        // Replay convention: if the very first heartbeat arrives with
        // its freshness point already in the past, the stream is
        // suspected from that first arrival (never from time zero).
        if !self.ever_trusted && self.open_since.is_none() && d.trust_until <= arrival {
            self.open_since = Some(arrival);
        }
        if d.trust_until > arrival {
            self.ever_trusted = true;
        }
    }

    /// Records one published Trust/Suspect transition with crash-stop
    /// semantics (a restoring Trust closes any open suspicion as a
    /// mistake). Kind-aware callers should use
    /// [`QosTracker::on_transition_kind`], which additionally
    /// understands `Recovered`.
    pub fn on_transition(&mut self, output: FdOutput, at: Nanos) {
        self.on_transition_kind(
            match output {
                FdOutput::Trust => TransitionKind::Trust,
                FdOutput::Suspect => TransitionKind::Suspect,
            },
            at,
        );
    }

    /// Records one published transition, crash-recovery aware: a
    /// `Recovered` transition (restart with a bumped incarnation)
    /// closes any open suspicion *without* counting it as a mistake —
    /// the restart proves the crash was real, so the detector was
    /// right to suspect (Reis & Vieira's accounting; a plain `Trust`
    /// close still records the span as a false suspicion).
    pub fn on_transition_kind(&mut self, kind: TransitionKind, at: Nanos) {
        match kind {
            TransitionKind::Suspect => {
                if self.open_since.is_none() {
                    self.open_since = Some(at);
                }
            }
            TransitionKind::Trust => {
                self.ever_trusted = true;
                if let Some(start) = self.open_since.take() {
                    if start < at {
                        self.closed.push_back((start, at));
                    }
                }
            }
            TransitionKind::Recovered => {
                self.ever_trusted = true;
                // Justified suspicion: discard the open span entirely.
                self.open_since = None;
            }
        }
    }

    /// True once at least one heartbeat has been observed.
    pub fn has_observations(&self) -> bool {
        self.first_arrival.is_some()
    }

    /// The windowed QoS estimates as of `now` — the same
    /// [`QosMetrics`] struct (and the same arithmetic) as the offline
    /// pipeline. Prunes state older than the window as a side effect.
    pub fn metrics_at(&mut self, now: Nanos) -> QosMetrics {
        let Some(first) = self.first_arrival else {
            return QosMetrics::from_mistakes(&[], Span::ZERO, 0.0, 0, self.config.interval);
        };
        let window_start = Nanos(now.0.saturating_sub(self.config.window.0));
        self.prune(window_start);

        let start = first.max(window_start);
        let observed = now.saturating_since(start);

        let mut mistakes: Vec<Mistake> = Vec::with_capacity(self.closed.len() + 1);
        for &(s, e) in &self.closed {
            // Clip to the window; a partially-covered mistake still
            // counts, over its in-window portion.
            let cs = s.max(start);
            let ce = e.min(now);
            if cs < ce {
                mistakes.push(Mistake {
                    start: cs,
                    end: ce,
                    after_seq: 0,
                    censored: false,
                });
            }
        }
        // The open mistake (sweeper already fired S) — censored at now.
        let mut open = self.open_since;
        // The not-yet-swept tail: the last freshness point may already
        // have expired without a sweep having run. The replay pipeline
        // sees this tail because it closes the timeline at the horizon;
        // synthesize it here so a scrape between sweeps agrees.
        if open.is_none() && self.ever_trusted {
            if let Some(d) = self.last_decision {
                if d.trust_until < now {
                    open = Some(d.trust_until);
                }
            }
        }
        if let Some(s) = open {
            let cs = s.max(start);
            if cs < now {
                mistakes.push(Mistake {
                    start: cs,
                    end: now,
                    after_seq: 0,
                    censored: true,
                });
            }
        }
        mistakes.sort_by_key(|m| m.start);

        let (fresh, sum_worst) = self
            .td_samples
            .iter()
            .filter(|(at, _)| *at >= start)
            .fold((0u64, 0.0f64), |(n, s), (_, w)| (n + 1, s + w));

        QosMetrics::from_mistakes(&mistakes, observed, sum_worst, fresh, self.config.interval)
    }

    /// The verdict against the configured spec as of `now`. Without a
    /// spec the verdict is vacuously met.
    pub fn verdict_at(&mut self, now: Nanos) -> QosVerdict {
        match self.config.spec {
            None => QosVerdict {
                met: true,
                violated_axes: Vec::new(),
            },
            Some(spec) => {
                let metrics = self.metrics_at(now);
                judge(&spec, &metrics)
            }
        }
    }

    fn prune(&mut self, window_start: Nanos) {
        while let Some(&(at, _)) = self.td_samples.front() {
            if at < window_start {
                self.td_samples.pop_front();
            } else {
                break;
            }
        }
        while let Some(&(_, end)) = self.closed.front() {
            if end <= window_start {
                self.closed.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(trust_until: Nanos) -> Option<Decision> {
        Some(Decision { trust_until })
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn no_mistakes_means_perfect_accuracy() {
        let mut t = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        // Heartbeats every second, each trusted 1.5 s past its send.
        for seq in 0..10u64 {
            let arrival = Nanos(seq * SEC + SEC / 10);
            t.on_heartbeat(seq, arrival, decision(Nanos(seq * SEC + 3 * SEC / 2)));
        }
        let m = t.metrics_at(Nanos(9 * SEC + SEC / 4));
        assert_eq!(m.mistakes, 0);
        assert!((m.query_accuracy - 1.0).abs() < 1e-12);
        assert!((m.worst_detection_time - 1.5).abs() < 1e-12);
        // Average-case subtracts Δi/2.
        assert!((m.detection_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closed_mistake_counts_toward_rate_and_duration() {
        let mut t = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        t.on_heartbeat(0, Nanos(0), decision(Nanos(2 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(0));
        // Sweep fires S at the expired freshness point…
        t.on_transition(FdOutput::Suspect, Nanos(2 * SEC));
        // …and a late heartbeat restores trust 1 s later.
        t.on_heartbeat(1, Nanos(3 * SEC), decision(Nanos(5 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(3 * SEC));
        let m = t.metrics_at(Nanos(4 * SEC));
        assert_eq!(m.mistakes, 1);
        assert!((m.avg_mistake_duration - 1.0).abs() < 1e-12);
        assert!((m.mistake_rate - 1.0 / 4.0).abs() < 1e-12);
        assert!((m.query_accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unswept_expiry_is_synthesized_as_censored_tail() {
        let mut t = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        t.on_heartbeat(0, Nanos(0), decision(Nanos(2 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(0));
        // No sweeper ran, but the freshness point expired at 2 s; a
        // scrape at 3 s must still see 1 s of (censored) suspicion.
        let m = t.metrics_at(Nanos(3 * SEC));
        assert_eq!(m.mistakes, 1);
        assert!((m.query_accuracy - 2.0 / 3.0).abs() < 1e-12);
        // All-censored fallback: mean over censored spans.
        assert!((m.avg_mistake_duration - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_heartbeat_already_expired_opens_at_first_arrival() {
        let mut t = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        // trust_until == arrival → no Trust period (replay convention).
        t.on_heartbeat(0, Nanos(5 * SEC), decision(Nanos(5 * SEC)));
        let m = t.metrics_at(Nanos(7 * SEC));
        assert_eq!(m.mistakes, 1);
        // Observed from first arrival (5 s) to now (7 s), all suspect.
        assert!((m.query_accuracy - 0.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_forgets_old_mistakes() {
        let mut t = QosTracker::new(QosTrackerConfig {
            spec: None,
            interval: Span(SEC),
            window: Span(10 * SEC),
            origin: QosOrigin::Nominal,
        });
        t.on_heartbeat(0, Nanos(0), decision(Nanos(2 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(0));
        t.on_transition(FdOutput::Suspect, Nanos(2 * SEC));
        t.on_heartbeat(3, Nanos(3 * SEC), decision(Nanos(100 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(3 * SEC));
        // In-window at 5 s…
        assert_eq!(t.metrics_at(Nanos(5 * SEC)).mistakes, 1);
        // …fully aged out by 20 s (window start 10 s > mistake end 3 s).
        let m = t.metrics_at(Nanos(20 * SEC));
        assert_eq!(m.mistakes, 0);
        assert!((m.query_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn verdict_reports_violated_axes() {
        let spec = QosSpec::new(0.5, 100.0, 0.1);
        let mut t = QosTracker::new(QosTrackerConfig {
            spec: Some(spec),
            interval: Span(SEC),
            window: Span::MAX,
            origin: QosOrigin::Nominal,
        });
        // Worst TD = 2 s ⇒ avg TD = 1.5 s > 0.5 s bound. One 1 s
        // mistake in 4 s ⇒ rate 0.25 > 1/100, duration 1 s > 0.1 s.
        t.on_heartbeat(0, Nanos(0), decision(Nanos(2 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(0));
        t.on_transition(FdOutput::Suspect, Nanos(2 * SEC));
        t.on_heartbeat(1, Nanos(3 * SEC), decision(Nanos(5 * SEC)));
        t.on_transition(FdOutput::Trust, Nanos(3 * SEC));
        let v = t.verdict_at(Nanos(4 * SEC));
        assert!(!v.met);
        assert_eq!(
            v.violated_axes,
            vec![
                QosAxis::DetectionTime,
                QosAxis::MistakeRecurrence,
                QosAxis::MistakeDuration
            ]
        );

        // A tracker with no spec never complains.
        let mut free = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        free.on_heartbeat(0, Nanos(0), decision(Nanos(SEC)));
        assert!(free.verdict_at(Nanos(10 * SEC)).met);
    }

    #[test]
    fn recovered_closes_suspicion_without_a_mistake() {
        let mut t = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        t.on_heartbeat(1, Nanos(SEC), decision(Nanos(3 * SEC)));
        t.on_transition_kind(TransitionKind::Trust, Nanos(SEC));
        // The process crashes; the sweeper fires S at the horizon…
        t.on_transition_kind(TransitionKind::Suspect, Nanos(3 * SEC));
        // …and a restarted incarnation re-trusts 2 s later. The
        // suspicion was *correct*, so it must not count as a mistake.
        t.on_heartbeat(1, Nanos(5 * SEC), decision(Nanos(7 * SEC)));
        t.on_transition_kind(TransitionKind::Recovered, Nanos(5 * SEC));
        let m = t.metrics_at(Nanos(6 * SEC));
        assert_eq!(m.mistakes, 0);
        assert!((m.query_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_origin_absorbs_clock_offset() {
        // Sender clock 100 s ahead of nominal: every arrival lands at
        // j·Δi + 100 s + delay. Nominal anchoring would report a T_D of
        // ~100 s; the auto origin anchors on the fastest message.
        let offset = 100 * SEC;
        let cfg = QosTrackerConfig {
            origin: QosOrigin::Auto,
            ..QosTrackerConfig::cumulative(Span(SEC))
        };
        let mut auto_t = QosTracker::new(cfg);
        let mut nominal = QosTracker::new(QosTrackerConfig::cumulative(Span(SEC)));
        for seq in 1..=10u64 {
            let arrival = Nanos(seq * SEC + offset + SEC / 10);
            let d = decision(Nanos(arrival.0 + 3 * SEC / 2));
            auto_t.on_heartbeat(seq, arrival, d);
            nominal.on_heartbeat(seq, arrival, d);
        }
        let now = Nanos(11 * SEC + offset);
        let with_auto = auto_t.metrics_at(now);
        let with_nominal = nominal.metrics_at(now);
        // worst per sample ≈ (arrival + 1.5 s) − (j·Δi + min offset) =
        // 1.6 s once the offset is learned; the first sample pins it at
        // exactly trust_until − arrival = 1.5 s.
        assert!(with_auto.worst_detection_time < 2.0, "{with_auto:?}");
        assert!(
            with_nominal.worst_detection_time > 100.0,
            "{with_nominal:?}"
        );
    }

    #[test]
    fn auto_origin_re_anchors_on_incarnation_restart() {
        let cfg = QosTrackerConfig {
            origin: QosOrigin::Auto,
            ..QosTrackerConfig::cumulative(Span(SEC))
        };
        let mut t = QosTracker::new(cfg);
        // First incarnation runs for 50 heartbeats…
        for seq in 1..=50u64 {
            let arrival = Nanos(seq * SEC + SEC / 10);
            t.on_heartbeat(seq, arrival, decision(Nanos(arrival.0 + 3 * SEC / 2)));
        }
        // …then the restarted boot resets seq to 1 at t = 60 s. With
        // the stale anchor, σ(1) ≈ 1 s and T_D would read ~60 s.
        for seq in 1..=10u64 {
            let arrival = Nanos((60 + seq) * SEC + SEC / 10);
            t.on_heartbeat(seq, arrival, decision(Nanos(arrival.0 + 3 * SEC / 2)));
        }
        let m = t.metrics_at(Nanos(75 * SEC));
        assert!(m.worst_detection_time < 2.0, "{m:?}");
    }

    #[test]
    fn plan_resolution() {
        let uniform = QosPlan::Uniform(QosTrackerConfig::cumulative(Span(SEC)));
        assert!(uniform.config_for(&7).is_some());
        let per = QosPlan::PerStream(Arc::new(|k: &u64| {
            (*k).is_multiple_of(2)
                .then(|| QosTrackerConfig::cumulative(Span(SEC)))
        }));
        assert!(per.config_for(&4).is_some());
        assert!(per.config_for(&5).is_none());
    }
}
