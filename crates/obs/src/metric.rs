//! Lock-free metric primitives.
//!
//! Every primitive is a cheap `Arc` clone around one (or, for the
//! histogram, a fixed block of) `AtomicU64`; per-shard handles can be
//! cloned at construction time and updated from the hot path with a
//! single relaxed RMW — no lock, no contention between shards, and no
//! allocation after construction.
//!
//! ## The histogram layout
//!
//! [`Histogram`] uses a **fixed log-linear bucket grid** over
//! nanosecond-valued observations, the classic HDR-style compromise:
//! bucket bounds grow geometrically (so the range 1 µs … ~69 s fits in
//! ~100 buckets) but each power-of-two octave is split into
//! `2^`[`SUB_BITS`] linear sub-buckets (so relative error is bounded by
//! `2^-`[`SUB_BITS`] ≈ 25 % everywhere, not by a full octave). Bucket
//! indexing is pure bit arithmetic on the value — no search, no float
//! math — which keeps `observe` cheap enough for per-heartbeat use.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use twofd_sim::time::Span;

/// Ordering of the `count` increment in [`Histogram::observe_ns`].
///
/// `Release`, paired with the `Acquire` load in [`Histogram::count`]:
/// the count increment is the *last* write of an observation, so a
/// reader that sees `count == k` is guaranteed to also see at least `k`
/// bucket and sum increments — snapshots read count-first are never
/// ahead of the buckets. The model-check suite
/// (`crates/check/tests/obs_model.rs`) verifies exactly this invariant.
#[cfg(not(twofd_check))]
#[inline]
fn count_add_ordering() -> Ordering {
    Ordering::Release
}

/// Under the model-check cfg, `TWOFD_CHECK_MUTATE=1` deliberately
/// weakens the count increment to `Relaxed` so CI can assert the
/// checker catches the resulting snapshot inversion (a sensitivity
/// test proving the suite has teeth). Unset, behaves like production.
#[cfg(twofd_check)]
fn count_add_ordering() -> Ordering {
    if std::env::var_os("TWOFD_CHECK_MUTATE").is_some_and(|v| v == "1") {
        // ordering: Relaxed — the deliberate mutation this knob exists
        // for; the model-check suite asserts it is caught.
        Ordering::Relaxed
    } else {
        Ordering::Release
    }
}

/// A monotonically increasing counter.
///
/// Clones share the same cell, so a handle can be resolved once (e.g.
/// per shard) and bumped from the hot path without touching the
/// registry again.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    ///
    /// `Release` so that cross-counter invariants hold for readers:
    /// when code bumps counter A before counter B (e.g. `received`
    /// before `applied`/`dropped` in the shard runtime), a reader that
    /// `get`s B first and A second can never observe B ahead of A.
    /// Free on x86-64 (every RMW is already a full barrier) and cheap
    /// on AArch64 (`ldaxr`/`stlxr`); verified by the model-check suite.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Release);
    }

    /// Adds `n`. Same ordering contract as [`Counter::inc`].
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Release);
    }

    /// Current value (`Acquire`, pairing with the `Release` adds).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A gauge: an instantaneous `f64` value (stored as bits in one
/// `AtomicU64`). Used for queue depths, live/suspect tallies and the
/// online QoS estimates.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A fresh gauge at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    ///
    /// `Relaxed` is sound: a gauge is a single self-contained cell — no
    /// reader infers anything about *other* memory from its value, so
    /// there is no release/acquire pairing to maintain. Atomicity alone
    /// (no torn f64 bits) is the full contract.
    #[inline]
    pub fn set(&self, v: f64) {
        // ordering: Relaxed — single-cell gauge, no cross-variable protocol.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (CAS loop; gauges are not hot-path metrics).
    ///
    /// `Relaxed` is sound for the same single-cell reason as
    /// [`Gauge::set`]; the CAS loop itself guarantees the
    /// read-modify-write is lossless regardless of ordering.
    pub fn add(&self, delta: f64) {
        // ordering: Relaxed — single-cell gauge; the CAS loop alone makes
        // the read-modify-write lossless.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value (`Relaxed`: single-cell contract, see [`Gauge::set`]).
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — single-cell gauge, see `set`.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Linear sub-buckets per power-of-two octave: `2^SUB_BITS`.
pub const SUB_BITS: u32 = 2;
/// Smallest resolved octave: values below `2^MIN_EXP` ns (≈1 µs) share
/// the underflow bucket.
pub const MIN_EXP: u32 = 10;
/// Largest resolved octave: values at or above `2^MAX_EXP` ns (≈68.7 s)
/// share the overflow bucket.
pub const MAX_EXP: u32 = 36;

const SUBS: usize = 1 << SUB_BITS;
/// Finite buckets: one underflow + the log-linear grid. The overflow
/// bucket is only materialized as the `+Inf` sample at exposition.
pub const BUCKETS: usize = 1 + (MAX_EXP - MIN_EXP) as usize * SUBS + 1;

struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    /// Total of all observations, nanoseconds. Wraps after ~584 years
    /// of accumulated observed time.
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log-linear histogram of durations.
///
/// Observations are nanoseconds internally; exposition (and
/// [`Histogram::sum_secs`]) is in seconds, the Prometheus convention.
/// `observe` is one index computation plus two relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum_secs", &self.sum_secs())
            .finish()
    }
}

impl Histogram {
    /// A fresh empty histogram, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value of `ns` nanoseconds falls into.
    ///
    /// Buckets partition `[0, ∞)` into half-open ranges
    /// `[lower, upper)`; [`Histogram::bucket_upper_bounds`] lists the
    /// `upper` bounds (seconds) in index order.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        if ns < (1 << MIN_EXP) {
            return 0;
        }
        if ns >= (1 << MAX_EXP) {
            return BUCKETS - 1;
        }
        let octave = 63 - ns.leading_zeros(); // MIN_EXP..MAX_EXP-1
        let sub = (ns >> (octave - SUB_BITS)) as usize & (SUBS - 1);
        1 + (octave - MIN_EXP) as usize * SUBS + sub
    }

    /// Upper bounds (exclusive, in seconds) of every finite bucket, in
    /// index order. The last (overflow) bucket's bound is rendered as
    /// `+Inf`.
    pub fn bucket_upper_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(BUCKETS - 1);
        bounds.push((1u64 << MIN_EXP) as f64 / 1e9);
        for octave in MIN_EXP..MAX_EXP {
            for sub in 0..SUBS as u64 {
                let upper = (1u64 << octave) + (sub + 1) * (1u64 << (octave - SUB_BITS));
                bounds.push(upper as f64 / 1e9);
            }
        }
        bounds
    }

    /// Records a duration in nanoseconds.
    ///
    /// The bucket and sum adds are `Relaxed`: they carry no payload for
    /// other memory, and the *count* increment that follows is the
    /// `Release` publication point for the whole observation (see
    /// `count_add_ordering` in this module). A snapshot reading `count` first
    /// (`Acquire`) therefore sees every bucket/sum increment of the
    /// observations it counted — `sum(buckets) >= count` always holds
    /// for that read order, which `crates/check/tests/obs_model.rs`
    /// verifies exhaustively.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        // ordering: Relaxed — published by the Release count add below.
        self.0.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — published by the Release count add below.
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, count_add_ordering());
    }

    /// Records a [`Span`].
    #[inline]
    pub fn observe_span(&self, span: Span) {
        self.observe_ns(span.0);
    }

    /// Records a duration in seconds (negative values clamp to zero).
    pub fn observe_secs(&self, secs: f64) {
        self.observe_ns((secs.max(0.0) * 1e9) as u64);
    }

    /// Number of observations.
    ///
    /// `Acquire`, pairing with the `Release` count increment: a
    /// snapshot that calls `count()` before [`Histogram::bucket_counts`]
    /// / [`Histogram::sum_secs`] sees at least that many bucket and sum
    /// increments.
    pub fn count(&self) -> u64 {
        // xtask:allow(one_sided) — the pairing Release store exists:
        // `observe_ns` increments via `fetch_add(1, count_add_ordering())`,
        // where the helper returns `Ordering::Release` (and the
        // twofd_check build can deliberately weaken it). The static
        // pass cannot attribute an ordering that flows through a
        // helper fn; the pairing itself is model-checked in
        // crates/check/tests/obs_model.rs.
        self.0.count.load(Ordering::Acquire)
    }

    /// Sum of all observations, seconds.
    ///
    /// `Relaxed` is sound: visibility of the increments is established
    /// by the `Acquire` read in [`Histogram::count`] (snapshots read
    /// count first); the sum itself publishes nothing.
    pub fn sum_secs(&self) -> f64 {
        // ordering: Relaxed — visibility comes from the count-first
        // Acquire read (doc above).
        self.0.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Per-bucket (non-cumulative) counts, in index order.
    ///
    /// `Relaxed` is sound for the same reason as [`Histogram::sum_secs`]:
    /// the count-first `Acquire` read already ordered these loads after
    /// the increments they must observe.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            // ordering: Relaxed — visibility comes from the count-first
            // Acquire read (doc above).
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_totals() {
        let h = Histogram::new();
        h.observe_secs(0.001);
        h.observe_span(Span::from_millis(2));
        h.observe_ns(500); // underflow bucket
        assert_eq!(h.count(), 3);
        assert!((h.sum_secs() - 0.0030005).abs() < 1e-9);
        assert_eq!(h.bucket_counts()[0], 1);
    }

    /// Every value must land in the bucket whose half-open range
    /// contains it: `bounds[i-1] <= v < bounds[i]` (in ns). Checked over
    /// a deterministic pseudo-random sweep of the full u64 range plus
    /// all the boundary values themselves.
    #[test]
    fn bucket_indexing_matches_bounds() {
        let bounds_ns: Vec<u64> = Histogram::bucket_upper_bounds()
            .iter()
            .map(|b| (b * 1e9).round() as u64)
            .collect();
        assert_eq!(bounds_ns.len(), BUCKETS - 1);
        // Bounds are strictly increasing.
        assert!(bounds_ns.windows(2).all(|w| w[0] < w[1]));

        let check = |v: u64| {
            let i = Histogram::bucket_index(v);
            if i < bounds_ns.len() {
                assert!(v < bounds_ns[i], "v={v} bucket {i} upper {}", bounds_ns[i]);
            } else {
                assert!(v >= *bounds_ns.last().unwrap(), "v={v} in overflow");
            }
            if i > 0 && i <= bounds_ns.len() {
                assert!(
                    v >= bounds_ns[i - 1],
                    "v={v} bucket {i} lower {}",
                    bounds_ns[i - 1]
                );
            }
        };

        // Exact boundaries land in the bucket *above* (half-open ranges).
        for (i, &b) in bounds_ns.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(b), i + 1, "boundary {b}");
            check(b);
            check(b - 1);
            check(b + 1);
        }
        // Deterministic pseudo-random sweep (splitmix64).
        let mut x = 0x2BFD_0B55u64 ^ 0x9E37_79B9_7F4A_7C15;
        for _ in 0..20_000 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            check(z);
            check(z % (1 << 37)); // bias into the resolved range too
        }
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_width() {
        let bounds = Histogram::bucket_upper_bounds();
        // Within the resolved range, bucket width / lower bound <= 2^-SUB_BITS.
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo >= (1u64 << MIN_EXP) as f64 / 1e9 {
                assert!(
                    (hi - lo) / lo <= 1.0 / (1 << SUB_BITS) as f64 + 1e-12,
                    "bucket [{lo}, {hi}) too wide"
                );
            }
        }
    }
}
