//! A minimal std-only blocking HTTP listener for metrics exposition.
//!
//! Deliberately tiny: one accept thread, one request per connection
//! (`Connection: close`), two routes — `GET /metrics` (Prometheus text)
//! and `GET /healthz`. This is not a web framework; it exists so a
//! fleet monitor can be scraped without adding any dependency to the
//! workspace. The listener socket is non-blocking and the accept loop
//! polls a stop flag, so [`MetricsServer`] shuts down cleanly on drop.

use crate::expose::CONTENT_TYPE;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

type HealthCheck = Arc<dyn Fn() -> bool + Send + Sync>;

/// A background thread serving `GET /metrics` and `GET /healthz`.
///
/// Dropping the server stops the accept loop and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `registry`. `/healthz` always answers `200 ok`.
    pub fn spawn(addr: impl ToSocketAddrs, registry: Registry) -> std::io::Result<MetricsServer> {
        Self::spawn_with_health(addr, registry, Arc::new(|| true))
    }

    /// Like [`MetricsServer::spawn`], with a health predicate:
    /// `/healthz` answers `200 ok` while it returns true and
    /// `503 unhealthy` once it does not.
    pub fn spawn_with_health(
        addr: impl ToSocketAddrs,
        registry: Registry,
        healthy: HealthCheck,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("twofd-metrics".into())
            .spawn(move || accept_loop(listener, registry, healthy, stop_flag))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Registry,
    healthy: HealthCheck,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: exposition is cheap and scrapers are
                // few; a slow client is bounded by the write timeout.
                let _ = serve_one(stream, &registry, &healthy);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    healthy: &HealthCheck,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (or a small cap — we never
    // care about a body).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", CONTENT_TYPE, registry.render()),
        ("GET", "/healthz") => {
            if healthy() {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "unhealthy\n".to_string(),
                )
            }
        }
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        ),
    };

    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_health() {
        let registry = Registry::new();
        registry.counter("twofd_http_test_total", "hits").add(3);
        let server = MetricsServer::spawn("127.0.0.1:0", registry).expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("twofd_http_test_total 3"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.ends_with("ok\n"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn health_predicate_flips_to_503() {
        let healthy = Arc::new(AtomicBool::new(true));
        let flag = healthy.clone();
        let server = MetricsServer::spawn_with_health(
            "127.0.0.1:0",
            Registry::new(),
            Arc::new(move || flag.load(Ordering::Relaxed)),
        )
        .expect("bind");
        let addr = server.local_addr();
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        healthy.store(false, Ordering::Relaxed);
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 503"));
    }

    #[test]
    fn drop_joins_the_thread() {
        let server = MetricsServer::spawn("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = server.local_addr();
        drop(server);
        // The port is released once the accept loop exits.
        assert!(
            TcpStream::connect_timeout(&addr.clone(), Duration::from_millis(200)).is_err() || {
                // A connect may still succeed briefly on some platforms
                // (TIME_WAIT backlog); binding the port again is the real
                // proof the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }
}
