//! A registry of named metric families with label support.
//!
//! A **family** is one exposition name (`twofd_shard_received_total`),
//! one kind (counter / gauge / histogram), one help string and one label
//! schema; its **children** are the concrete metric cells, keyed by
//! label values. Resolving a child (`CounterVec::with`) takes the
//! registry lock once and returns a lock-free handle ([`Counter`],
//! [`Gauge`], [`Histogram`]) that the hot path updates without ever
//! touching the registry again — the intended pattern is *resolve at
//! construction, update forever*.
//!
//! Snapshot-style values (queue depths, live/suspect tallies, the
//! per-stream QoS estimates) are pulled, not pushed: a **scrape hook**
//! registered with [`Registry::on_scrape`] runs at the start of every
//! [`Registry::render`] call, before the exposition lock is taken, and
//! copies current state into gauges. Hooks must therefore not call
//! `render` themselves, but may freely resolve children.
//!
//! `Registry` is `Clone`; clones share the same family table, so one
//! registry can be threaded through the runtime, the service layer and
//! the HTTP exposition thread without an outer `Arc`.

use crate::metric::{Counter, Gauge, Histogram};
use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-linear duration histogram.
    Histogram,
}

#[derive(Clone)]
pub(crate) enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) label_names: Vec<String>,
    pub(crate) children: BTreeMap<Vec<String>, Cell>,
}

type Families = BTreeMap<String, Family>;
type ScrapeHook = Arc<dyn Fn() + Send + Sync>;

/// A shared table of metric families. See the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    pub(crate) families: Arc<Mutex<Families>>,
    hooks: Arc<Mutex<Vec<ScrapeHook>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("families", &families.keys().collect::<Vec<_>>())
            .finish()
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b.is_ascii_alphabetic() || b == b'_' || (i > 0 && b.is_ascii_digit()))
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&self, name: &str, help: &str, kind: MetricKind, labels: &[&str]) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        assert!(
            labels.iter().all(|l| valid_label_name(l)),
            "invalid label name in {labels:?}"
        );
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            label_names: labels.iter().map(|s| s.to_string()).collect(),
            children: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} re-registered with a different kind"
        );
        assert_eq!(
            family.label_names, labels,
            "metric {name} re-registered with a different label schema"
        );
    }

    fn child(&self, name: &str, values: &[&str]) -> Cell {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.get_mut(name).expect("family registered");
        assert_eq!(
            family.label_names.len(),
            values.len(),
            "metric {name}: {} label value(s) given, {} expected",
            values.len(),
            family.label_names.len()
        );
        let kind = family.kind;
        family
            .children
            .entry(values.iter().map(|s| s.to_string()).collect())
            .or_insert_with(|| match kind {
                MetricKind::Counter => Cell::Counter(Counter::new()),
                MetricKind::Gauge => Cell::Gauge(Gauge::new()),
                MetricKind::Histogram => Cell::Histogram(Histogram::new()),
            })
            .clone()
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_vec(name, help, &[]).with(&[])
    }

    /// Registers (or finds) a labeled counter family.
    pub fn counter_vec(&self, name: &str, help: &str, labels: &[&str]) -> CounterVec {
        self.family(name, help, MetricKind::Counter, labels);
        CounterVec {
            registry: self.clone(),
            name: name.to_string(),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_vec(name, help, &[]).with(&[])
    }

    /// Registers (or finds) a labeled gauge family.
    pub fn gauge_vec(&self, name: &str, help: &str, labels: &[&str]) -> GaugeVec {
        self.family(name, help, MetricKind::Gauge, labels);
        GaugeVec {
            registry: self.clone(),
            name: name.to_string(),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_vec(name, help, &[]).with(&[])
    }

    /// Registers (or finds) a labeled histogram family.
    pub fn histogram_vec(&self, name: &str, help: &str, labels: &[&str]) -> HistogramVec {
        self.family(name, help, MetricKind::Histogram, labels);
        HistogramVec {
            registry: self.clone(),
            name: name.to_string(),
        }
    }

    /// Exposes an *existing* counter handle under `name` — the adoption
    /// path for components that keep their own counters (so they work
    /// unregistered at zero extra cost) but want them scraped once a
    /// registry is attached.
    ///
    /// # Panics
    /// If `name` already has a child for these label values backed by a
    /// different cell.
    pub fn adopt_counter(&self, name: &str, help: &str, counter: &Counter) {
        self.adopt_counter_with(name, help, &[], &[], counter);
    }

    /// Labeled variant of [`Registry::adopt_counter`].
    pub fn adopt_counter_with(
        &self,
        name: &str,
        help: &str,
        labels: &[&str],
        values: &[&str],
        counter: &Counter,
    ) {
        self.family(name, help, MetricKind::Counter, labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.get_mut(name).expect("family registered");
        assert_eq!(family.label_names.len(), values.len());
        let displaced = family.children.insert(
            values.iter().map(|s| s.to_string()).collect(),
            Cell::Counter(counter.clone()),
        );
        assert!(displaced.is_none(), "metric {name}{values:?} adopted twice");
    }

    /// Registers a scrape hook, run at the start of every
    /// [`Registry::render`] (and therefore on every `/metrics` request)
    /// *before* the exposition lock is taken. Hooks may resolve and set
    /// metrics but must not call `render`.
    pub fn on_scrape(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.hooks
            .lock()
            .expect("registry poisoned")
            .push(Arc::new(hook));
    }

    /// Runs the scrape hooks and renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        let hooks: Vec<ScrapeHook> = self.hooks.lock().expect("registry poisoned").clone();
        for hook in hooks {
            hook();
        }
        crate::expose::render(self)
    }
}

macro_rules! vec_handle {
    ($(#[$doc:meta])* $name:ident, $cell:ident, $out:ty) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $name {
            registry: Registry,
            name: String,
        }

        impl $name {
            /// Resolves the child for these label values (creating it at
            /// zero if new) and returns its lock-free handle.
            ///
            /// # Panics
            /// If the number of values does not match the family's label
            /// schema.
            pub fn with(&self, values: &[&str]) -> $out {
                match self.registry.child(&self.name, values) {
                    Cell::$cell(c) => c,
                    _ => unreachable!("kind checked at registration"),
                }
            }

            /// The family's exposition name.
            pub fn name(&self) -> &str {
                &self.name
            }
        }
    };
}

vec_handle!(
    /// A labeled counter family; `with` resolves one counter per label
    /// combination.
    CounterVec,
    Counter,
    Counter
);
vec_handle!(
    /// A labeled gauge family; `with` resolves one gauge per label
    /// combination.
    GaugeVec,
    Gauge,
    Gauge
);
vec_handle!(
    /// A labeled histogram family; `with` resolves one histogram per
    /// label combination.
    HistogramVec,
    Histogram,
    Histogram
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_share_cells_across_resolutions() {
        let r = Registry::new();
        let v = r.counter_vec("twofd_test_total", "help", &["shard"]);
        v.with(&["0"]).inc();
        v.with(&["0"]).add(2);
        v.with(&["1"]).inc();
        assert_eq!(v.with(&["0"]).get(), 3);
        assert_eq!(v.with(&["1"]).get(), 1);
    }

    #[test]
    fn clones_share_the_table() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("twofd_a_total", "a").inc();
        assert_eq!(r2.counter("twofd_a_total", "a").get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("twofd_x", "x");
        let _ = r.gauge("twofd_x", "x");
    }

    #[test]
    #[should_panic(expected = "different label schema")]
    fn label_schema_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter_vec("twofd_x_total", "x", &["a"]);
        let _ = r.counter_vec("twofd_x_total", "x", &["b"]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let r = Registry::new();
        let _ = r.counter("0bad", "x");
    }

    #[test]
    fn adopted_counter_is_the_same_cell() {
        let r = Registry::new();
        let free = Counter::new();
        free.add(7);
        r.adopt_counter("twofd_adopted_total", "x", &free);
        free.inc();
        let rendered = r.render();
        assert!(rendered.contains("twofd_adopted_total 8"), "{rendered}");
    }

    #[test]
    fn scrape_hooks_run_before_render() {
        let r = Registry::new();
        let g = r.gauge("twofd_depth", "queue depth");
        let hook_gauge = g.clone();
        r.on_scrape(move || hook_gauge.set(42.0));
        assert!(r.render().contains("twofd_depth 42"));
    }
}
