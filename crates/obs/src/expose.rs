//! Prometheus text-format (0.0.4) rendering of a [`Registry`].
//!
//! One `# HELP` / `# TYPE` header per family, children in sorted label
//! order, histograms as cumulative `_bucket{le="…"}` series plus `_sum`
//! and `_count`. Values render with enough precision to round-trip an
//! `f64`; label values are escaped per the exposition spec (`\\`, `\"`,
//! `\n`).

use crate::metric::Histogram;
use crate::registry::{Cell, MetricKind, Registry};
use std::fmt::Write;

/// The `Content-Type` a scraper expects for this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Formats an `f64` the way Prometheus clients conventionally do:
/// shortest representation that round-trips, `+Inf`/`-Inf`/`NaN`
/// spelled out.
fn fmt_value(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        write!(out, "{v}").expect("write to String");
    }
}

/// Writes `name{label="value",…}` (omitting braces when empty). Extra
/// pairs (for `le=`) are appended after the family labels.
fn write_series(
    out: &mut String,
    name: &str,
    suffix: &str,
    names: &[String],
    values: &[String],
    extra: Option<(&str, &str)>,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !names.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (n, v) in names.iter().zip(values) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(n);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        if let Some((n, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(n);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
}

fn render_histogram(
    out: &mut String,
    name: &str,
    names: &[String],
    values: &[String],
    hist: &Histogram,
) {
    let bounds = Histogram::bucket_upper_bounds();
    let counts = hist.bucket_counts();
    let mut cumulative = 0u64;
    for (i, upper) in bounds.iter().enumerate() {
        cumulative += counts[i];
        let mut le = String::new();
        fmt_value(*upper, &mut le);
        write_series(out, name, "_bucket", names, values, Some(("le", &le)));
        let _ = writeln!(out, "{cumulative}");
    }
    // Overflow bucket folds into the mandatory +Inf sample.
    cumulative += counts[counts.len() - 1];
    write_series(out, name, "_bucket", names, values, Some(("le", "+Inf")));
    let _ = writeln!(out, "{cumulative}");
    write_series(out, name, "_sum", names, values, None);
    fmt_value(hist.sum_secs(), out);
    out.push('\n');
    write_series(out, name, "_count", names, values, None);
    let _ = writeln!(out, "{}", hist.count());
}

/// Renders every family in `registry` (scrape hooks are the caller's
/// concern — [`Registry::render`] runs them first).
pub(crate) fn render(registry: &Registry) -> String {
    let families = registry.families.lock().expect("registry poisoned");
    let mut out = String::with_capacity(4096);
    for (name, family) in families.iter() {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        escape_help(&family.help, &mut out);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(match family.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        });
        out.push('\n');
        for (values, cell) in &family.children {
            match cell {
                Cell::Counter(c) => {
                    write_series(&mut out, name, "", &family.label_names, values, None);
                    let _ = writeln!(out, "{}", c.get());
                }
                Cell::Gauge(g) => {
                    write_series(&mut out, name, "", &family.label_names, values, None);
                    fmt_value(g.get(), &mut out);
                    out.push('\n');
                }
                Cell::Histogram(h) => {
                    render_histogram(&mut out, name, &family.label_names, values, h);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges_with_labels() {
        let r = Registry::new();
        r.counter_vec("twofd_recv_total", "received", &["shard"])
            .with(&["0"])
            .add(5);
        r.gauge("twofd_depth", "queue depth").set(3.5);
        let text = r.render();
        assert!(text.contains("# HELP twofd_recv_total received"));
        assert!(text.contains("# TYPE twofd_recv_total counter"));
        assert!(text.contains("twofd_recv_total{shard=\"0\"} 5"));
        assert!(text.contains("# TYPE twofd_depth gauge"));
        assert!(text.contains("twofd_depth 3.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = Registry::new();
        let h = r.histogram("twofd_lat_seconds", "latency");
        h.observe_secs(0.002);
        h.observe_secs(0.002);
        h.observe_secs(1e9); // overflow bucket
        let text = r.render();
        assert!(text.contains("# TYPE twofd_lat_seconds histogram"));
        assert!(text.contains("twofd_lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("twofd_lat_seconds_count 3"));
        // The last finite bucket already holds both sub-overflow samples.
        let bounds = Histogram::bucket_upper_bounds();
        let mut last_finite = String::new();
        fmt_value(*bounds.last().unwrap(), &mut last_finite);
        assert!(
            text.contains(&format!(
                "twofd_lat_seconds_bucket{{le=\"{last_finite}\"}} 2"
            )),
            "{text}"
        );
        // Cumulative counts never decrease.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_vec("twofd_esc_total", "x", &["app"])
            .with(&["a\"b\\c\nd"])
            .inc();
        let text = r.render();
        assert!(
            text.contains(r#"twofd_esc_total{app="a\"b\\c\nd"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn special_float_values_render() {
        let r = Registry::new();
        r.gauge("twofd_inf", "x").set(f64::INFINITY);
        r.gauge("twofd_nan", "x").set(f64::NAN);
        let text = r.render();
        assert!(text.contains("twofd_inf +Inf"));
        assert!(text.contains("twofd_nan NaN"));
    }
}
