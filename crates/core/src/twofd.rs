//! The paper's contribution: the Two-Windows (Multiple-Windows) failure
//! detector.
//!
//! 2W-FD runs Chen's expected-arrival estimator over **two** sliding
//! windows simultaneously — a short-term one (size `n1`, paper best: 1)
//! that reacts instantly to bursts, and a long-term one (size `n2`, paper
//! best: 1000) that is immune to momentary fluctuations — and takes the
//! **maximum** of the two estimates when computing the freshness point
//! (Eq. 12):
//!
//! ```text
//! τ_{l+1} = max(EA_{l+1}(n1), EA_{l+1}(n2)) + Δto
//! ```
//!
//! Because the freshness point is never earlier than what either window
//! alone would produce, the detector only makes the mistakes *both*
//! single-window Chen detectors would make (Eq. 13):
//!
//! ```text
//! Mistakes(2W[n1,n2]) = Mistakes(Chen[n1]) ∩ Mistakes(Chen[n2])
//! ```
//!
//! [`MultiWindowFd`] generalizes to any number of windows; [`TwoWindowFd`]
//! is the two-window instantiation evaluated in the paper.

use crate::detector::{Decision, FailureDetector, FreshnessState};
use crate::estimator::ChenEstimator;
use twofd_sim::time::{Nanos, Span};

/// The generalized Multiple-Windows failure detector.
#[derive(Debug, Clone)]
pub struct MultiWindowFd {
    estimators: Vec<ChenEstimator>,
    safety_margin: Span,
    state: FreshnessState,
}

impl MultiWindowFd {
    /// Creates a detector with one Chen estimator per entry of `windows`.
    ///
    /// # Panics
    /// If `windows` is empty or contains a zero size.
    pub fn new(windows: &[usize], interval: Span, safety_margin: Span) -> Self {
        assert!(!windows.is_empty(), "need at least one window");
        MultiWindowFd {
            estimators: windows
                .iter()
                .map(|&w| ChenEstimator::new(w, interval))
                .collect(),
            safety_margin,
            state: FreshnessState::default(),
        }
    }

    /// The configured window sizes.
    pub fn windows(&self) -> Vec<usize> {
        self.estimators.iter().map(|e| e.window()).collect()
    }

    /// The configured safety margin Δto.
    pub fn safety_margin(&self) -> Span {
        self.safety_margin
    }

    /// Per-window expected next arrivals (for diagnostics / the window
    /// sweep experiment).
    pub fn expected_arrivals(&self) -> Vec<Option<Nanos>> {
        self.estimators
            .iter()
            .map(|e| e.expected_next_arrival())
            .collect()
    }
}

impl FailureDetector for MultiWindowFd {
    fn name(&self) -> String {
        let sizes: Vec<String> = self
            .estimators
            .iter()
            .map(|e| e.window().to_string())
            .collect();
        if sizes.len() == 2 {
            format!("2w-fd({})", sizes.join(","))
        } else {
            format!("mw-fd({})", sizes.join(","))
        }
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        if !self.state.accept(seq) {
            return None;
        }
        let mut max_ea = Nanos::ZERO;
        for est in &mut self.estimators {
            est.observe(seq, arrival);
            let ea = est
                .expected_next_arrival()
                .expect("estimator has at least one sample");
            max_ea = max_ea.max(ea);
        }
        let d = Decision {
            trust_until: max_ea + self.safety_margin,
        };
        self.state.decision = Some(d);
        Some(d)
    }

    fn current_decision(&self) -> Option<Decision> {
        self.state.decision
    }

    fn last_seq(&self) -> Option<u64> {
        self.state.last_seq
    }
}

/// The Two-Windows failure detector exactly as evaluated in the paper.
///
/// ```
/// use twofd_core::{FailureDetector, FdOutput, TwoWindowFd};
/// use twofd_sim::{Nanos, Span};
///
/// let interval = Span::from_millis(100);
/// let mut fd = TwoWindowFd::new(1, 1000, interval, Span::from_millis(40));
///
/// // Heartbeat 1, sent at 100 ms, arrives after a 10 ms delay.
/// let d = fd.on_heartbeat(1, Nanos::from_millis(110)).unwrap();
/// // Trusted until max(EA(1), EA(1000)) + Δto = 250 ms.
/// assert_eq!(d.trust_until, Nanos::from_millis(250));
/// assert_eq!(fd.output_at(Nanos::from_millis(200)), FdOutput::Trust);
/// assert_eq!(fd.output_at(Nanos::from_millis(250)), FdOutput::Suspect);
/// ```
#[derive(Debug, Clone)]
pub struct TwoWindowFd(MultiWindowFd);

impl TwoWindowFd {
    /// Creates a 2W-FD with a short window `n1` and a long window `n2`.
    ///
    /// The paper's recommended configuration is `n1 = 1`, `n2 = 1000`.
    pub fn new(n1: usize, n2: usize, interval: Span, safety_margin: Span) -> Self {
        TwoWindowFd(MultiWindowFd::new(&[n1, n2], interval, safety_margin))
    }

    /// The paper's recommended configuration: windows of 1 and 1000.
    pub fn paper_default(interval: Span, safety_margin: Span) -> Self {
        TwoWindowFd::new(1, 1000, interval, safety_margin)
    }

    /// The two window sizes `(n1, n2)`.
    pub fn window_sizes(&self) -> (usize, usize) {
        let w = self.0.windows();
        (w[0], w[1])
    }

    /// The configured safety margin Δto.
    pub fn safety_margin(&self) -> Span {
        self.0.safety_margin()
    }
}

impl FailureDetector for TwoWindowFd {
    fn name(&self) -> String {
        self.0.name()
    }
    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        self.0.on_heartbeat(seq, arrival)
    }
    fn current_decision(&self) -> Option<Decision> {
        self.0.current_decision()
    }
    fn last_seq(&self) -> Option<u64> {
        self.0.last_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chen::ChenFd;
    use proptest::prelude::*;

    const DI: Span = Span(100_000_000); // 100 ms
    const DTO: Span = Span(20_000_000); // 20 ms

    fn arrival(seq: u64, delay_ms: u64) -> Nanos {
        Nanos(seq * DI.0 + delay_ms * 1_000_000)
    }

    #[test]
    fn names() {
        assert_eq!(TwoWindowFd::new(1, 1000, DI, DTO).name(), "2w-fd(1,1000)");
        assert_eq!(
            MultiWindowFd::new(&[1, 10, 100], DI, DTO).name(),
            "mw-fd(1,10,100)"
        );
    }

    #[test]
    fn paper_default_windows() {
        let fd = TwoWindowFd::paper_default(DI, DTO);
        assert_eq!(fd.window_sizes(), (1, 1000));
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn rejects_empty_window_list() {
        MultiWindowFd::new(&[], DI, DTO);
    }

    /// The defining invariant (Eq. 12): the 2W freshness point equals the
    /// max of the two single-window Chen freshness points, heartbeat by
    /// heartbeat — even with losses and delay jumps.
    #[test]
    fn freshness_point_is_pointwise_max_of_chen() {
        let mut two = TwoWindowFd::new(1, 5, DI, DTO);
        let mut c1 = ChenFd::new(1, DI, DTO);
        let mut c5 = ChenFd::new(5, DI, DTO);
        let delays = [10, 12, 80, 9, 200, 15, 14, 13, 300, 11, 10, 10];
        let mut seq = 0;
        for (i, &d) in delays.iter().enumerate() {
            seq += if i % 4 == 3 { 2 } else { 1 }; // occasional loss
            let a = arrival(seq, d);
            let dt = two.on_heartbeat(seq, a).unwrap();
            let d1 = c1.on_heartbeat(seq, a).unwrap();
            let d5 = c5.on_heartbeat(seq, a).unwrap();
            assert_eq!(
                dt.trust_until,
                d1.trust_until.max(d5.trust_until),
                "divergence at seq {seq}"
            );
        }
    }

    #[test]
    fn equal_windows_degenerate_to_chen() {
        let mut two = TwoWindowFd::new(7, 7, DI, DTO);
        let mut chen = ChenFd::new(7, DI, DTO);
        for seq in 1..=50u64 {
            let a = arrival(seq, 10 + (seq % 7) * 3);
            assert_eq!(
                two.on_heartbeat(seq, a).unwrap(),
                chen.on_heartbeat(seq, a).unwrap()
            );
        }
    }

    #[test]
    fn stale_messages_ignored() {
        let mut fd = TwoWindowFd::new(1, 10, DI, DTO);
        fd.on_heartbeat(5, arrival(5, 10)).unwrap();
        assert!(fd.on_heartbeat(3, arrival(5, 11)).is_none());
        assert_eq!(fd.last_seq(), Some(5));
    }

    #[test]
    fn burst_recovery_short_window_dominates() {
        // After a burst of very slow heartbeats, the short window keeps
        // the freshness point far out while the long window would have
        // snapped back — 2W must follow the short window (the max).
        let mut two = TwoWindowFd::new(1, 100, DI, DTO);
        let mut long_only = ChenFd::new(100, DI, DTO);
        for seq in 1..=100u64 {
            two.on_heartbeat(seq, arrival(seq, 10));
            long_only.on_heartbeat(seq, arrival(seq, 10));
        }
        // Slow heartbeat: delay 400 ms.
        let d2 = two.on_heartbeat(101, arrival(101, 400)).unwrap();
        let dl = long_only.on_heartbeat(101, arrival(101, 400)).unwrap();
        assert!(d2.trust_until > dl.trust_until);
    }

    proptest! {
        /// Eq. 12 as a property over random traces, including losses and
        /// arbitrary window sizes.
        #[test]
        fn pointwise_max_property(
            delays in prop::collection::vec(0u64..400, 1..200),
            gaps in prop::collection::vec(1u64..4, 1..200),
            w1 in 1usize..50,
            w2 in 1usize..50,
        ) {
            let mut two = TwoWindowFd::new(w1, w2, DI, DTO);
            let mut a1 = ChenFd::new(w1, DI, DTO);
            let mut a2 = ChenFd::new(w2, DI, DTO);
            let mut seq = 0u64;
            for (d, g) in delays.iter().zip(gaps.iter().cycle()) {
                seq += g;
                let at = arrival(seq, *d);
                let dt = two.on_heartbeat(seq, at).unwrap().trust_until;
                let t1 = a1.on_heartbeat(seq, at).unwrap().trust_until;
                let t2 = a2.on_heartbeat(seq, at).unwrap().trust_until;
                prop_assert_eq!(dt, t1.max(t2));
            }
        }
    }
}
