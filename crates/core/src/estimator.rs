//! Chen's expected-arrival estimator (Eq. 2 of the paper).
//!
//! Given the last `n` received heartbeats with sequence numbers `s_i` and
//! arrival times `A_i`, the expected arrival of the next heartbeat
//! (sequence `l + 1`, where `l` is the largest sequence seen) is
//!
//! ```text
//! EA_{l+1} = (1/n) Σ (A_i − Δi · s_i)  +  (l + 1) · Δi
//! ```
//!
//! i.e. each arrival is normalized back to a "sequence-zero arrival
//! offset" (which, with honest clocks, is just that message's one-way
//! delay), the offsets are averaged, and the average is projected forward
//! to the next sequence number.
//!
//! [`ChenEstimator`] maintains this in O(1) per heartbeat with a
//! [`SumWindow`] over the normalized offsets — the window *size* is the
//! whole subject of the paper's Figure 4/5 sweep, and running two of
//! these with different sizes side by side is exactly the 2W-FD.

use crate::window::SumWindow;
use twofd_sim::time::{Nanos, Span};

/// O(1) sliding-window implementation of Chen's Eq. 2.
#[derive(Debug, Clone)]
pub struct ChenEstimator {
    /// Normalized offsets `A_i − Δi·s_i`, in nanoseconds.
    offsets: SumWindow,
    /// Heartbeat interval Δi.
    interval: Span,
    /// Largest sequence number seen so far (`None` before any sample).
    last_seq: Option<u64>,
}

impl ChenEstimator {
    /// Creates an estimator with window capacity `n` (must be positive).
    pub fn new(window: usize, interval: Span) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        ChenEstimator {
            offsets: SumWindow::new(window),
            interval,
            last_seq: None,
        }
    }

    /// Records the arrival of heartbeat `seq` at `arrival`.
    ///
    /// Samples may be offered in any order; each contributes its
    /// normalized offset to the window. `last_seq` tracks the maximum.
    pub fn observe(&mut self, seq: u64, arrival: Nanos) {
        // Normalized offset: arrival − Δi·seq. With u64 nanos this is
        // delay-sized and non-negative for honest traces, but clock skew
        // could make it negative — use i64 arithmetic (i128 to avoid
        // intermediate overflow, then narrow).
        let offset = arrival.0 as i128 - self.interval.0 as i128 * seq as i128;
        debug_assert!(
            offset >= i64::MIN as i128 && offset <= i64::MAX as i128,
            "normalized offset out of range"
        );
        self.offsets.push(offset as i64);
        self.last_seq = Some(self.last_seq.map_or(seq, |l| l.max(seq)));
    }

    /// Expected arrival time of heartbeat `l + 1` (Eq. 2), or `None`
    /// before the first sample.
    pub fn expected_next_arrival(&self) -> Option<Nanos> {
        let l = self.last_seq?;
        let mean_offset = self.offsets.mean()?;
        let ea = mean_offset + (l + 1) as f64 * self.interval.0 as f64;
        // A wildly skewed clock could push the projection negative;
        // clamp to the epoch.
        Some(Nanos(ea.max(0.0).round() as u64))
    }

    /// Expected arrival of an arbitrary future sequence number.
    pub fn expected_arrival_of(&self, seq: u64) -> Option<Nanos> {
        let mean_offset = self.offsets.mean()?;
        let ea = mean_offset + seq as f64 * self.interval.0 as f64;
        Some(Nanos(ea.max(0.0).round() as u64))
    }

    /// Largest sequence number observed.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The configured window capacity.
    pub fn window(&self) -> usize {
        self.offsets.capacity()
    }

    /// The heartbeat interval Δi this estimator assumes.
    pub fn interval(&self) -> Span {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const DI: Span = Span(100_000_000); // 100 ms

    #[test]
    fn empty_estimator_has_no_estimate() {
        let e = ChenEstimator::new(10, DI);
        assert!(e.is_empty());
        assert_eq!(e.expected_next_arrival(), None);
        assert_eq!(e.last_seq(), None);
    }

    #[test]
    fn constant_delay_predicts_exactly() {
        let mut e = ChenEstimator::new(100, DI);
        // Heartbeat i sent at i·Δi, arrives after a constant 12 ms.
        for seq in 1..=50u64 {
            e.observe(seq, Nanos(seq * DI.0 + 12_000_000));
        }
        let ea = e.expected_next_arrival().unwrap();
        assert_eq!(ea, Nanos(51 * DI.0 + 12_000_000));
    }

    #[test]
    fn window_one_tracks_only_latest() {
        let mut e = ChenEstimator::new(1, DI);
        e.observe(1, Nanos(DI.0 + 10_000_000));
        e.observe(2, Nanos(2 * DI.0 + 50_000_000)); // delay jumps to 50 ms
        let ea = e.expected_next_arrival().unwrap();
        // Only the latest offset (50 ms) matters.
        assert_eq!(ea, Nanos(3 * DI.0 + 50_000_000));
    }

    #[test]
    fn large_window_averages() {
        let mut e = ChenEstimator::new(2, DI);
        e.observe(1, Nanos(DI.0 + 10_000_000));
        e.observe(2, Nanos(2 * DI.0 + 30_000_000));
        // Mean offset = 20 ms.
        assert_eq!(
            e.expected_next_arrival().unwrap(),
            Nanos(3 * DI.0 + 20_000_000)
        );
    }

    #[test]
    fn skipped_sequences_project_correctly() {
        let mut e = ChenEstimator::new(10, DI);
        e.observe(1, Nanos(DI.0 + 5_000_000));
        e.observe(5, Nanos(5 * DI.0 + 5_000_000)); // 2..4 lost
        assert_eq!(e.last_seq(), Some(5));
        assert_eq!(
            e.expected_next_arrival().unwrap(),
            Nanos(6 * DI.0 + 5_000_000)
        );
    }

    #[test]
    fn out_of_order_arrivals_keep_max_seq() {
        let mut e = ChenEstimator::new(10, DI);
        e.observe(3, Nanos(3 * DI.0 + 5_000_000));
        e.observe(2, Nanos(3 * DI.0 + 6_000_000)); // late straggler
        assert_eq!(e.last_seq(), Some(3));
        // Projection still targets seq 4.
        let ea = e.expected_next_arrival().unwrap();
        assert!(ea > Nanos(4 * DI.0));
    }

    #[test]
    fn expected_arrival_of_specific_seq() {
        let mut e = ChenEstimator::new(10, DI);
        e.observe(1, Nanos(DI.0 + 7_000_000));
        assert_eq!(
            e.expected_arrival_of(10).unwrap(),
            Nanos(10 * DI.0 + 7_000_000)
        );
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn rejects_zero_interval() {
        ChenEstimator::new(1, Span::ZERO);
    }

    proptest! {
        /// The O(1) implementation must agree with a direct evaluation of
        /// Eq. 2 over the retained samples.
        #[test]
        fn matches_direct_eq2(
            delays in prop::collection::vec(0u64..500_000_000, 1..100),
            window in 1usize..20,
        ) {
            let mut e = ChenEstimator::new(window, DI);
            let mut samples: Vec<(u64, u64)> = Vec::new(); // (seq, arrival)
            for (i, &d) in delays.iter().enumerate() {
                let seq = i as u64 + 1;
                let arrival = seq * DI.0 + d;
                e.observe(seq, Nanos(arrival));
                samples.push((seq, arrival));
                if samples.len() > window {
                    samples.remove(0);
                }

                // Direct Eq. 2.
                let n = samples.len() as f64;
                let l = samples.iter().map(|&(s, _)| s).max().unwrap();
                let mean_offset: f64 = samples
                    .iter()
                    .map(|&(s, a)| a as f64 - DI.0 as f64 * s as f64)
                    .sum::<f64>() / n;
                let direct = mean_offset + (l + 1) as f64 * DI.0 as f64;

                let got = e.expected_next_arrival().unwrap().0 as f64;
                prop_assert!((got - direct).abs() <= 1.0, "got {got}, direct {direct}");
            }
        }
    }
}
