//! # twofd-core — 2W-FD and baseline failure detectors with QoS
//!
//! This crate is the paper's primary contribution plus everything it is
//! compared against and configured by:
//!
//! * **Algorithms** — [`TwoWindowFd`] (and its generalization
//!   [`MultiWindowFd`]), [`ChenFd`], [`BertierFd`], [`PhiAccrualFd`] and
//!   [`EdFd`], all behind the uniform [`FailureDetector`] trait.
//! * **Evaluation** — [`replay()`](replay::replay) reconstructs a detector's full
//!   Trust/Suspect timeline over a heartbeat trace; [`QosMetrics`]
//!   aggregates the paper's four metrics (T_D, T_MR, T_M, P_A);
//!   [`calibrate()`](calibrate::calibrate) solves each algorithm's knob for a target detection
//!   time.
//! * **Configuration** — [`configure`] implements Chen's QoS
//!   configuration procedure (Eqs. 14–16) mapping a requirement tuple
//!   plus network behaviour to `(Δi, Δto)`; [`NetworkEstimator`]
//!   estimates `pL`/`V(D)` online.
//!
//! ## Quick example
//!
//! ```
//! use twofd_core::{replay, FailureDetector, TwoWindowFd};
//! use twofd_trace::WanTraceConfig;
//! use twofd_sim::Span;
//!
//! let trace = WanTraceConfig::small(5_000, 42).generate();
//! let mut fd = TwoWindowFd::new(1, 1000, trace.interval, Span::from_millis(50));
//! let result = replay(&mut fd, &trace);
//! let m = result.metrics();
//! assert!(m.query_accuracy > 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bertier;
pub mod calibrate;
pub mod chen;
pub mod detector;
pub mod ed;
pub mod estimator;
pub mod heap;
pub mod impact;
pub mod math;
pub mod metrics;
pub mod multi;
pub mod netest;
pub mod phi;
pub mod qos;
pub mod replay;
pub mod slab;
pub mod suite;
pub mod timeline;
pub mod twofd;
pub mod wheel;
pub mod window;

pub use bertier::{BertierFd, BertierParams};
pub use calibrate::{calibrate, measure_td, Calibration};
pub use chen::ChenFd;
pub use detector::{Decision, FailureDetector, FdOutput};
pub use ed::{EdConfig, EdFd};
pub use estimator::ChenEstimator;
pub use heap::HeapProcessSet;
pub use impact::ImpactFd;
pub use metrics::{mistakes_by_segment, Mistake, QosMetrics};
pub use multi::{
    DetectorBuilder, ProcessSet, ProcessStatus, SharedFactory, StreamTransition, TransitionKind,
};
pub use netest::NetworkEstimator;
pub use phi::{PhiAccrualFd, PhiConfig};
pub use qos::{configure, recurrence_lower_bound, ConfigError, FdConfig, NetworkBehavior, QosSpec};
pub use replay::{detect_crash, replay, ReplayResult};
pub use slab::{HotSlot, StreamSlab};
pub use suite::{AnyDetector, DetectorConfig, DetectorSpec, ParseSpecError};
pub use timeline::{Timeline, Transition};
pub use twofd::{MultiWindowFd, TwoWindowFd};
pub use wheel::{TimingWheel, WheelEntry};

// Re-exported so downstream code can name trace segments without an
// explicit twofd-trace dependency.
pub use twofd_trace::Segment;
