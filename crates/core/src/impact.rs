//! The per-process member detector of the Impact FD.
//!
//! The Impact FD (Rossetto, Geyer, Arantes & Sens — see PAPERS.md) is a
//! *set-valued* failure detector: each monitored process carries an
//! **impact factor** expressing how much its loss degrades the system,
//! and the group-level output is the sum of the factors of the
//! currently-trusted members, compared against an acceptance threshold.
//! The group aggregation lives in `twofd-federation`, where the
//! federated view of several monitors is available; what belongs here is
//! the per-process building block that feeds it.
//!
//! [`ImpactFd`] is that building block: a deliberately simple
//! constant-timeout detector (`trust_until = arrival + Δi + Δto`) in the
//! style the Impact FD paper assumes for its per-member `trusted` sets.
//! It rides the same [`FailureDetector`] trait as the paper's five
//! algorithms, so it slots into [`crate::suite::AnyDetector`], the
//! sharded runtime, and the replay engine unchanged — the impact factor
//! is structural metadata carried alongside, exposed via
//! [`ImpactFd::factor`] for the group aggregator to read.

use crate::detector::{Decision, FailureDetector, FreshnessState};
use twofd_sim::time::{Nanos, Span};

/// Per-process member detector of the Impact FD: constant timeout plus
/// an impact factor consumed by the group-level aggregation.
#[derive(Debug, Clone)]
pub struct ImpactFd {
    state: FreshnessState,
    /// Fixed freshness horizon after each heartbeat: Δi + Δto.
    horizon: Span,
    /// The process's impact factor (structural, not a tuning knob).
    factor: usize,
}

impl ImpactFd {
    /// Builds a member detector with the given impact factor, heartbeat
    /// interval Δi and safety margin Δto.
    pub fn new(factor: usize, interval: Span, margin: Span) -> Self {
        ImpactFd {
            state: FreshnessState::default(),
            horizon: Span(interval.0.saturating_add(margin.0)),
            factor,
        }
    }

    /// The process's impact factor — how much weight this member
    /// contributes to the group's trust sum while trusted.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// The fixed freshness horizon (Δi + Δto) applied after each fresh
    /// heartbeat.
    pub fn horizon(&self) -> Span {
        self.horizon
    }
}

impl FailureDetector for ImpactFd {
    fn name(&self) -> String {
        format!("impact({})", self.factor)
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        if !self.state.accept(seq) {
            return None;
        }
        let d = Decision {
            trust_until: Nanos(arrival.0.saturating_add(self.horizon.0)),
        };
        self.state.decision = Some(d);
        Some(d)
    }

    fn current_decision(&self) -> Option<Decision> {
        self.state.decision
    }

    fn last_seq(&self) -> Option<u64> {
        self.state.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::FdOutput;

    const DI: Span = Span(100_000_000);

    #[test]
    fn trusts_for_interval_plus_margin() {
        let mut fd = ImpactFd::new(3, DI, Span::from_millis(50));
        let d = fd.on_heartbeat(1, Nanos(1_000)).unwrap();
        assert_eq!(d.trust_until, Nanos(1_000 + DI.0 + 50_000_000));
        assert_eq!(fd.output_at(Nanos(d.trust_until.0 - 1)), FdOutput::Trust);
        assert_eq!(fd.output_at(d.trust_until), FdOutput::Suspect);
    }

    #[test]
    fn stale_sequence_numbers_are_ignored() {
        let mut fd = ImpactFd::new(1, DI, Span::ZERO);
        assert!(fd.on_heartbeat(5, Nanos(1_000)).is_some());
        assert!(fd.on_heartbeat(5, Nanos(2_000)).is_none());
        assert!(fd.on_heartbeat(4, Nanos(3_000)).is_none());
        assert_eq!(fd.last_seq(), Some(5));
    }

    #[test]
    fn name_carries_the_impact_factor() {
        let fd = ImpactFd::new(7, DI, Span::ZERO);
        assert_eq!(fd.name(), "impact(7)");
        assert_eq!(fd.factor(), 7);
    }

    #[test]
    fn suspect_before_any_heartbeat() {
        let fd = ImpactFd::new(2, DI, Span::ZERO);
        assert_eq!(fd.output_at(Nanos(10_000_000_000)), FdOutput::Suspect);
        assert!(fd.current_decision().is_none());
    }
}
