//! Uniform construction of every detector in the paper's comparison.
//!
//! The evaluation sweeps each algorithm's tuning knob to trace out its
//! detection-time/accuracy curve: the safety margin `Δto` for Chen and
//! 2W-FD, the threshold `Φ` for the φ FD, the exponent `κ` for the ED FD
//! — and nothing for Bertier, which is parameter-free and appears as a
//! single point. [`DetectorSpec`] abstracts over "which algorithm, with
//! which window(s)" so the bench harnesses can iterate one list.

use crate::bertier::BertierFd;
use crate::chen::ChenFd;
use crate::detector::FailureDetector;
use crate::ed::EdFd;
use crate::phi::PhiAccrualFd;
use crate::twofd::{MultiWindowFd, TwoWindowFd};
use serde::{Deserialize, Serialize};
use twofd_sim::time::Span;

/// An algorithm plus its structural (non-swept) parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorSpec {
    /// Chen's FD with the given estimation window.
    Chen {
        /// Sliding-window size for Eq. 2.
        window: usize,
    },
    /// Bertier's FD with the given estimation window (no tuning knob).
    Bertier {
        /// Sliding-window size for Eq. 2.
        window: usize,
    },
    /// The φ accrual FD with the given sampling window.
    Phi {
        /// Inter-arrival sampling-window size.
        window: usize,
    },
    /// The ED accrual FD with the given sampling window.
    Ed {
        /// Inter-arrival sampling-window size.
        window: usize,
    },
    /// The paper's 2W-FD with short window `n1` and long window `n2`.
    TwoWindow {
        /// Short (reactive) window size.
        n1: usize,
        /// Long (conservative) window size.
        n2: usize,
    },
    /// The generalized multi-window FD.
    MultiWindow {
        /// All window sizes.
        windows: Vec<usize>,
    },
}

impl DetectorSpec {
    /// The full comparison set of §IV-C2 with the paper's window choices.
    pub fn paper_comparison() -> Vec<DetectorSpec> {
        vec![
            DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
            DetectorSpec::Chen { window: 1 },
            DetectorSpec::Chen { window: 1000 },
            DetectorSpec::Phi { window: 1000 },
            DetectorSpec::Ed { window: 1000 },
            DetectorSpec::Bertier { window: 1000 },
        ]
    }

    /// Whether the algorithm has a tuning knob (`false` only for
    /// Bertier).
    pub fn has_tuning(&self) -> bool {
        !matches!(self, DetectorSpec::Bertier { .. })
    }

    /// The meaning of the `tuning` argument to [`DetectorSpec::build`].
    pub fn tuning_label(&self) -> &'static str {
        match self {
            DetectorSpec::Chen { .. }
            | DetectorSpec::TwoWindow { .. }
            | DetectorSpec::MultiWindow { .. } => "Δto (s)",
            DetectorSpec::Phi { .. } => "Φ",
            DetectorSpec::Ed { .. } => "κ",
            DetectorSpec::Bertier { .. } => "(none)",
        }
    }

    /// A short display name without the tuning value.
    pub fn label(&self) -> String {
        match self {
            DetectorSpec::Chen { window } => format!("chen({window})"),
            DetectorSpec::Bertier { window } => format!("bertier({window})"),
            DetectorSpec::Phi { window } => format!("phi({window})"),
            DetectorSpec::Ed { window } => format!("ed({window})"),
            DetectorSpec::TwoWindow { n1, n2 } => format!("2w-fd({n1},{n2})"),
            DetectorSpec::MultiWindow { windows } => {
                let s: Vec<String> = windows.iter().map(|w| w.to_string()).collect();
                format!("mw-fd({})", s.join(","))
            }
        }
    }

    /// Instantiates the detector.
    ///
    /// `interval` is the sender's heartbeat interval Δi. `tuning` is the
    /// algorithm's swept knob: the safety margin Δto **in seconds** for
    /// Chen-family detectors, the threshold Φ for φ, the exponent κ for
    /// ED; it is ignored for Bertier.
    pub fn build(&self, interval: Span, tuning: f64) -> Box<dyn FailureDetector + Send> {
        match self {
            DetectorSpec::Chen { window } => Box::new(ChenFd::new(
                *window,
                interval,
                Span::from_secs_f64(tuning.max(0.0)),
            )),
            DetectorSpec::Bertier { window } => Box::new(BertierFd::new(*window, interval)),
            DetectorSpec::Phi { window } => Box::new(PhiAccrualFd::with_threshold(*window, tuning)),
            DetectorSpec::Ed { window } => Box::new(EdFd::with_kappa(*window, tuning)),
            DetectorSpec::TwoWindow { n1, n2 } => Box::new(TwoWindowFd::new(
                *n1,
                *n2,
                interval,
                Span::from_secs_f64(tuning.max(0.0)),
            )),
            DetectorSpec::MultiWindow { windows } => Box::new(MultiWindowFd::new(
                windows,
                interval,
                Span::from_secs_f64(tuning.max(0.0)),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_sim::time::Nanos;

    const DI: Span = Span(100_000_000);

    #[test]
    fn paper_comparison_has_six_entries() {
        let set = DetectorSpec::paper_comparison();
        assert_eq!(set.len(), 6);
        assert_eq!(set[0].label(), "2w-fd(1,1000)");
    }

    #[test]
    fn only_bertier_lacks_tuning() {
        for spec in DetectorSpec::paper_comparison() {
            let expect = !matches!(spec, DetectorSpec::Bertier { .. });
            assert_eq!(spec.has_tuning(), expect, "{}", spec.label());
        }
    }

    #[test]
    fn build_produces_working_detectors() {
        for spec in DetectorSpec::paper_comparison() {
            let mut fd = spec.build(DI, 1.0);
            let d = fd.on_heartbeat(1, Nanos(DI.0 + 10_000_000));
            assert!(d.is_some(), "{} rejected a fresh heartbeat", spec.label());
            assert!(fd.on_heartbeat(1, Nanos(DI.0 + 20_000_000)).is_none());
        }
    }

    #[test]
    fn labels_match_detector_names() {
        // label() (spec-level) must prefix/agree with name() (instance).
        let spec = DetectorSpec::Chen { window: 5 };
        let fd = spec.build(DI, 0.1);
        assert_eq!(fd.name(), "chen(5)");
        assert_eq!(spec.label(), "chen(5)");
    }

    #[test]
    fn negative_margin_clamps_to_zero() {
        let spec = DetectorSpec::Chen { window: 1 };
        let mut fd = spec.build(DI, -5.0);
        let d = fd.on_heartbeat(1, Nanos(DI.0 + 10_000_000)).unwrap();
        // Δto = 0: trust exactly until EA_2.
        assert_eq!(d.trust_until, Nanos(2 * DI.0 + 10_000_000));
    }

    #[test]
    fn multi_window_spec_builds() {
        let spec = DetectorSpec::MultiWindow {
            windows: vec![1, 10, 100],
        };
        let fd = spec.build(DI, 0.05);
        assert_eq!(fd.name(), "mw-fd(1,10,100)");
        assert_eq!(spec.tuning_label(), "Δto (s)");
    }

    #[test]
    fn tuning_labels() {
        assert_eq!(DetectorSpec::Phi { window: 1 }.tuning_label(), "Φ");
        assert_eq!(DetectorSpec::Ed { window: 1 }.tuning_label(), "κ");
        assert_eq!(DetectorSpec::Bertier { window: 1 }.tuning_label(), "(none)");
    }
}
