//! Uniform construction of every detector in the paper's comparison —
//! the workspace's **single** detector-construction path.
//!
//! The evaluation sweeps each algorithm's tuning knob to trace out its
//! detection-time/accuracy curve: the safety margin `Δto` for Chen and
//! 2W-FD, the threshold `Φ` for the φ FD, the exponent `κ` for the ED FD
//! — and nothing for Bertier, which is parameter-free and appears as a
//! single point. [`DetectorSpec`] abstracts over "which algorithm, with
//! which window(s)" so the bench harnesses can iterate one list, and
//! every runtime layer (replay, the UDP monitor, the sharded fleet
//! runtime, the shared service) instantiates detectors through it:
//!
//! * [`DetectorSpec::build_any`] returns an [`AnyDetector`] — a closed
//!   enum over the five algorithms, statically dispatched via `match`.
//!   This is the hot-path constructor: an `AnyDetector` lives **inline**
//!   in whatever table owns it (no per-stream heap allocation) and its
//!   `observe`/`output` calls compile to a jump table instead of a
//!   vtable load, which matters when a shard owns tens of thousands of
//!   detectors.
//! * [`DetectorSpec::build`] boxes the same value as
//!   `Box<dyn FailureDetector + Send>` for callers that genuinely want
//!   type erasure (external plug-in detectors, tests of the `dyn` path).
//! * [`DetectorConfig`] pairs a spec with the two runtime inputs every
//!   build needs (heartbeat interval, tuning knob) so a complete
//!   construction recipe can travel through configs and across threads.
//!
//! Specs also have a canonical text form (`Display`/`FromStr`, the same
//! grammar `label()` prints) so they can live in config files.

use crate::bertier::BertierFd;
use crate::chen::ChenFd;
use crate::detector::{Decision, FailureDetector, FdOutput};
use crate::ed::EdFd;
use crate::impact::ImpactFd;
use crate::phi::PhiAccrualFd;
use crate::twofd::{MultiWindowFd, TwoWindowFd};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use twofd_sim::time::{Nanos, Span};

/// An algorithm plus its structural (non-swept) parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorSpec {
    /// Chen's FD with the given estimation window.
    Chen {
        /// Sliding-window size for Eq. 2.
        window: usize,
    },
    /// Bertier's FD with the given estimation window (no tuning knob).
    Bertier {
        /// Sliding-window size for Eq. 2.
        window: usize,
    },
    /// The φ accrual FD with the given sampling window.
    Phi {
        /// Inter-arrival sampling-window size.
        window: usize,
    },
    /// The ED accrual FD with the given sampling window.
    Ed {
        /// Inter-arrival sampling-window size.
        window: usize,
    },
    /// The paper's 2W-FD with short window `n1` and long window `n2`.
    TwoWindow {
        /// Short (reactive) window size.
        n1: usize,
        /// Long (conservative) window size.
        n2: usize,
    },
    /// The generalized multi-window FD.
    MultiWindow {
        /// All window sizes.
        windows: Vec<usize>,
    },
    /// The Impact FD's per-process member detector: constant timeout
    /// `Δi + Δto`, carrying the process's impact factor for the
    /// federation tier's set-valued group aggregation.
    Impact {
        /// The process's impact factor (structural, not swept).
        factor: usize,
    },
}

impl Default for DetectorSpec {
    /// The paper's own configuration: 2W-FD with `n1 = 1`, `n2 = 1000`
    /// (§IV-C2's featured operating point).
    fn default() -> Self {
        DetectorSpec::TwoWindow { n1: 1, n2: 1000 }
    }
}

impl DetectorSpec {
    /// The full comparison set of §IV-C2 with the paper's window choices.
    pub fn paper_comparison() -> Vec<DetectorSpec> {
        vec![
            DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
            DetectorSpec::Chen { window: 1 },
            DetectorSpec::Chen { window: 1000 },
            DetectorSpec::Phi { window: 1000 },
            DetectorSpec::Ed { window: 1000 },
            DetectorSpec::Bertier { window: 1000 },
        ]
    }

    /// Whether the algorithm has a tuning knob (`false` only for
    /// Bertier).
    pub fn has_tuning(&self) -> bool {
        !matches!(self, DetectorSpec::Bertier { .. })
    }

    /// The meaning of the `tuning` argument to [`DetectorSpec::build`].
    pub fn tuning_label(&self) -> &'static str {
        match self {
            DetectorSpec::Chen { .. }
            | DetectorSpec::TwoWindow { .. }
            | DetectorSpec::MultiWindow { .. }
            | DetectorSpec::Impact { .. } => "Δto (s)",
            DetectorSpec::Phi { .. } => "Φ",
            DetectorSpec::Ed { .. } => "κ",
            DetectorSpec::Bertier { .. } => "(none)",
        }
    }

    /// A short display name without the tuning value.
    pub fn label(&self) -> String {
        match self {
            DetectorSpec::Chen { window } => format!("chen({window})"),
            DetectorSpec::Bertier { window } => format!("bertier({window})"),
            DetectorSpec::Phi { window } => format!("phi({window})"),
            DetectorSpec::Ed { window } => format!("ed({window})"),
            DetectorSpec::TwoWindow { n1, n2 } => format!("2w-fd({n1},{n2})"),
            DetectorSpec::MultiWindow { windows } => {
                let s: Vec<String> = windows.iter().map(|w| w.to_string()).collect();
                format!("mw-fd({})", s.join(","))
            }
            DetectorSpec::Impact { factor } => format!("impact({factor})"),
        }
    }

    /// Instantiates the detector inline, without boxing.
    ///
    /// `interval` is the sender's heartbeat interval Δi. `tuning` is the
    /// algorithm's swept knob: the safety margin Δto **in seconds** for
    /// Chen-family detectors, the threshold Φ for φ, the exponent κ for
    /// ED; it is ignored for Bertier.
    pub fn build_any(&self, interval: Span, tuning: f64) -> AnyDetector {
        let margin = Span::from_secs_f64(tuning.max(0.0));
        match self {
            DetectorSpec::Chen { window } => {
                AnyDetector::Chen(ChenFd::new(*window, interval, margin))
            }
            DetectorSpec::Bertier { window } => {
                AnyDetector::Bertier(BertierFd::new(*window, interval))
            }
            DetectorSpec::Phi { window } => {
                AnyDetector::Phi(PhiAccrualFd::with_threshold(*window, tuning))
            }
            DetectorSpec::Ed { window } => AnyDetector::Ed(EdFd::with_kappa(*window, tuning)),
            DetectorSpec::TwoWindow { n1, n2 } => {
                AnyDetector::TwoWindow(TwoWindowFd::new(*n1, *n2, interval, margin))
            }
            DetectorSpec::MultiWindow { windows } => {
                AnyDetector::MultiWindow(MultiWindowFd::new(windows, interval, margin))
            }
            DetectorSpec::Impact { factor } => {
                AnyDetector::Impact(ImpactFd::new(*factor, interval, margin))
            }
        }
    }

    /// Instantiates the detector behind a `Box<dyn FailureDetector>`.
    ///
    /// Compatibility constructor for callers that want type erasure (for
    /// example to mix paper detectors with external implementations of
    /// the trait). Runtime hot paths should prefer
    /// [`DetectorSpec::build_any`], which allocates nothing and
    /// dispatches statically.
    pub fn build(&self, interval: Span, tuning: f64) -> Box<dyn FailureDetector + Send> {
        Box::new(self.build_any(interval, tuning))
    }
}

impl fmt::Display for DetectorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Why a detector-spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid detector spec: {}", self.reason)
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for DetectorSpec {
    type Err = ParseSpecError;

    /// Parses the canonical `label()` grammar: `chen(W)`, `bertier(W)`,
    /// `phi(W)`, `ed(W)`, `2w-fd(N1,N2)`, `mw-fd(N1,N2,...)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: String| ParseSpecError { reason };
        let s = s.trim();
        let (name, rest) = s
            .split_once('(')
            .ok_or_else(|| err(format!("missing '(' in {s:?}")))?;
        let args = rest
            .strip_suffix(')')
            .ok_or_else(|| err(format!("missing ')' in {s:?}")))?;
        let windows: Vec<usize> = args
            .split(',')
            .map(|w| {
                w.trim()
                    .parse::<usize>()
                    .map_err(|_| err(format!("bad window {w:?} in {s:?}")))
            })
            .collect::<Result<_, _>>()?;
        let arity = |n: usize| {
            if windows.len() == n {
                Ok(())
            } else {
                Err(err(format!(
                    "{name} takes {n} window(s), got {}",
                    windows.len()
                )))
            }
        };
        match name.trim() {
            "chen" => arity(1).map(|()| DetectorSpec::Chen { window: windows[0] }),
            "bertier" => arity(1).map(|()| DetectorSpec::Bertier { window: windows[0] }),
            "phi" => arity(1).map(|()| DetectorSpec::Phi { window: windows[0] }),
            "ed" => arity(1).map(|()| DetectorSpec::Ed { window: windows[0] }),
            "2w-fd" => arity(2).map(|()| DetectorSpec::TwoWindow {
                n1: windows[0],
                n2: windows[1],
            }),
            "mw-fd" => {
                if windows.is_empty() {
                    Err(err("mw-fd needs at least one window".into()))
                } else {
                    Ok(DetectorSpec::MultiWindow { windows })
                }
            }
            "impact" => arity(1).map(|()| DetectorSpec::Impact { factor: windows[0] }),
            other => Err(err(format!("unknown algorithm {other:?}"))),
        }
    }
}

/// A complete detector-construction recipe: which algorithm
/// ([`DetectorSpec`]) plus the two runtime inputs every build needs.
///
/// This is the unit that travels through configuration — the sharded
/// fleet runtime, the UDP monitor and the service layer all accept it —
/// so "which detector watches this stream" is a value, not a closure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The algorithm and its structural parameters.
    pub spec: DetectorSpec,
    /// The sender's heartbeat interval Δi.
    pub interval: Span,
    /// The swept knob: Δto in seconds for the Chen family, Φ for φ, κ
    /// for ED (ignored for Bertier). See [`DetectorSpec::tuning_label`].
    pub tuning: f64,
}

impl Default for DetectorConfig {
    /// The paper's featured configuration: 2W-FD(1,1000) on the
    /// evaluation's 100 ms heartbeat interval with a 100 ms margin.
    fn default() -> Self {
        DetectorConfig {
            spec: DetectorSpec::default(),
            interval: Span::from_millis(100),
            tuning: 0.1,
        }
    }
}

impl DetectorConfig {
    /// Bundles a spec with its runtime inputs.
    pub fn new(spec: DetectorSpec, interval: Span, tuning: f64) -> Self {
        DetectorConfig {
            spec,
            interval,
            tuning,
        }
    }

    /// A recipe from the QoS configuration procedure's output: the
    /// derived `(Δi, Δto)` drive the spec's interval and margin knob.
    pub fn from_qos(spec: DetectorSpec, qos: &crate::qos::FdConfig) -> Self {
        DetectorConfig {
            spec,
            interval: qos.interval,
            tuning: qos.safety_margin.as_secs_f64(),
        }
    }

    /// Instantiates the detector inline (the hot-path constructor).
    pub fn build(&self) -> AnyDetector {
        self.spec.build_any(self.interval, self.tuning)
    }

    /// Instantiates the detector boxed (type-erasure compat path).
    pub fn build_boxed(&self) -> Box<dyn FailureDetector + Send> {
        self.spec.build(self.interval, self.tuning)
    }
}

/// Every algorithm of the paper's comparison as one inline value.
///
/// `AnyDetector` is to [`DetectorSpec`] what an instance is to a recipe:
/// [`DetectorSpec::build_any`] produces it, and it implements
/// [`FailureDetector`] by `match`ing to the concrete algorithm —
/// static dispatch, no heap allocation, `Clone`-able. Store it inline
/// in per-stream tables (the sharded runtime keeps one per monitored
/// stream); reach for `Box<dyn FailureDetector>` only when mixing in
/// detector implementations outside this enum.
#[derive(Debug, Clone)]
pub enum AnyDetector {
    /// Chen's FD (Eq. 2 estimation, constant margin).
    Chen(ChenFd),
    /// Bertier's FD (dynamic margin, parameter-free).
    Bertier(BertierFd),
    /// The φ accrual FD.
    Phi(PhiAccrualFd),
    /// The ED accrual FD.
    Ed(EdFd),
    /// The paper's 2W-FD.
    TwoWindow(TwoWindowFd),
    /// The generalized multi-window FD.
    MultiWindow(MultiWindowFd),
    /// The Impact FD's per-process member detector.
    Impact(ImpactFd),
}

/// Dispatches a method call to the concrete algorithm.
macro_rules! any_dispatch {
    ($self:expr, $fd:ident => $body:expr) => {
        match $self {
            AnyDetector::Chen($fd) => $body,
            AnyDetector::Bertier($fd) => $body,
            AnyDetector::Phi($fd) => $body,
            AnyDetector::Ed($fd) => $body,
            AnyDetector::TwoWindow($fd) => $body,
            AnyDetector::MultiWindow($fd) => $body,
            AnyDetector::Impact($fd) => $body,
        }
    };
}

impl FailureDetector for AnyDetector {
    fn name(&self) -> String {
        any_dispatch!(self, fd => fd.name())
    }

    #[inline]
    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        any_dispatch!(self, fd => fd.on_heartbeat(seq, arrival))
    }

    #[inline]
    fn current_decision(&self) -> Option<Decision> {
        any_dispatch!(self, fd => fd.current_decision())
    }

    #[inline]
    fn last_seq(&self) -> Option<u64> {
        any_dispatch!(self, fd => fd.last_seq())
    }

    #[inline]
    fn output_at(&self, t: Nanos) -> FdOutput {
        any_dispatch!(self, fd => fd.output_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_sim::time::Nanos;

    const DI: Span = Span(100_000_000);

    #[test]
    fn paper_comparison_has_six_entries() {
        let set = DetectorSpec::paper_comparison();
        assert_eq!(set.len(), 6);
        assert_eq!(set[0].label(), "2w-fd(1,1000)");
    }

    #[test]
    fn only_bertier_lacks_tuning() {
        for spec in DetectorSpec::paper_comparison() {
            let expect = !matches!(spec, DetectorSpec::Bertier { .. });
            assert_eq!(spec.has_tuning(), expect, "{}", spec.label());
        }
    }

    #[test]
    fn build_produces_working_detectors() {
        for spec in DetectorSpec::paper_comparison() {
            let mut fd = spec.build(DI, 1.0);
            let d = fd.on_heartbeat(1, Nanos(DI.0 + 10_000_000));
            assert!(d.is_some(), "{} rejected a fresh heartbeat", spec.label());
            assert!(fd.on_heartbeat(1, Nanos(DI.0 + 20_000_000)).is_none());
        }
    }

    #[test]
    fn labels_match_detector_names() {
        // label() (spec-level) must prefix/agree with name() (instance).
        let spec = DetectorSpec::Chen { window: 5 };
        let fd = spec.build(DI, 0.1);
        assert_eq!(fd.name(), "chen(5)");
        assert_eq!(spec.label(), "chen(5)");
    }

    #[test]
    fn negative_margin_clamps_to_zero() {
        let spec = DetectorSpec::Chen { window: 1 };
        let mut fd = spec.build(DI, -5.0);
        let d = fd.on_heartbeat(1, Nanos(DI.0 + 10_000_000)).unwrap();
        // Δto = 0: trust exactly until EA_2.
        assert_eq!(d.trust_until, Nanos(2 * DI.0 + 10_000_000));
    }

    #[test]
    fn multi_window_spec_builds() {
        let spec = DetectorSpec::MultiWindow {
            windows: vec![1, 10, 100],
        };
        let fd = spec.build(DI, 0.05);
        assert_eq!(fd.name(), "mw-fd(1,10,100)");
        assert_eq!(spec.tuning_label(), "Δto (s)");
    }

    #[test]
    fn tuning_labels() {
        assert_eq!(DetectorSpec::Phi { window: 1 }.tuning_label(), "Φ");
        assert_eq!(DetectorSpec::Ed { window: 1 }.tuning_label(), "κ");
        assert_eq!(DetectorSpec::Bertier { window: 1 }.tuning_label(), "(none)");
    }

    #[test]
    fn default_spec_is_the_papers_two_window() {
        assert_eq!(
            DetectorSpec::default(),
            DetectorSpec::TwoWindow { n1: 1, n2: 1000 }
        );
        assert_eq!(DetectorConfig::default().spec, DetectorSpec::default());
    }

    #[test]
    fn build_any_matches_boxed_build() {
        for spec in DetectorSpec::paper_comparison() {
            let mut inline = spec.build_any(DI, 1.0);
            let mut boxed = spec.build(DI, 1.0);
            assert_eq!(inline.name(), boxed.name());
            for seq in 1..=20u64 {
                let at = Nanos(seq * DI.0 + (seq % 7) * 3_000_000);
                assert_eq!(
                    inline.on_heartbeat(seq, at),
                    boxed.on_heartbeat(seq, at),
                    "{} diverged at seq {seq}",
                    spec.label()
                );
            }
            assert_eq!(inline.current_decision(), boxed.current_decision());
            assert_eq!(inline.last_seq(), boxed.last_seq());
        }
    }

    #[test]
    fn spec_text_codec_round_trips() {
        let mut all = DetectorSpec::paper_comparison();
        all.push(DetectorSpec::MultiWindow {
            windows: vec![1, 30, 1000],
        });
        all.push(DetectorSpec::Impact { factor: 4 });
        for spec in all {
            let text = spec.to_string();
            assert_eq!(text, spec.label());
            assert_eq!(text.parse::<DetectorSpec>().unwrap(), spec, "{text}");
        }
    }

    #[test]
    fn spec_parse_rejects_malformed_input() {
        for bad in [
            "",
            "chen",
            "chen()",
            "chen(1,2)",
            "2w-fd(1)",
            "mw-fd()",
            "warp(3)",
            "phi(-1)",
            "ed(1",
            "impact()",
            "impact(1,2)",
        ] {
            assert!(bad.parse::<DetectorSpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn impact_spec_builds_the_member_detector() {
        let spec = DetectorSpec::Impact { factor: 5 };
        let mut fd = spec.build_any(DI, 0.05);
        assert_eq!(fd.name(), "impact(5)");
        assert_eq!(spec.label(), "impact(5)");
        assert_eq!(spec.tuning_label(), "Δto (s)");
        assert!(spec.has_tuning());
        // Constant timeout: trust for Δi + Δto past the arrival.
        let d = fd.on_heartbeat(1, Nanos(DI.0)).unwrap();
        assert_eq!(d.trust_until, Nanos(2 * DI.0 + 50_000_000));
    }

    #[test]
    fn detector_config_builds_inline_and_boxed() {
        let cfg = DetectorConfig::new(DetectorSpec::Chen { window: 5 }, DI, 0.1);
        let mut inline = cfg.build();
        let mut boxed = cfg.build_boxed();
        assert_eq!(inline.name(), "chen(5)");
        let at = Nanos(DI.0 + 10_000_000);
        assert_eq!(inline.on_heartbeat(1, at), boxed.on_heartbeat(1, at));
    }

    #[test]
    fn detector_config_from_qos_uses_derived_parameters() {
        let qos = crate::qos::FdConfig {
            interval: DI,
            safety_margin: Span::from_millis(250),
        };
        let cfg = DetectorConfig::from_qos(DetectorSpec::default(), &qos);
        assert_eq!(cfg.interval, DI);
        assert!((cfg.tuning - 0.25).abs() < 1e-12);
    }
}
