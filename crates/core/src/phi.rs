//! The φ accrual failure detector (§II-B3 of the paper).
//!
//! Instead of a binary output, the φ FD maintains a *suspicion level*
//!
//! ```text
//! φ(T_now) = −log10( P_later(T_now − T_last) )
//! ```
//!
//! where `P_later` is the probability that a heartbeat arrives more than
//! the given time after the previous one, under a normal fit of the
//! windowed inter-arrival samples (Eqs. 7–9). A binary detector is
//! obtained by suspecting when `φ ≥ Φ` for a threshold Φ — the tuning
//! parameter the paper sweeps in Figures 6/7.
//!
//! Because `φ` is monotone in elapsed time, the threshold crossing has a
//! closed form: suspicion starts at `T_last + μ + σ·z(Φ)` where `z(Φ)`
//! is the standard-normal quantile of `1 − 10^{−Φ}`. That instant is this
//! implementation's [`Decision::trust_until`], which makes the φ FD
//! replayable through the same engine as the freshness-point detectors.

use crate::detector::{Decision, FailureDetector, FreshnessState};
use crate::math::{inverse_normal_cdf, normal_sf};
use crate::window::MomentsWindow;
use twofd_sim::time::{Nanos, Span};

/// Configuration of the φ accrual detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiConfig {
    /// Inter-arrival sampling-window size (paper: 1000).
    pub window: usize,
    /// Suspicion threshold Φ.
    pub threshold: f64,
    /// Lower clamp on the fitted standard deviation, seconds. Guards the
    /// degenerate perfectly-periodic case where σ → 0 would make the
    /// detector suspect the instant a heartbeat is microseconds late.
    pub min_std: f64,
    /// Timeout granted after the very first heartbeat, before any
    /// inter-arrival sample exists.
    pub bootstrap: Span,
}

impl PhiConfig {
    /// The paper's configuration: window 1000, with the given threshold.
    pub fn paper_default(threshold: f64) -> Self {
        PhiConfig {
            window: 1000,
            threshold,
            min_std: 1e-5,
            bootstrap: Span::from_secs(2),
        }
    }
}

/// The φ accrual failure detector.
#[derive(Debug, Clone)]
pub struct PhiAccrualFd {
    config: PhiConfig,
    interarrivals: MomentsWindow,
    last_arrival: Option<Nanos>,
    state: FreshnessState,
}

impl PhiAccrualFd {
    /// Creates the detector.
    ///
    /// # Panics
    /// If the threshold is not positive.
    pub fn new(config: PhiConfig) -> Self {
        assert!(config.threshold > 0.0, "phi threshold must be positive");
        assert!(config.min_std > 0.0, "min_std must be positive");
        PhiAccrualFd {
            interarrivals: MomentsWindow::new(config.window),
            config,
            last_arrival: None,
            state: FreshnessState::default(),
        }
    }

    /// Convenience constructor with the paper's defaults.
    pub fn with_threshold(window: usize, threshold: f64) -> Self {
        PhiAccrualFd::new(PhiConfig {
            window,
            ..PhiConfig::paper_default(threshold)
        })
    }

    /// Fitted inter-arrival mean/std-dev in seconds, if any samples.
    pub fn fit(&self) -> Option<(f64, f64)> {
        let mean = self.interarrivals.mean()?;
        let std = self
            .interarrivals
            .std_dev()
            .unwrap_or(0.0)
            .max(self.config.min_std);
        Some((mean, std))
    }

    /// The suspicion level φ at time `now` (Eq. 7); `None` before the
    /// first heartbeat, 0 before the first inter-arrival sample.
    pub fn phi(&self, now: Nanos) -> Option<f64> {
        let last = self.last_arrival?;
        let (mean, std) = match self.fit() {
            Some(f) => f,
            None => return Some(0.0),
        };
        let elapsed = now.saturating_since(last).as_secs_f64();
        let p_later = normal_sf(elapsed, mean, std).max(f64::MIN_POSITIVE);
        Some(-p_later.log10())
    }

    /// The elapsed time after which φ reaches the threshold: `μ + σ·z`
    /// with `z = Φ⁻¹(1 − 10^{−Φ})`, computed through the lower tail for
    /// numerical stability at large Φ.
    fn timeout_secs(&self, mean: f64, std: f64) -> f64 {
        let p_tail = 10f64.powf(-self.config.threshold).max(1e-300);
        // z such that SF(z) = p_tail  ⇔  z = −Φ⁻¹(p_tail).
        let z = -inverse_normal_cdf(p_tail);
        (mean + std * z).max(0.0)
    }

    /// The configured threshold Φ.
    pub fn threshold(&self) -> f64 {
        self.config.threshold
    }
}

impl FailureDetector for PhiAccrualFd {
    fn name(&self) -> String {
        format!(
            "phi({},Φ={:.2})",
            self.interarrivals.capacity(),
            self.config.threshold
        )
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        if !self.state.accept(seq) {
            return None;
        }
        if let Some(last) = self.last_arrival {
            // A reordered fresh message can in principle arrive at a
            // timestamp before the previous fresh arrival; clamp at zero.
            self.interarrivals
                .push(arrival.saturating_since(last).as_secs_f64());
        }
        self.last_arrival = Some(arrival);
        let trust_until = match self.fit() {
            Some((mean, std)) => arrival + Span::from_secs_f64(self.timeout_secs(mean, std)),
            None => arrival + self.config.bootstrap,
        };
        let d = Decision { trust_until };
        self.state.decision = Some(d);
        Some(d)
    }

    fn current_decision(&self) -> Option<Decision> {
        self.state.decision
    }

    fn last_seq(&self) -> Option<u64> {
        self.state.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::FdOutput;

    const DI: Span = Span(100_000_000); // 100 ms

    fn arrival(seq: u64, delay_ms: u64) -> Nanos {
        Nanos(seq * DI.0 + delay_ms * 1_000_000)
    }

    fn warmed_up(threshold: f64) -> PhiAccrualFd {
        // min_std of 20 ms keeps the z-values in these tests inside the
        // range where the normal tail is representable in f64.
        let mut fd = PhiAccrualFd::new(PhiConfig {
            window: 1000,
            threshold,
            min_std: 0.02,
            bootstrap: Span::from_secs(2),
        });
        for seq in 1..=500u64 {
            // Small jitter so sigma is realistic.
            let d = 10 + (seq % 5);
            fd.on_heartbeat(seq, arrival(seq, d));
        }
        fd
    }

    #[test]
    fn bootstrap_timeout_applies_to_first_heartbeat() {
        let mut fd = PhiAccrualFd::new(PhiConfig {
            window: 10,
            threshold: 1.0,
            min_std: 1e-5,
            bootstrap: Span::from_secs(3),
        });
        let d = fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        assert_eq!(d.trust_until, arrival(1, 10) + Span::from_secs(3));
    }

    #[test]
    fn phi_grows_with_elapsed_time() {
        let fd = warmed_up(1.0);
        let last = arrival(500, 10);
        let phi_soon = fd.phi(last + Span::from_millis(50)).unwrap();
        let phi_later = fd.phi(last + Span::from_millis(300)).unwrap();
        let phi_much_later = fd.phi(last + Span::from_millis(700)).unwrap();
        assert!(phi_soon < phi_later);
        assert!(phi_later < phi_much_later);
        assert!(phi_much_later > 10.0);
    }

    #[test]
    fn threshold_crossing_matches_phi() {
        // trust_until must be (to numerical tolerance) the instant at
        // which phi() reaches the threshold.
        let threshold = 2.0;
        let mut fd = warmed_up(threshold);
        let d = fd.on_heartbeat(501, arrival(501, 12)).unwrap();
        let just_before = d.trust_until - Span::from_micros(200);
        let just_after = d.trust_until + Span::from_micros(200);
        assert!(fd.phi(just_before).unwrap() < threshold);
        assert!(fd.phi(just_after).unwrap() >= threshold * 0.999);
    }

    #[test]
    fn higher_threshold_waits_longer() {
        let mut aggressive = warmed_up(0.5);
        let mut conservative = warmed_up(8.0);
        let a = aggressive.on_heartbeat(501, arrival(501, 12)).unwrap();
        let c = conservative.on_heartbeat(501, arrival(501, 12)).unwrap();
        assert!(c.trust_until > a.trust_until);
    }

    #[test]
    fn very_large_threshold_stays_finite() {
        let mut fd = warmed_up(50.0);
        let d = fd.on_heartbeat(501, arrival(501, 12)).unwrap();
        assert!(d.trust_until > arrival(501, 12));
        assert!(d.trust_until < arrival(501, 12) + Span::from_secs(60));
    }

    #[test]
    fn min_std_bounds_aggressiveness() {
        // Perfectly periodic arrivals: sigma would be 0; min_std keeps
        // the timeout at least mean + z·min_std.
        let mut fd = PhiAccrualFd::new(PhiConfig {
            window: 100,
            threshold: 1.0,
            min_std: 0.01,
            bootstrap: Span::from_secs(2),
        });
        for seq in 1..=50u64 {
            fd.on_heartbeat(seq, arrival(seq, 10));
        }
        let (_, std) = fd.fit().unwrap();
        assert!((std - 0.01).abs() < 1e-12);
    }

    #[test]
    fn output_transitions_at_trust_until() {
        let mut fd = warmed_up(1.0);
        let d = fd.on_heartbeat(501, arrival(501, 10)).unwrap();
        assert_eq!(fd.output_at(d.trust_until - Span(1)), FdOutput::Trust);
        assert_eq!(fd.output_at(d.trust_until), FdOutput::Suspect);
    }

    #[test]
    fn stale_messages_ignored() {
        let mut fd = warmed_up(1.0);
        assert!(fd.on_heartbeat(400, arrival(501, 10)).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_non_positive_threshold() {
        PhiAccrualFd::with_threshold(10, 0.0);
    }
}
