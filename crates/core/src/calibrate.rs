//! Calibrating a detector's tuning knob to hit a target detection time.
//!
//! The per-period analysis (Figure 8) and the mistake-overlap experiment
//! (Figure 9) compare detectors *at the same detection time*
//! (`T_D = 215 ms` in the paper), so each algorithm's knob must first be
//! solved for: "which Δto (or Φ, or κ) makes this detector's average
//! detection time equal the target on this trace?"
//!
//! Average detection time is monotone non-decreasing in every knob the
//! suite exposes, so a bracketing bisection on replays suffices; for the
//! Chen family it is *exactly linear* in Δto (τ = EA + Δto shifts every
//! freshness point by the same amount), which [`calibrate`] exploits to
//! finish in two replays instead of ~40.

use crate::replay::replay;
use crate::suite::DetectorSpec;
use twofd_trace::Trace;

/// The result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The knob value achieving the target.
    pub tuning: f64,
    /// The detection time actually measured at that knob value, seconds.
    pub achieved_td: f64,
}

/// Measures the average detection time of `spec` at `tuning` on `trace`.
pub fn measure_td(spec: &DetectorSpec, trace: &Trace, tuning: f64) -> f64 {
    let mut fd = spec.build_any(trace.interval, tuning);
    replay(&mut fd, trace).metrics().detection_time
}

/// Finds the knob value at which `spec`'s average detection time on
/// `trace` is `target_td` seconds (within `tol` seconds).
///
/// Returns `None` when the spec has no tuning knob (Bertier), or when the
/// target is unreachable: below the detector's minimum detection time
/// (knob at zero) or above what `max_tuning` yields.
pub fn calibrate(
    spec: &DetectorSpec,
    trace: &Trace,
    target_td: f64,
    tol: f64,
    max_tuning: f64,
) -> Option<Calibration> {
    assert!(target_td > 0.0 && tol > 0.0 && max_tuning > 0.0);
    if !spec.has_tuning() {
        return None;
    }

    // Chen-family shortcut: TD(Δto) = TD(0) + Δto exactly.
    if matches!(
        spec,
        DetectorSpec::Chen { .. }
            | DetectorSpec::TwoWindow { .. }
            | DetectorSpec::MultiWindow { .. }
    ) {
        let base = measure_td(spec, trace, 0.0);
        if target_td < base - tol {
            return None; // cannot go below the zero-margin floor
        }
        let tuning = (target_td - base).max(0.0);
        let achieved = measure_td(spec, trace, tuning);
        return Some(Calibration {
            tuning,
            achieved_td: achieved,
        });
    }

    // Accrual detectors: bracketing bisection. The knob floor is just
    // above zero (Φ/κ must be positive).
    let lo_knob = 1e-6;
    let mut lo = lo_knob;
    let lo_td = measure_td(spec, trace, lo);
    if lo_td > target_td + tol {
        return None;
    }
    let mut hi = max_tuning;
    let hi_td = measure_td(spec, trace, hi);
    if hi_td < target_td - tol {
        return None;
    }
    // Run the bisection to convergence instead of stopping at the first
    // knob within `tol`: returning early hands the detector up to `tol`
    // of extra (or missing) detection time, a real mistake-count bias
    // when the Chen family is calibrated to the target exactly.
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if measure_td(spec, trace, mid) < target_td {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let tuning = 0.5 * (lo + hi);
    Some(Calibration {
        tuning,
        achieved_td: measure_td(spec, trace, tuning),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_trace::WanTraceConfig;

    fn small_trace() -> Trace {
        WanTraceConfig::small(8_000, 21).generate()
    }

    #[test]
    fn chen_family_calibrates_in_closed_form() {
        let trace = small_trace();
        for spec in [
            DetectorSpec::Chen { window: 1 },
            DetectorSpec::Chen { window: 100 },
            DetectorSpec::TwoWindow { n1: 1, n2: 100 },
        ] {
            let base = measure_td(&spec, &trace, 0.0);
            let target = base + 0.250;
            let cal = calibrate(&spec, &trace, target, 0.002, 10.0).unwrap();
            assert!(
                (cal.achieved_td - target).abs() < 0.002,
                "{}: achieved {} vs target {}",
                spec.label(),
                cal.achieved_td,
                target
            );
            assert!((cal.tuning - 0.250).abs() < 0.002);
        }
    }

    #[test]
    fn chen_target_below_floor_is_unreachable() {
        let trace = small_trace();
        let spec = DetectorSpec::Chen { window: 1 };
        let base = measure_td(&spec, &trace, 0.0);
        assert!(calibrate(&spec, &trace, base * 0.5, 0.001, 10.0).is_none());
    }

    #[test]
    fn accrual_detectors_calibrate_by_bisection() {
        let trace = small_trace();
        for spec in [
            DetectorSpec::Phi { window: 1000 },
            DetectorSpec::Ed { window: 1000 },
        ] {
            let floor = measure_td(&spec, &trace, 1e-6);
            let target = floor + 0.300;
            let cal = calibrate(&spec, &trace, target, 0.005, 100.0)
                .unwrap_or_else(|| panic!("{} failed to calibrate", spec.label()));
            assert!(
                (cal.achieved_td - target).abs() < 0.01,
                "{}: achieved {} vs target {}",
                spec.label(),
                cal.achieved_td,
                target
            );
        }
    }

    #[test]
    fn bertier_has_no_knob() {
        let trace = small_trace();
        assert!(calibrate(
            &DetectorSpec::Bertier { window: 1000 },
            &trace,
            0.5,
            0.01,
            10.0
        )
        .is_none());
    }

    #[test]
    fn td_is_monotone_in_the_knob() {
        let trace = small_trace();
        for spec in [
            DetectorSpec::Chen { window: 100 },
            DetectorSpec::Phi { window: 1000 },
            DetectorSpec::Ed { window: 1000 },
        ] {
            let knobs = [0.1, 0.5, 1.0, 2.0, 4.0];
            let tds: Vec<f64> = knobs
                .iter()
                .map(|&k| measure_td(&spec, &trace, k))
                .collect();
            for w in tds.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{}: TD not monotone: {tds:?}",
                    spec.label()
                );
            }
        }
    }
}
