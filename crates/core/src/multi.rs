//! Monitoring many processes with one detector bank.
//!
//! The paper's model is one monitor `q` watching one process `p`; a real
//! deployment (and the service vision of §V) watches a *fleet*. A
//! [`ProcessSet`] owns one failure-detector instance per monitored
//! process, keyed by an application-chosen identifier, with uniform
//! construction via a factory closure and bulk status queries.
//!
//! The per-process detectors are fully independent — exactly `n` copies
//! of the paper's two-process model — so all single-process QoS results
//! carry over unchanged.

use crate::detector::{Decision, FailureDetector, FdOutput};
use std::collections::HashMap;
use std::hash::Hash;
use twofd_sim::time::Nanos;

/// A bank of per-process failure detectors.
pub struct ProcessSet<K, F> {
    factory: F,
    detectors: HashMap<K, Box<dyn FailureDetector + Send>>,
}

/// A snapshot of one monitored process's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessStatus<K> {
    /// The process key.
    pub key: K,
    /// Current output.
    pub output: FdOutput,
    /// Largest heartbeat sequence number seen.
    pub last_seq: Option<u64>,
    /// The instant suspicion will start if no further heartbeat arrives.
    pub trust_until: Option<Nanos>,
}

impl<K, F> ProcessSet<K, F>
where
    K: Eq + Hash + Clone,
    F: FnMut(&K) -> Box<dyn FailureDetector + Send>,
{
    /// Creates an empty set; `factory` builds the detector for a process
    /// the first time a heartbeat from it is seen (or when registered
    /// explicitly).
    pub fn new(factory: F) -> Self {
        ProcessSet {
            factory,
            detectors: HashMap::new(),
        }
    }

    /// Pre-registers a process so it is reported (as `Suspect`) before
    /// its first heartbeat.
    pub fn register(&mut self, key: K) {
        let factory = &mut self.factory;
        self.detectors
            .entry(key.clone())
            .or_insert_with(|| factory(&key));
    }

    /// Removes a process from monitoring; returns whether it existed.
    pub fn deregister(&mut self, key: &K) -> bool {
        self.detectors.remove(key).is_some()
    }

    /// Feeds a heartbeat from process `key`, auto-registering unknown
    /// processes. Returns the decision (None for stale heartbeats).
    pub fn on_heartbeat(&mut self, key: K, seq: u64, arrival: Nanos) -> Option<Decision> {
        let factory = &mut self.factory;
        let fd = self
            .detectors
            .entry(key.clone())
            .or_insert_with(|| factory(&key));
        fd.on_heartbeat(seq, arrival)
    }

    /// The output for process `key` at time `t` (`None` if unknown).
    pub fn output(&self, key: &K, t: Nanos) -> Option<FdOutput> {
        self.detectors.get(key).map(|fd| fd.output_at(t))
    }

    /// Status snapshot of every monitored process at time `t`, in
    /// unspecified order.
    pub fn statuses(&self, t: Nanos) -> Vec<ProcessStatus<K>> {
        self.detectors
            .iter()
            .map(|(key, fd)| ProcessStatus {
                key: key.clone(),
                output: fd.output_at(t),
                last_seq: fd.last_seq(),
                trust_until: fd.current_decision().map(|d| d.trust_until),
            })
            .collect()
    }

    /// Keys of all processes currently suspected at time `t`.
    pub fn suspected(&self, t: Nanos) -> Vec<K> {
        self.detectors
            .iter()
            .filter(|(_, fd)| fd.output_at(t) == FdOutput::Suspect)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of monitored processes.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// True when no process is monitored.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twofd::TwoWindowFd;
    use twofd_sim::time::Span;

    const DI: Span = Span(100_000_000);

    fn set() -> ProcessSet<&'static str, impl FnMut(&&'static str) -> Box<dyn FailureDetector + Send>>
    {
        ProcessSet::new(|_key: &&str| {
            Box::new(TwoWindowFd::new(1, 100, DI, Span::from_millis(40)))
        })
    }

    fn hb(seq: u64) -> Nanos {
        Nanos(seq * DI.0 + 10_000_000)
    }

    #[test]
    fn unknown_processes_are_auto_registered() {
        let mut s = set();
        assert!(s.is_empty());
        s.on_heartbeat("a", 1, hb(1));
        s.on_heartbeat("b", 1, hb(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn registered_process_is_suspect_before_first_heartbeat() {
        let mut s = set();
        s.register("quiet");
        assert_eq!(s.output(&"quiet", hb(1)), Some(FdOutput::Suspect));
        assert_eq!(s.output(&"unknown", hb(1)), None);
    }

    #[test]
    fn processes_are_independent() {
        let mut s = set();
        for seq in 1..=5 {
            s.on_heartbeat("alive", seq, hb(seq));
        }
        // "dead" only ever sent one heartbeat.
        s.on_heartbeat("dead", 1, hb(1));
        let now = hb(5) + Span::from_millis(1);
        assert_eq!(s.output(&"alive", now), Some(FdOutput::Trust));
        assert_eq!(s.output(&"dead", now), Some(FdOutput::Suspect));
        assert_eq!(s.suspected(now), vec!["dead"]);
    }

    #[test]
    fn statuses_snapshot_everything() {
        let mut s = set();
        s.on_heartbeat("a", 3, hb(3));
        s.register("b");
        let mut statuses = s.statuses(hb(3) + Span::from_millis(1));
        statuses.sort_by_key(|st| st.key);
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses[0].key, "a");
        assert_eq!(statuses[0].last_seq, Some(3));
        assert!(statuses[0].trust_until.is_some());
        assert_eq!(statuses[1].key, "b");
        assert_eq!(statuses[1].last_seq, None);
        assert_eq!(statuses[1].output, FdOutput::Suspect);
    }

    #[test]
    fn deregister_stops_monitoring() {
        let mut s = set();
        s.on_heartbeat("a", 1, hb(1));
        assert!(s.deregister(&"a"));
        assert!(!s.deregister(&"a"));
        assert_eq!(s.output(&"a", hb(2)), None);
    }

    #[test]
    fn per_process_sequence_tracking() {
        let mut s = set();
        assert!(s.on_heartbeat("a", 5, hb(5)).is_some());
        // Stale for a, fresh for b.
        assert!(s.on_heartbeat("a", 4, hb(5)).is_none());
        assert!(s.on_heartbeat("b", 4, hb(5)).is_some());
    }
}
