//! Monitoring many processes with one detector bank.
//!
//! The paper's model is one monitor `q` watching one process `p`; a real
//! deployment (and the service vision of §V) watches a *fleet*. A
//! [`ProcessSet`] owns one failure-detector instance per monitored
//! process, keyed by an application-chosen identifier, with uniform
//! construction via a [`DetectorBuilder`] and bulk status queries.
//!
//! The per-process detectors are fully independent — exactly `n` copies
//! of the paper's two-process model — so all single-process QoS results
//! carry over unchanged.
//!
//! ## Push-mode transitions
//!
//! Beyond pull-style queries ([`ProcessSet::output`],
//! [`ProcessSet::statuses`]), a process set can *publish* its output
//! changes as [`StreamTransition`]s with **exact** timestamps:
//!
//! * a T-transition is stamped with the arrival time of the heartbeat
//!   that restored trust;
//! * an S-transition is stamped with the decision's `trust_until` — the
//!   instant the output actually flipped — no matter how much later the
//!   expiry is noticed (by [`ProcessSet::sweep`] or by the next fresh
//!   heartbeat synthesizing the missed transition).
//!
//! Because every timestamp is derived from decisions rather than from
//! when bookkeeping happens to run, the published event timeline for a
//! stream is a pure function of its heartbeat schedule — identical to
//! what [`crate::replay::replay`] reconstructs offline. The sharded
//! monitor runtime in `twofd-net` is built on exactly this property.
//!
//! Expiries are tracked in a min-heap keyed by `trust_until` with lazy
//! deletion: each fresh heartbeat pushes its new horizon and stale
//! entries are discarded when popped, so a sweep costs O(expired · log n)
//! rather than O(streams).
//!
//! ## Inline detector storage
//!
//! A [`ProcessSet`] stores its builder's concrete
//! [`DetectorBuilder::Detector`] type **inline** in the stream table.
//! With a spec-driven builder (a [`DetectorConfig`], or the fleet
//! runtime's per-stream plan) that type is [`crate::AnyDetector`]: no
//! per-stream heap allocation, and every `on_heartbeat`/`output_at` on
//! the hot path dispatches through a `match` instead of a vtable.
//! Closures returning `Box<dyn FailureDetector + Send>` still work for
//! detector implementations outside the paper's suite.

use crate::detector::{Decision, FailureDetector, FdOutput};
use crate::suite::{AnyDetector, DetectorConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;
use std::sync::Arc;
use twofd_sim::time::Nanos;

/// Builds the failure detector for a newly seen process.
///
/// Implemented for `Fn(&K) -> D` closures (for any detector type `D`,
/// boxed or inline), for `Arc`-wrapped factories so one factory can be
/// shared across the shards of a partitioned monitor without a global
/// lock, and for [`DetectorConfig`] — the spec-based constructor that
/// gives every process the same inline [`AnyDetector`].
pub trait DetectorBuilder<K> {
    /// The concrete detector type constructed, stored inline in the
    /// process table.
    type Detector: FailureDetector;

    /// Constructs the detector instance for process `key`.
    fn build(&self, key: &K) -> Self::Detector;
}

impl<K, D, F> DetectorBuilder<K> for F
where
    D: FailureDetector,
    F: Fn(&K) -> D,
{
    type Detector = D;

    fn build(&self, key: &K) -> D {
        self(key)
    }
}

/// An `Arc`-shared type-erased detector factory: compatibility surface
/// for detector implementations outside the paper's suite. Spec-driven
/// callers should prefer [`DetectorConfig`] (or the fleet runtime's
/// plan), which build inline and allocation-free.
pub type SharedFactory<K> = Arc<dyn Fn(&K) -> Box<dyn FailureDetector + Send> + Send + Sync>;

impl<K> DetectorBuilder<K> for SharedFactory<K> {
    type Detector = Box<dyn FailureDetector + Send>;

    fn build(&self, key: &K) -> Box<dyn FailureDetector + Send> {
        (self)(key)
    }
}

/// The spec-based constructor: every process gets the same recipe,
/// instantiated inline.
impl<K> DetectorBuilder<K> for DetectorConfig {
    type Detector = AnyDetector;

    fn build(&self, _key: &K) -> AnyDetector {
        DetectorConfig::build(self)
    }
}

/// A published Trust/Suspect output change of one monitored process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTransition<K> {
    /// The process whose output changed.
    pub key: K,
    /// The output in force *from* [`StreamTransition::at`].
    pub output: FdOutput,
    /// Exact instant the output changed (arrival time for T, the
    /// decision's `trust_until` for S).
    pub at: Nanos,
}

/// A snapshot of one monitored process's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessStatus<K> {
    /// The process key.
    pub key: K,
    /// Current output.
    pub output: FdOutput,
    /// Largest heartbeat sequence number seen.
    pub last_seq: Option<u64>,
    /// The instant suspicion will start if no further heartbeat arrives.
    pub trust_until: Option<Nanos>,
}

struct Entry<D> {
    /// The detector itself, stored inline: with a spec-driven builder
    /// this is an [`AnyDetector`], so the hot path never chases a
    /// per-stream heap pointer or vtable.
    fd: D,
    /// Last output published as a [`StreamTransition`]; processes start
    /// as (implicitly published) `Suspect`.
    last_published: FdOutput,
}

/// A bank of per-process failure detectors.
pub struct ProcessSet<K, B: DetectorBuilder<K>> {
    builder: B,
    detectors: HashMap<K, Entry<B::Detector>>,
    /// Min-heap of `(trust_until, key)` expiry candidates, lazily
    /// deleted: entries outdated by fresher heartbeats are skipped when
    /// popped.
    expiries: BinaryHeap<Reverse<(Nanos, K)>>,
}

impl<K, B> ProcessSet<K, B>
where
    K: Eq + Hash + Ord + Clone,
    B: DetectorBuilder<K>,
{
    /// Creates an empty set; `builder` constructs the detector for a
    /// process the first time a heartbeat from it is seen (or when
    /// registered explicitly).
    pub fn new(builder: B) -> Self {
        ProcessSet {
            builder,
            detectors: HashMap::new(),
            expiries: BinaryHeap::new(),
        }
    }

    /// Pre-registers a process so it is reported (as `Suspect`) before
    /// its first heartbeat.
    pub fn register(&mut self, key: K) {
        let builder = &self.builder;
        self.detectors.entry(key.clone()).or_insert_with(|| Entry {
            fd: builder.build(&key),
            last_published: FdOutput::Suspect,
        });
    }

    /// Removes a process from monitoring; returns whether it existed.
    /// Any queued expiry entries for it are discarded lazily.
    pub fn deregister(&mut self, key: &K) -> bool {
        self.detectors.remove(key).is_some()
    }

    /// Feeds a heartbeat from process `key`, auto-registering unknown
    /// processes. Returns the decision (None for stale heartbeats).
    ///
    /// Use [`ProcessSet::on_heartbeat_with_events`] to also collect the
    /// output transitions this heartbeat caused.
    pub fn on_heartbeat(&mut self, key: K, seq: u64, arrival: Nanos) -> Option<Decision> {
        let mut scratch = Vec::new();
        self.on_heartbeat_with_events(key, seq, arrival, &mut scratch)
    }

    /// Feeds a heartbeat and appends any resulting output transitions to
    /// `events`, stamped with exact transition times:
    ///
    /// * if the previous trust horizon expired strictly before this
    ///   arrival and the expiry was not yet published (no sweep ran), the
    ///   missed S-transition is synthesized at the old `trust_until`;
    /// * if the heartbeat restores trust, a T-transition is stamped at
    ///   its arrival time.
    pub fn on_heartbeat_with_events(
        &mut self,
        key: K,
        seq: u64,
        arrival: Nanos,
        events: &mut Vec<StreamTransition<K>>,
    ) -> Option<Decision> {
        let builder = &self.builder;
        let entry = self.detectors.entry(key.clone()).or_insert_with(|| Entry {
            fd: builder.build(&key),
            last_published: FdOutput::Suspect,
        });
        let prev = entry.fd.current_decision();
        let decision = entry.fd.on_heartbeat(seq, arrival)?;

        // Expiry between the previous fresh arrival and this one that no
        // sweep noticed: publish it now, stamped at the expiry instant.
        if entry.last_published == FdOutput::Trust {
            if let Some(p) = prev {
                if p.trust_until < arrival {
                    entry.last_published = FdOutput::Suspect;
                    events.push(StreamTransition {
                        key: key.clone(),
                        output: FdOutput::Suspect,
                        at: p.trust_until,
                    });
                }
            }
        }

        if decision.trust_until > arrival {
            if entry.last_published == FdOutput::Suspect {
                entry.last_published = FdOutput::Trust;
                events.push(StreamTransition {
                    key: key.clone(),
                    output: FdOutput::Trust,
                    at: arrival,
                });
            }
            self.expiries.push(Reverse((decision.trust_until, key)));
        }
        // else: the heartbeat arrived past its own freshness point — the
        // detector stays suspicious (Chen §II-B1's "no fresh message").

        Some(decision)
    }

    /// Publishes the S-transition of every stream whose trust horizon
    /// expired strictly before `now`, stamped at the exact expiry
    /// instant. Strict comparison keeps a heartbeat arriving exactly at
    /// its predecessor's horizon from producing a zero-length suspicion,
    /// matching the replay reconstruction.
    pub fn sweep(&mut self, now: Nanos, events: &mut Vec<StreamTransition<K>>) {
        while let Some(Reverse((t, _))) = self.expiries.peek() {
            if *t >= now {
                break;
            }
            let Reverse((t, key)) = self.expiries.pop().expect("peeked entry");
            let Some(entry) = self.detectors.get_mut(&key) else {
                continue; // deregistered since the entry was queued
            };
            let Some(d) = entry.fd.current_decision() else {
                continue;
            };
            if d.trust_until > t {
                continue; // stale: a fresher heartbeat re-queued the horizon
            }
            if entry.last_published == FdOutput::Trust {
                entry.last_published = FdOutput::Suspect;
                events.push(StreamTransition {
                    key,
                    output: FdOutput::Suspect,
                    at: d.trust_until,
                });
            }
        }
    }

    /// Earliest queued expiry candidate (a scheduling hint: the entry may
    /// be outdated by fresher heartbeats and expire later, never earlier).
    pub fn next_expiry(&self) -> Option<Nanos> {
        self.expiries.peek().map(|Reverse((t, _))| *t)
    }

    /// The output for process `key` at time `t` (`None` if unknown).
    pub fn output(&self, key: &K, t: Nanos) -> Option<FdOutput> {
        self.detectors.get(key).map(|e| e.fd.output_at(t))
    }

    /// Status snapshot of every monitored process at time `t`, in
    /// unspecified order.
    pub fn statuses(&self, t: Nanos) -> Vec<ProcessStatus<K>> {
        self.detectors
            .iter()
            .map(|(key, e)| ProcessStatus {
                key: key.clone(),
                output: e.fd.output_at(t),
                last_seq: e.fd.last_seq(),
                trust_until: e.fd.current_decision().map(|d| d.trust_until),
            })
            .collect()
    }

    /// Keys of all processes currently suspected at time `t`.
    pub fn suspected(&self, t: Nanos) -> Vec<K> {
        self.detectors
            .iter()
            .filter(|(_, e)| e.fd.output_at(t) == FdOutput::Suspect)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// `(trusted, suspected)` process counts at time `t`.
    pub fn counts(&self, t: Nanos) -> (usize, usize) {
        let mut trusted = 0;
        let mut suspect = 0;
        for e in self.detectors.values() {
            match e.fd.output_at(t) {
                FdOutput::Trust => trusted += 1,
                FdOutput::Suspect => suspect += 1,
            }
        }
        (trusted, suspect)
    }

    /// Number of monitored processes.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// True when no process is monitored.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twofd::TwoWindowFd;
    use twofd_sim::time::Span;

    const DI: Span = Span(100_000_000);

    fn set() -> ProcessSet<&'static str, impl Fn(&&'static str) -> Box<dyn FailureDetector + Send>>
    {
        ProcessSet::new(|_key: &&str| {
            Box::new(TwoWindowFd::new(1, 100, DI, Span::from_millis(40)))
                as Box<dyn FailureDetector + Send>
        })
    }

    fn hb(seq: u64) -> Nanos {
        Nanos(seq * DI.0 + 10_000_000)
    }

    #[test]
    fn unknown_processes_are_auto_registered() {
        let mut s = set();
        assert!(s.is_empty());
        s.on_heartbeat("a", 1, hb(1));
        s.on_heartbeat("b", 1, hb(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn registered_process_is_suspect_before_first_heartbeat() {
        let mut s = set();
        s.register("quiet");
        assert_eq!(s.output(&"quiet", hb(1)), Some(FdOutput::Suspect));
        assert_eq!(s.output(&"unknown", hb(1)), None);
    }

    #[test]
    fn processes_are_independent() {
        let mut s = set();
        for seq in 1..=5 {
            s.on_heartbeat("alive", seq, hb(seq));
        }
        // "dead" only ever sent one heartbeat.
        s.on_heartbeat("dead", 1, hb(1));
        let now = hb(5) + Span::from_millis(1);
        assert_eq!(s.output(&"alive", now), Some(FdOutput::Trust));
        assert_eq!(s.output(&"dead", now), Some(FdOutput::Suspect));
        assert_eq!(s.suspected(now), vec!["dead"]);
        assert_eq!(s.counts(now), (1, 1));
    }

    #[test]
    fn statuses_snapshot_everything() {
        let mut s = set();
        s.on_heartbeat("a", 3, hb(3));
        s.register("b");
        let mut statuses = s.statuses(hb(3) + Span::from_millis(1));
        statuses.sort_by_key(|st| st.key);
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses[0].key, "a");
        assert_eq!(statuses[0].last_seq, Some(3));
        assert!(statuses[0].trust_until.is_some());
        assert_eq!(statuses[1].key, "b");
        assert_eq!(statuses[1].last_seq, None);
        assert_eq!(statuses[1].output, FdOutput::Suspect);
    }

    #[test]
    fn deregister_stops_monitoring() {
        let mut s = set();
        s.on_heartbeat("a", 1, hb(1));
        assert!(s.deregister(&"a"));
        assert!(!s.deregister(&"a"));
        assert_eq!(s.output(&"a", hb(2)), None);
    }

    #[test]
    fn per_process_sequence_tracking() {
        let mut s = set();
        assert!(s.on_heartbeat("a", 5, hb(5)).is_some());
        // Stale for a, fresh for b.
        assert!(s.on_heartbeat("a", 4, hb(5)).is_none());
        assert!(s.on_heartbeat("b", 4, hb(5)).is_some());
    }

    #[test]
    fn arc_factories_build_detectors() {
        let factory: SharedFactory<u64> = Arc::new(|_k: &u64| {
            Box::new(TwoWindowFd::new(1, 100, DI, Span::from_millis(40)))
                as Box<dyn FailureDetector + Send>
        });
        let mut s = ProcessSet::new(factory);
        s.on_heartbeat(7u64, 1, hb(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn detector_config_builds_inline_detectors() {
        // A spec-driven set stores `AnyDetector` values inline — no
        // boxing anywhere in the type.
        let mut s: ProcessSet<u64, DetectorConfig> = ProcessSet::new(DetectorConfig::default());
        s.on_heartbeat(7u64, 1, hb(1));
        s.on_heartbeat(8u64, 1, hb(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.output(&7, hb(1) + Span(1)), Some(FdOutput::Trust));
    }

    #[test]
    fn inline_closures_build_unboxed_detectors() {
        // Closures may return concrete detector types directly.
        let mut s = ProcessSet::new(|_k: &u64| TwoWindowFd::new(1, 100, DI, Span::from_millis(40)));
        s.on_heartbeat(1u64, 1, hb(1));
        assert_eq!(s.output(&1, hb(1) + Span(1)), Some(FdOutput::Trust));
    }

    #[test]
    fn first_fresh_heartbeat_publishes_trust_at_arrival() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        assert_eq!(
            events,
            vec![StreamTransition {
                key: "a",
                output: FdOutput::Trust,
                at: hb(1)
            }]
        );
        // The next fresh heartbeat keeps trusting: no further event.
        events.clear();
        s.on_heartbeat_with_events("a", 2, hb(2), &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn sweep_publishes_suspicion_at_exact_expiry() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        let trust_until = s.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();

        // Sweeping before the horizon publishes nothing; the horizon
        // itself is exclusive (strict comparison).
        s.sweep(trust_until, &mut events);
        assert!(events.is_empty());
        s.sweep(trust_until + Span(1), &mut events);
        assert_eq!(
            events,
            vec![StreamTransition {
                key: "a",
                output: FdOutput::Suspect,
                at: trust_until
            }]
        );
        // Idempotent: the expiry is published once.
        events.clear();
        s.sweep(trust_until + Span::from_millis(5), &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn missed_expiry_is_synthesized_on_next_heartbeat() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        let trust_until = s.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();

        // No sweep runs; the next heartbeat arrives long after expiry.
        let late = trust_until + Span::from_secs(1);
        s.on_heartbeat_with_events("a", 2, late, &mut events);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(
            events[0],
            StreamTransition {
                key: "a",
                output: FdOutput::Suspect,
                at: trust_until
            }
        );
        assert_eq!(events[1].output, FdOutput::Trust);
        assert_eq!(events[1].at, late);
    }

    #[test]
    fn stale_heap_entries_are_skipped() {
        let mut s = set();
        let mut events = Vec::new();
        for seq in 1..=5 {
            s.on_heartbeat_with_events("a", seq, hb(seq), &mut events);
        }
        events.clear();
        // Sweep past the first four (superseded) horizons but before the
        // live one: nothing may be published.
        let live = s.statuses(hb(5))[0].trust_until.unwrap();
        s.sweep(live - Span(1), &mut events);
        assert!(events.is_empty());
        assert!(s.next_expiry().is_some());
    }

    #[test]
    fn deregistered_streams_never_publish() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        s.deregister(&"a");
        events.clear();
        s.sweep(Nanos::from_secs(3600), &mut events);
        assert!(events.is_empty());
    }
}
