//! Monitoring many processes with one detector bank.
//!
//! The paper's model is one monitor `q` watching one process `p`; a real
//! deployment (and the service vision of §V) watches a *fleet*. A
//! [`ProcessSet`] owns one failure-detector instance per monitored
//! process, keyed by an application-chosen identifier, with uniform
//! construction via a [`DetectorBuilder`] and bulk status queries.
//!
//! The per-process detectors are fully independent — exactly `n` copies
//! of the paper's two-process model — so all single-process QoS results
//! carry over unchanged.
//!
//! ## Push-mode transitions
//!
//! Beyond pull-style queries ([`ProcessSet::output`],
//! [`ProcessSet::statuses`]), a process set can *publish* its output
//! changes as [`StreamTransition`]s with **exact** timestamps:
//!
//! * a T-transition is stamped with the arrival time of the heartbeat
//!   that restored trust;
//! * an S-transition is stamped with the decision's `trust_until` — the
//!   instant the output actually flipped — no matter how much later the
//!   expiry is noticed (by [`ProcessSet::sweep`] or by the next fresh
//!   heartbeat synthesizing the missed transition).
//!
//! Because every timestamp is derived from decisions rather than from
//! when bookkeeping happens to run, the published event timeline for a
//! stream is a pure function of its heartbeat schedule — identical to
//! what [`crate::replay::replay`] reconstructs offline. The sharded
//! monitor runtime in `twofd-net` is built on exactly this property.
//!
//! ## Storage: dense slots, hot/cold split, timing wheel
//!
//! Keys are interned to dense `u32` slots at registration
//! ([`ProcessSet::register`] returns the slot). Per-stream state lives
//! in a [`crate::slab::StreamSlab`]: a 24-byte hot mirror per stream
//! (trust horizon, last sequence, publication state) in one dense array,
//! with the detector itself — 192 bytes for an [`AnyDetector`] — and the
//! key in parallel cold arrays. Scans ([`ProcessSet::counts`],
//! [`ProcessSet::statuses`], [`ProcessSet::suspected`], the obs gauges)
//! walk only the hot array; a heartbeat apply touches the hot mirror
//! plus exactly one detector.
//!
//! Expiries are scheduled on a hierarchical [`crate::wheel::TimingWheel`]
//! — `O(1)` insert and advance instead of the former binary heap's
//! `O(log n)` — with the same lazy-deletion contract: every fresh
//! decision enqueues `(slot, generation, trust_until)`, and an entry is
//! live iff its deadline still equals the stream's current horizon and
//! its generation matches (recycled slots bump the generation, so a
//! re-registered stream can never inherit its predecessor's expiries).
//! [`ProcessSet::next_expiry`] prunes dead entries before reporting, so
//! the sweeper's park deadline always belongs to a live stream.
//!
//! The heap-based original survives as [`crate::HeapProcessSet`], the
//! differential oracle for this implementation.

use crate::detector::{Decision, FailureDetector, FdOutput};
use crate::slab::StreamSlab;
use crate::suite::{AnyDetector, DetectorConfig};
use crate::wheel::{TimingWheel, WheelEntry};
use std::hash::Hash;
use std::sync::Arc;
use twofd_sim::time::Nanos;

/// Builds the failure detector for a newly seen process.
///
/// Implemented for `Fn(&K) -> D` closures (for any detector type `D`,
/// boxed or inline), for `Arc`-wrapped factories so one factory can be
/// shared across the shards of a partitioned monitor without a global
/// lock, and for [`DetectorConfig`] — the spec-based constructor that
/// gives every process the same inline [`AnyDetector`].
pub trait DetectorBuilder<K> {
    /// The concrete detector type constructed, stored inline in the
    /// process table.
    type Detector: FailureDetector;

    /// Constructs the detector instance for process `key`.
    fn build(&self, key: &K) -> Self::Detector;
}

impl<K, D, F> DetectorBuilder<K> for F
where
    D: FailureDetector,
    F: Fn(&K) -> D,
{
    type Detector = D;

    fn build(&self, key: &K) -> D {
        self(key)
    }
}

/// An `Arc`-shared type-erased detector factory: compatibility surface
/// for detector implementations outside the paper's suite. Spec-driven
/// callers should prefer [`DetectorConfig`] (or the fleet runtime's
/// plan), which build inline and allocation-free.
pub type SharedFactory<K> = Arc<dyn Fn(&K) -> Box<dyn FailureDetector + Send> + Send + Sync>;

impl<K> DetectorBuilder<K> for SharedFactory<K> {
    type Detector = Box<dyn FailureDetector + Send>;

    fn build(&self, key: &K) -> Box<dyn FailureDetector + Send> {
        (self)(key)
    }
}

/// The spec-based constructor: every process gets the same recipe,
/// instantiated inline.
impl<K> DetectorBuilder<K> for DetectorConfig {
    type Detector = AnyDetector;

    fn build(&self, _key: &K) -> AnyDetector {
        DetectorConfig::build(self)
    }
}

/// The three-state classification of a published transition under the
/// crash-recovery model: plain Trust/Suspect flips, plus `Recovered` —
/// a Trust whose heartbeat carried a *higher incarnation* than the
/// stream's previous boot (the process provably crashed and restarted,
/// so any suspicion in between was correct detection, not a mistake).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// Output flipped to `Trust` within the same incarnation.
    Trust,
    /// Output flipped to `Suspect`.
    Suspect,
    /// Output is `Trust`, but for a *new incarnation* of the process.
    Recovered,
}

impl TransitionKind {
    /// The plain two-state output this transition leaves in force
    /// (`Recovered` is a `Trust`).
    pub fn output(self) -> FdOutput {
        match self {
            TransitionKind::Suspect => FdOutput::Suspect,
            TransitionKind::Trust | TransitionKind::Recovered => FdOutput::Trust,
        }
    }
}

/// A published Trust/Suspect/Recovered output change of one monitored
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTransition<K> {
    /// The process whose output changed.
    pub key: K,
    /// The output in force *from* [`StreamTransition::at`].
    pub output: FdOutput,
    /// Exact instant the output changed (arrival time for T/R, the
    /// decision's `trust_until` for S).
    pub at: Nanos,
    /// Three-state classification; `output` is always `kind.output()`.
    pub kind: TransitionKind,
}

impl<K> StreamTransition<K> {
    /// A transition of `kind` at `at`, with the matching two-state
    /// output.
    pub fn new(key: K, kind: TransitionKind, at: Nanos) -> Self {
        StreamTransition {
            key,
            output: kind.output(),
            at,
            kind,
        }
    }
}

/// A snapshot of one monitored process's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessStatus<K> {
    /// The process key.
    pub key: K,
    /// Current output.
    pub output: FdOutput,
    /// Largest heartbeat sequence number seen (in the current
    /// incarnation).
    pub last_seq: Option<u64>,
    /// The instant suspicion will start if no further heartbeat arrives.
    pub trust_until: Option<Nanos>,
    /// The process's current incarnation (0 for crash-stop traffic).
    pub incarnation: u32,
}

/// A bank of per-process failure detectors over dense stream slots.
pub struct ProcessSet<K, B: DetectorBuilder<K>> {
    builder: B,
    slab: StreamSlab<K, B::Detector>,
    wheel: TimingWheel,
    /// Reusable harvest buffer for [`ProcessSet::sweep`].
    due: Vec<WheelEntry>,
}

impl<K, B> ProcessSet<K, B>
where
    K: Eq + Hash + Clone,
    B: DetectorBuilder<K>,
{
    /// Creates an empty set; `builder` constructs the detector for a
    /// process the first time a heartbeat from it is seen (or when
    /// registered explicitly).
    pub fn new(builder: B) -> Self {
        ProcessSet {
            builder,
            slab: StreamSlab::new(),
            wheel: TimingWheel::new(Nanos::ZERO),
            due: Vec::new(),
        }
    }

    /// Pre-registers a process so it is reported (as `Suspect`) before
    /// its first heartbeat, returning its dense slot. Registering an
    /// already-known key is a no-op that returns the existing slot —
    /// state, queued expiries and gauges are unaffected.
    pub fn register(&mut self, key: K) -> u32 {
        let builder = &self.builder;
        self.slab.intern_with(key, |k| builder.build(k))
    }

    /// The dense slot a registered process was interned at.
    pub fn slot_of(&self, key: &K) -> Option<u32> {
        self.slab.slot_of(key)
    }

    /// Removes a process from monitoring; returns whether it existed.
    /// Its slot is recycled under a new generation, so any queued expiry
    /// entries die (they can never alias the slot's next occupant).
    pub fn deregister(&mut self, key: &K) -> bool {
        match self.slab.remove(key) {
            Some(slot) => {
                self.wheel.note_removed(slot);
                true
            }
            None => false,
        }
    }

    /// Feeds a heartbeat from process `key`, auto-registering unknown
    /// processes. Returns the decision (None for stale heartbeats).
    ///
    /// Use [`ProcessSet::on_heartbeat_with_events`] to also collect the
    /// output transitions this heartbeat caused.
    pub fn on_heartbeat(&mut self, key: K, seq: u64, arrival: Nanos) -> Option<Decision> {
        let mut scratch = Vec::new();
        self.on_heartbeat_with_events(key, seq, arrival, &mut scratch)
    }

    /// Feeds a crash-stop heartbeat (incarnation 0) and appends any
    /// resulting output transitions to `events`, stamped with exact
    /// transition times:
    ///
    /// * if the previous trust horizon expired strictly before this
    ///   arrival and the expiry was not yet published (no sweep ran), the
    ///   missed S-transition is synthesized at the old `trust_until`;
    /// * if the heartbeat restores trust, a T-transition is stamped at
    ///   its arrival time.
    ///
    /// This is [`ProcessSet::on_heartbeat_incarnated`] pinned to
    /// incarnation 0 — bit-identical to the pre-federation behaviour.
    pub fn on_heartbeat_with_events(
        &mut self,
        key: K,
        seq: u64,
        arrival: Nanos,
        events: &mut Vec<StreamTransition<K>>,
    ) -> Option<Decision> {
        self.on_heartbeat_incarnated(key, 0, seq, arrival, events)
    }

    /// Feeds an incarnation-aware heartbeat. Relative to the stream's
    /// current incarnation:
    ///
    /// * a **lower** incarnation is stale — a delayed frame from a dead
    ///   boot — and is dropped (`None`), like a stale sequence number;
    /// * an **equal** incarnation follows the crash-stop path above;
    /// * a **higher** incarnation resets the stream: the old detector's
    ///   sampled history describes a dead boot, so it is rebuilt fresh,
    ///   the sequence axis restarts, and the heartbeat publishes a
    ///   [`TransitionKind::Recovered`] transition at its arrival. If the
    ///   old boot's horizon had already expired unpublished, the missed
    ///   S-transition is synthesized first (at the old horizon), so the
    ///   stream's suspicion interval stays exact.
    pub fn on_heartbeat_incarnated(
        &mut self,
        key: K,
        incarnation: u32,
        seq: u64,
        arrival: Nanos,
        events: &mut Vec<StreamTransition<K>>,
    ) -> Option<Decision> {
        let builder = &self.builder;
        let slot = self.slab.intern_with(key, |k| builder.build(k));
        let recovered = {
            let hot = self.slab.hot(slot);
            if incarnation < hot.incarnation() {
                return None;
            }
            incarnation > hot.incarnation()
        };
        if recovered {
            // The previous boot is provably dead. If its horizon expired
            // before this arrival and no sweep published it, synthesize
            // the missed S-transition exactly as a same-incarnation
            // heartbeat would; if it was still trusted, the stream goes
            // Trust→Trust across the boot boundary and only the
            // Recovered event marks it.
            let (hot, _, key) = self.slab.apply(slot);
            if hot.published_trust() {
                if let Some(p) = hot.trust_until() {
                    if p < arrival {
                        hot.set_published(false);
                        events.push(StreamTransition::new(
                            key.clone(),
                            TransitionKind::Suspect,
                            p,
                        ));
                    }
                }
            }
            let builder = &self.builder;
            self.slab.reset_detector(slot, |k| builder.build(k));
        }
        let (hot, fd, key) = self.slab.apply(slot);
        hot.set_incarnation(incarnation);
        let prev = hot.trust_until();
        let decision = fd.on_heartbeat(seq, arrival)?;
        if let Some(s) = fd.last_seq() {
            hot.set_seq(s);
        }
        hot.set_decision(decision.trust_until);

        // Expiry between the previous fresh arrival and this one that no
        // sweep noticed: publish it now, stamped at the expiry instant.
        if hot.published_trust() {
            if let Some(p) = prev {
                if p < arrival {
                    hot.set_published(false);
                    events.push(StreamTransition::new(
                        key.clone(),
                        TransitionKind::Suspect,
                        p,
                    ));
                }
            }
        }

        if decision.trust_until > arrival && (recovered || !hot.published_trust()) {
            let was_published = hot.published_trust();
            hot.set_published(true);
            // A recovered boot publishes `Recovered` whether the old
            // boot was trusted (Trust→Trust across the boundary) or
            // suspected (the restart ends the suspicion) — unless the
            // suspicion never existed to begin with.
            let kind = if recovered {
                TransitionKind::Recovered
            } else {
                TransitionKind::Trust
            };
            if !was_published || recovered {
                events.push(StreamTransition::new(key.clone(), kind, arrival));
            }
        }
        // A trust_until at or before the arrival means the heartbeat
        // arrived past its own freshness point — the detector stays
        // suspicious (Chen §II-B1's "no fresh message"). The horizon is
        // queued unconditionally either way: dead entries are cheap and
        // the live-entry multiset stays identical to the heap oracle's.
        let gen = hot.gen();
        self.wheel.insert(slot, gen, decision.trust_until);

        Some(decision)
    }

    /// Adopts a stream from a peer monitor's relayed digest view: seeds
    /// the stream's hot state with the peer's last known incarnation and
    /// trust horizon, *without* fabricating detector history. Detection
    /// then continues locally: the seeded horizon is scheduled on the
    /// wheel, so if no real heartbeat arrives the stream S-transitions
    /// at exactly the adopted horizon; if heartbeats do arrive, the
    /// fresh local detector takes over seamlessly.
    ///
    /// Local state that is at least as fresh wins: the adoption is
    /// skipped (returns `false`) if the stream already has a horizon at
    /// or past the adopted one, a higher incarnation, or the adopted
    /// horizon is already in the past at `now` (nothing to seed — the
    /// stream is suspect either way).
    pub fn adopt(
        &mut self,
        key: K,
        incarnation: u32,
        trust_until: Nanos,
        now: Nanos,
        events: &mut Vec<StreamTransition<K>>,
    ) -> bool {
        let builder = &self.builder;
        let slot = self.slab.intern_with(key, |k| builder.build(k));
        let (hot, _, key) = self.slab.apply(slot);
        if hot.incarnation() > incarnation || trust_until <= now {
            return false;
        }
        if let Some(local) = hot.trust_until() {
            if local >= trust_until {
                return false;
            }
        }
        hot.set_incarnation(incarnation);
        hot.set_decision(trust_until);
        if !hot.published_trust() {
            hot.set_published(true);
            events.push(StreamTransition::new(
                key.clone(),
                TransitionKind::Trust,
                now,
            ));
        }
        let gen = hot.gen();
        self.wheel.insert(slot, gen, trust_until);
        true
    }

    /// Publishes the S-transition of every stream whose trust horizon
    /// expired strictly before `now`, stamped at the exact expiry
    /// instant. Strict comparison keeps a heartbeat arriving exactly at
    /// its predecessor's horizon from producing a zero-length suspicion,
    /// matching the replay reconstruction.
    pub fn sweep(&mut self, now: Nanos, events: &mut Vec<StreamTransition<K>>) {
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        self.wheel.advance(now, &mut due);
        // The wheel harvests in bucket order; publish in deterministic
        // (deadline, slot) order like a heap would pop.
        due.sort_unstable_by_key(|e| (e.deadline, e.slot));
        for e in &due {
            if let Some(key) = self.slab.publish_expiry(e.slot, e.gen, e.deadline) {
                events.push(StreamTransition::new(
                    key.clone(),
                    TransitionKind::Suspect,
                    e.deadline,
                ));
            }
        }
        self.due = due;
    }

    /// Earliest *live* trust horizon currently scheduled — the instant
    /// the next S-transition will happen if no further heartbeat
    /// arrives. Stale wheel entries (superseded horizons, deregistered
    /// or recycled slots) are pruned before reporting, so a sweeper
    /// parked on the returned deadline never wakes for a dead horizon.
    pub fn next_expiry(&mut self) -> Option<Nanos> {
        let slab = &self.slab;
        self.wheel
            .next_expiry_with(|e| slab.entry_is_live(e.slot, e.gen, e.deadline))
    }

    /// The output for process `key` at time `t` (`None` if unknown),
    /// answered from the hot mirror without touching the detector.
    pub fn output(&self, key: &K, t: Nanos) -> Option<FdOutput> {
        self.slab
            .slot_of(key)
            .map(|slot| self.slab.hot(slot).output_at(t))
    }

    /// Status snapshot of every monitored process at time `t`, in
    /// unspecified order.
    pub fn statuses(&self, t: Nanos) -> Vec<ProcessStatus<K>> {
        let mut out = Vec::with_capacity(self.slab.len());
        self.slab.for_each(|key, hot| {
            out.push(ProcessStatus {
                key: key.clone(),
                output: hot.output_at(t),
                last_seq: hot.last_seq(),
                trust_until: hot.trust_until(),
                incarnation: hot.incarnation(),
            });
        });
        out
    }

    /// Keys of all processes currently suspected at time `t`.
    pub fn suspected(&self, t: Nanos) -> Vec<K> {
        let mut out = Vec::new();
        self.slab.for_each(|key, hot| {
            if hot.output_at(t) == FdOutput::Suspect {
                out.push(key.clone());
            }
        });
        out
    }

    /// `(trusted, suspected)` process counts at time `t` — a pure scan
    /// of the dense hot array (the obs-gauge path).
    pub fn counts(&self, t: Nanos) -> (usize, usize) {
        let mut trusted = 0;
        self.slab.for_each_hot(|hot| {
            if hot.output_at(t) == FdOutput::Trust {
                trusted += 1;
            }
        });
        (trusted, self.slab.len() - trusted)
    }

    /// Number of monitored processes.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True when no process is monitored.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Total stream slots ever allocated (monitored + recycled). Stable
    /// under register/deregister churn: vacated slots are reused before
    /// new ones are minted.
    pub fn slot_capacity(&self) -> usize {
        self.slab.capacity()
    }

    /// Number of expiry entries currently queued on the timing wheel,
    /// including superseded (dead) ones not yet pruned.
    pub fn queued_expiries(&self) -> usize {
        self.wheel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twofd::TwoWindowFd;
    use twofd_sim::time::Span;

    const DI: Span = Span(100_000_000);

    fn set() -> ProcessSet<&'static str, impl Fn(&&'static str) -> Box<dyn FailureDetector + Send>>
    {
        ProcessSet::new(|_key: &&str| {
            Box::new(TwoWindowFd::new(1, 100, DI, Span::from_millis(40)))
                as Box<dyn FailureDetector + Send>
        })
    }

    fn hb(seq: u64) -> Nanos {
        Nanos(seq * DI.0 + 10_000_000)
    }

    #[test]
    fn unknown_processes_are_auto_registered() {
        let mut s = set();
        assert!(s.is_empty());
        s.on_heartbeat("a", 1, hb(1));
        s.on_heartbeat("b", 1, hb(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn registered_process_is_suspect_before_first_heartbeat() {
        let mut s = set();
        s.register("quiet");
        assert_eq!(s.output(&"quiet", hb(1)), Some(FdOutput::Suspect));
        assert_eq!(s.output(&"unknown", hb(1)), None);
    }

    #[test]
    fn registration_interns_dense_slots() {
        let mut s = set();
        let a = s.register("a");
        let b = s.register("b");
        assert_eq!((a, b), (0, 1));
        // Registering again returns the same slot, builds nothing new.
        assert_eq!(s.register("a"), 0);
        assert_eq!(s.slot_of(&"b"), Some(1));
        assert_eq!(s.slot_of(&"unseen"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn processes_are_independent() {
        let mut s = set();
        for seq in 1..=5 {
            s.on_heartbeat("alive", seq, hb(seq));
        }
        // "dead" only ever sent one heartbeat.
        s.on_heartbeat("dead", 1, hb(1));
        let now = hb(5) + Span::from_millis(1);
        assert_eq!(s.output(&"alive", now), Some(FdOutput::Trust));
        assert_eq!(s.output(&"dead", now), Some(FdOutput::Suspect));
        assert_eq!(s.suspected(now), vec!["dead"]);
        assert_eq!(s.counts(now), (1, 1));
    }

    #[test]
    fn statuses_snapshot_everything() {
        let mut s = set();
        s.on_heartbeat("a", 3, hb(3));
        s.register("b");
        let mut statuses = s.statuses(hb(3) + Span::from_millis(1));
        statuses.sort_by_key(|st| st.key);
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses[0].key, "a");
        assert_eq!(statuses[0].last_seq, Some(3));
        assert!(statuses[0].trust_until.is_some());
        assert_eq!(statuses[1].key, "b");
        assert_eq!(statuses[1].last_seq, None);
        assert_eq!(statuses[1].output, FdOutput::Suspect);
    }

    #[test]
    fn deregister_stops_monitoring() {
        let mut s = set();
        s.on_heartbeat("a", 1, hb(1));
        assert!(s.deregister(&"a"));
        assert!(!s.deregister(&"a"));
        assert_eq!(s.output(&"a", hb(2)), None);
    }

    #[test]
    fn per_process_sequence_tracking() {
        let mut s = set();
        assert!(s.on_heartbeat("a", 5, hb(5)).is_some());
        // Stale for a, fresh for b.
        assert!(s.on_heartbeat("a", 4, hb(5)).is_none());
        assert!(s.on_heartbeat("b", 4, hb(5)).is_some());
    }

    #[test]
    fn arc_factories_build_detectors() {
        let factory: SharedFactory<u64> = Arc::new(|_k: &u64| {
            Box::new(TwoWindowFd::new(1, 100, DI, Span::from_millis(40)))
                as Box<dyn FailureDetector + Send>
        });
        let mut s = ProcessSet::new(factory);
        s.on_heartbeat(7u64, 1, hb(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn detector_config_builds_inline_detectors() {
        // A spec-driven set stores `AnyDetector` values inline — no
        // boxing anywhere in the type.
        let mut s: ProcessSet<u64, DetectorConfig> = ProcessSet::new(DetectorConfig::default());
        s.on_heartbeat(7u64, 1, hb(1));
        s.on_heartbeat(8u64, 1, hb(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.output(&7, hb(1) + Span(1)), Some(FdOutput::Trust));
    }

    #[test]
    fn inline_closures_build_unboxed_detectors() {
        // Closures may return concrete detector types directly.
        let mut s = ProcessSet::new(|_k: &u64| TwoWindowFd::new(1, 100, DI, Span::from_millis(40)));
        s.on_heartbeat(1u64, 1, hb(1));
        assert_eq!(s.output(&1, hb(1) + Span(1)), Some(FdOutput::Trust));
    }

    #[test]
    fn first_fresh_heartbeat_publishes_trust_at_arrival() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        assert_eq!(
            events,
            vec![StreamTransition::new("a", TransitionKind::Trust, hb(1))]
        );
        // The next fresh heartbeat keeps trusting: no further event.
        events.clear();
        s.on_heartbeat_with_events("a", 2, hb(2), &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn sweep_publishes_suspicion_at_exact_expiry() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        let trust_until = s.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();

        // Sweeping before the horizon publishes nothing; the horizon
        // itself is exclusive (strict comparison).
        s.sweep(trust_until, &mut events);
        assert!(events.is_empty());
        s.sweep(trust_until + Span(1), &mut events);
        assert_eq!(
            events,
            vec![StreamTransition::new(
                "a",
                TransitionKind::Suspect,
                trust_until
            )]
        );
        // Idempotent: the expiry is published once.
        events.clear();
        s.sweep(trust_until + Span::from_millis(5), &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn missed_expiry_is_synthesized_on_next_heartbeat() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        let trust_until = s.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();

        // No sweep runs; the next heartbeat arrives long after expiry.
        let late = trust_until + Span::from_secs(1);
        s.on_heartbeat_with_events("a", 2, late, &mut events);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(
            events[0],
            StreamTransition::new("a", TransitionKind::Suspect, trust_until)
        );
        assert_eq!(events[1].output, FdOutput::Trust);
        assert_eq!(events[1].kind, TransitionKind::Trust);
        assert_eq!(events[1].at, late);
    }

    /// Crash-recovery: a bumped incarnation with a reset sequence axis
    /// must not be treated as stale; it rebuilds the detector and
    /// publishes a `Recovered` transition at its arrival.
    #[test]
    fn higher_incarnation_recovers_a_suspected_stream() {
        let mut s = set();
        let mut events = Vec::new();
        for seq in 1..=5 {
            s.on_heartbeat_incarnated("a", 0, seq, hb(seq), &mut events);
        }
        let trust_until = s.statuses(hb(5))[0].trust_until.unwrap();
        events.clear();
        s.sweep(trust_until + Span(1), &mut events);
        assert_eq!(events.len(), 1, "crashed: {events:?}");
        assert_eq!(events[0].kind, TransitionKind::Suspect);
        events.clear();

        // The restarted boot's first heartbeat: incarnation 1, seq 1 —
        // stale by sequence number, fresh by incarnation.
        let restart = trust_until + Span::from_secs(2);
        let d = s
            .on_heartbeat_incarnated("a", 1, 1, restart, &mut events)
            .expect("restart heartbeat must be fresh");
        assert!(d.trust_until > restart);
        assert_eq!(
            events,
            vec![StreamTransition::new(
                "a",
                TransitionKind::Recovered,
                restart
            )]
        );
        assert_eq!(s.output(&"a", restart + Span(1)), Some(FdOutput::Trust));
        assert_eq!(s.statuses(restart + Span(1))[0].incarnation, 1);
        assert_eq!(s.statuses(restart + Span(1))[0].last_seq, Some(1));
    }

    /// A restart while the old boot is still trusted synthesizes no
    /// suspicion: the stream goes Trust→Trust across the boot boundary
    /// with only the `Recovered` event marking it.
    #[test]
    fn fast_restart_recovers_without_suspicion() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_incarnated("a", 0, 7, hb(1), &mut events);
        events.clear();
        let quick = hb(1) + Span::from_millis(5); // still inside the horizon
        s.on_heartbeat_incarnated("a", 1, 1, quick, &mut events);
        assert_eq!(
            events,
            vec![StreamTransition::new("a", TransitionKind::Recovered, quick)]
        );
        // The missed-expiry variant: the old horizon expired unpublished
        // before the restart — the S must be synthesized at the exact old
        // horizon, then the recovery published at the restart arrival.
        let mut s2 = set();
        events.clear();
        s2.on_heartbeat_incarnated("b", 0, 3, hb(1), &mut events);
        let old_horizon = s2.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();
        let late = old_horizon + Span::from_secs(1);
        s2.on_heartbeat_incarnated("b", 2, 1, late, &mut events);
        assert_eq!(
            events,
            vec![
                StreamTransition::new("b", TransitionKind::Suspect, old_horizon),
                StreamTransition::new("b", TransitionKind::Recovered, late),
            ]
        );
    }

    /// Frames from a dead boot (lower incarnation) are dropped exactly
    /// like stale sequence numbers.
    #[test]
    fn lower_incarnation_frames_are_stale() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_incarnated("a", 2, 1, hb(1), &mut events);
        assert!(s
            .on_heartbeat_incarnated("a", 1, 99, hb(2), &mut events)
            .is_none());
        assert!(s
            .on_heartbeat_incarnated("a", 0, 100, hb(2), &mut events)
            .is_none());
        assert_eq!(s.statuses(hb(2))[0].incarnation, 2);
        // Same incarnation, fresh seq: accepted.
        assert!(s
            .on_heartbeat_incarnated("a", 2, 2, hb(2), &mut events)
            .is_some());
    }

    /// Adoption seeds a relayed horizon so detection continues across a
    /// monitor crash: the adopted stream is trusted until the relayed
    /// horizon, and S-transitions at exactly that instant if no real
    /// heartbeat arrives.
    #[test]
    fn adopted_streams_expire_at_the_relayed_horizon() {
        let mut s = set();
        let mut events = Vec::new();
        let now = hb(1);
        let horizon = now + Span::from_millis(700);
        assert!(s.adopt("x", 3, horizon, now, &mut events));
        assert_eq!(
            events,
            vec![StreamTransition::new("x", TransitionKind::Trust, now)]
        );
        assert_eq!(s.output(&"x", now + Span(1)), Some(FdOutput::Trust));
        assert_eq!(s.statuses(now)[0].incarnation, 3);
        events.clear();
        s.sweep(horizon + Span(1), &mut events);
        assert_eq!(
            events,
            vec![StreamTransition::new("x", TransitionKind::Suspect, horizon)]
        );
    }

    /// Fresher local state wins over a relayed view: adoption must not
    /// clobber a stream the local monitor already tracks further ahead,
    /// nor resurrect one whose relayed horizon is already past.
    #[test]
    fn adoption_defers_to_fresher_local_state() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        let local = s.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();
        assert!(!s.adopt("a", 0, local - Span(1), hb(1), &mut events));
        assert!(events.is_empty());
        // Expired relayed horizon: nothing to seed.
        assert!(!s.adopt("gone", 1, hb(1), hb(1) + Span(1), &mut events));
        assert!(events.is_empty());
        // Real heartbeats take over from an adopted seed seamlessly.
        assert!(s.adopt("x", 1, hb(3), hb(2), &mut events));
        events.clear();
        assert!(s
            .on_heartbeat_incarnated("x", 1, 5, hb(2) + Span::from_millis(1), &mut events)
            .is_some());
        assert!(
            events.is_empty(),
            "already trusted; no new transition: {events:?}"
        );
    }

    #[test]
    fn stale_wheel_entries_are_skipped() {
        let mut s = set();
        let mut events = Vec::new();
        for seq in 1..=5 {
            s.on_heartbeat_with_events("a", seq, hb(seq), &mut events);
        }
        events.clear();
        // Sweep past the first four (superseded) horizons but before the
        // live one: nothing may be published.
        let live = s.statuses(hb(5))[0].trust_until.unwrap();
        s.sweep(live - Span(1), &mut events);
        assert!(events.is_empty());
        assert!(s.next_expiry().is_some());
    }

    #[test]
    fn deregistered_streams_never_publish() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        s.deregister(&"a");
        events.clear();
        s.sweep(Nanos::from_secs(3600), &mut events);
        assert!(events.is_empty());
    }

    /// Regression (stale-horizon bug): `next_expiry` used to peek the
    /// scheduling structure blindly and report horizons already
    /// superseded by fresher heartbeats, making shard workers park and
    /// wake on dead deadlines. The reported horizon must always be some
    /// live stream's current `trust_until`.
    #[test]
    fn next_expiry_always_matches_a_live_stream() {
        let mut s = set();
        for seq in 1..=5 {
            s.on_heartbeat("a", seq, hb(seq));
        }
        s.on_heartbeat("b", 1, hb(5) + Span::from_millis(3));
        let live: Vec<Nanos> = s
            .statuses(hb(5))
            .iter()
            .filter_map(|st| st.trust_until)
            .collect();
        let reported = s.next_expiry().expect("two live horizons queued");
        assert!(
            live.contains(&reported),
            "reported horizon {reported:?} matches no live stream ({live:?})"
        );
        assert_eq!(reported, *live.iter().min().unwrap());

        // Deregistering the stream that owns the minimum must move the
        // reported horizon to the surviving stream, not a dead entry.
        let owner = s
            .statuses(hb(5))
            .into_iter()
            .find(|st| st.trust_until == Some(reported))
            .unwrap()
            .key;
        s.deregister(&owner);
        let survivor: Vec<Nanos> = s
            .statuses(hb(5))
            .iter()
            .filter_map(|st| st.trust_until)
            .collect();
        assert_eq!(s.next_expiry(), survivor.iter().min().copied());
    }

    /// Regression (re-registration leak): a deregister/re-register cycle
    /// must neither resurrect the old occupant's queued expiries nor
    /// drift the stream-count bookkeeping, and churn must not grow the
    /// slot table or the wheel without bound.
    #[test]
    fn churn_is_leak_free_and_gauges_reconcile() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        s.on_heartbeat_with_events("b", 1, hb(1), &mut events);
        let baseline_slots = s.slot_capacity();

        for round in 0..100u64 {
            events.clear();
            // Vacate and immediately re-register under the same key.
            assert!(s.deregister(&"a"));
            s.register("a");
            assert_eq!(s.len(), 2, "register/deregister must reconcile");
            // The new incarnation is suspect until it heartbeats...
            assert_eq!(s.output(&"a", hb(round + 2)), Some(FdOutput::Suspect));
            // ...and the old incarnation's queued expiry must not
            // publish against it.
            s.sweep(hb(round + 2), &mut events);
            assert!(
                events.iter().all(|e| e.key != "a"),
                "old incarnation's expiry leaked into round {round}: {events:?}"
            );
            s.on_heartbeat_with_events("a", round + 2, hb(round + 2), &mut events);
        }

        assert_eq!(
            s.slot_capacity(),
            baseline_slots,
            "churn minted new slots instead of recycling"
        );
        // Dead entries are pruned by sweeps/probes: the wheel cannot
        // have accumulated anywhere near one entry per churn round.
        s.next_expiry();
        assert!(
            s.queued_expiries() <= 4,
            "wheel leaked {} entries over churn",
            s.queued_expiries()
        );
        // Exact gauge reconciliation: counts sum to len.
        let (t, su) = s.counts(hb(101));
        assert_eq!(t + su, s.len());
    }

    /// The hot-mirror fast path must agree with the detectors for every
    /// spec in the suite (they all use the default `output_at`).
    #[test]
    fn hot_mirror_matches_detector_outputs_across_suite() {
        use crate::suite::DetectorSpec;
        for spec in [
            DetectorSpec::Chen { window: 100 },
            DetectorSpec::Bertier { window: 100 },
            DetectorSpec::Phi { window: 100 },
            DetectorSpec::Ed { window: 100 },
            DetectorSpec::TwoWindow { n1: 1, n2: 100 },
            DetectorSpec::MultiWindow {
                windows: vec![1, 10, 100],
            },
        ] {
            let cfg = DetectorConfig {
                spec: spec.clone(),
                ..DetectorConfig::default()
            };
            let mut s: ProcessSet<u64, DetectorConfig> = ProcessSet::new(cfg.clone());
            let mut fd = cfg.build();
            for seq in 1..=20u64 {
                let at = Nanos(seq * DI.0 + (seq % 7) * 3_000_000);
                s.on_heartbeat(1, seq, at);
                fd.on_heartbeat(seq, at);
                for probe in [at + Span(1), at + Span::from_millis(35), at + DI + DI] {
                    assert_eq!(
                        s.output(&1, probe),
                        Some(fd.output_at(probe)),
                        "spec {spec:?} diverges at {probe:?}"
                    );
                }
            }
        }
    }
}
