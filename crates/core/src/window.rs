//! Sliding sample windows.
//!
//! Every algorithm in the paper keeps a bounded window of recent
//! heartbeat observations. Two flavours are needed:
//!
//! * [`RingWindow`] — a fixed-capacity FIFO of raw samples. Pushing into
//!   a full window evicts the oldest sample and returns it, which is what
//!   lets the incremental aggregates below stay O(1) per heartbeat.
//! * [`SumWindow`] — a ring of `i64` values with a running `i128` sum:
//!   the O(1) building block of Chen's expected-arrival average (Eq. 2).
//! * [`MomentsWindow`] — a ring of `f64` values with running first and
//!   second moments: the φ/ED detectors' inter-arrival mean/variance.
//!
//! All three are deliberately allocation-free after construction; a 2W-FD
//! instance processes millions of heartbeats per replay and the
//! per-heartbeat cost is what the micro-benchmarks in `twofd-bench`
//! measure.

use std::collections::VecDeque;

/// Fixed-capacity FIFO window over samples of type `T`.
#[derive(Debug, Clone)]
pub struct RingWindow<T> {
    buf: VecDeque<T>,
    capacity: usize,
}

impl<T> RingWindow<T> {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        RingWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends a sample, evicting and returning the oldest one if full.
    pub fn push(&mut self, value: T) -> Option<T> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(value);
        evicted
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates samples oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Most recently pushed sample.
    pub fn newest(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Oldest retained sample.
    pub fn oldest(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Ring of `i64` samples with an O(1) running sum.
#[derive(Debug, Clone)]
pub struct SumWindow {
    ring: RingWindow<i64>,
    sum: i128,
}

impl SumWindow {
    /// Creates a sum window of the given capacity (must be positive).
    pub fn new(capacity: usize) -> Self {
        SumWindow {
            ring: RingWindow::new(capacity),
            sum: 0,
        }
    }

    /// Pushes a sample, maintaining the running sum.
    pub fn push(&mut self, value: i64) {
        if let Some(evicted) = self.ring.push(value) {
            self.sum -= evicted as i128;
        }
        self.sum += value as i128;
    }

    /// Sum of the retained samples.
    pub fn sum(&self) -> i128 {
        self.sum
    }

    /// Mean of the retained samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.ring.len() as f64)
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// Ring of `f64` samples with O(1) running mean and variance.
///
/// Maintains shifted sums `Σ(x − c)` and `Σ(x − c)²` where `c` is the
/// first sample ever pushed. A raw `Σx²` loses mantissa catastrophically
/// when the samples are large and close together — exactly the regime of
/// nanosecond-magnitude timestamps (`x ≈ 10¹²`, spread ≈ 10¹): `x²`
/// lands near 10²⁴ where an f64's resolution is ≈ 10⁸, wiping out the
/// variance entirely. Centering on the first sample keeps the summed
/// quantities at the *spread's* magnitude instead; the mean adds `c`
/// back and the variance is shift-invariant. The property tests compare
/// against a two-pass reference at both ordinary and ns-scale
/// magnitudes to enforce this.
#[derive(Debug, Clone)]
pub struct MomentsWindow {
    ring: RingWindow<f64>,
    /// Shift applied to every retained sample: the first sample pushed.
    origin: f64,
    origin_set: bool,
    /// `Σ(x − origin)` over retained samples.
    sum: f64,
    /// `Σ(x − origin)²` over retained samples.
    sum_sq: f64,
}

impl MomentsWindow {
    /// Creates a moments window of the given capacity (must be positive).
    pub fn new(capacity: usize) -> Self {
        MomentsWindow {
            ring: RingWindow::new(capacity),
            origin: 0.0,
            origin_set: false,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a sample, maintaining the running moments.
    pub fn push(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "window samples must be finite");
        if !self.origin_set {
            self.origin = value;
            self.origin_set = true;
        }
        if let Some(evicted) = self.ring.push(value) {
            let e = evicted - self.origin;
            self.sum -= e;
            self.sum_sq -= e * e;
        }
        let c = value - self.origin;
        self.sum += c;
        self.sum_sq += c * c;
    }

    /// Mean of the retained samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.origin + self.sum / self.ring.len() as f64)
        }
    }

    /// Population variance of the retained samples (`None` when empty).
    /// Clamped at zero against floating-point cancellation.
    pub fn variance(&self) -> Option<f64> {
        let n = self.ring.len();
        if n == 0 {
            return None;
        }
        // Shift-invariant: computed entirely on the centered samples.
        let mean_c = self.sum / n as f64;
        Some((self.sum_sq / n as f64 - mean_c * mean_c).max(0.0))
    }

    /// Standard deviation of the retained samples (`None` when empty).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_evicts_fifo() {
        let mut w = RingWindow::new(3);
        assert_eq!(w.push(1), None);
        assert_eq!(w.push(2), None);
        assert_eq!(w.push(3), None);
        assert!(w.is_full());
        assert_eq!(w.push(4), Some(1));
        assert_eq!(w.push(5), Some(2));
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(w.oldest(), Some(&3));
        assert_eq!(w.newest(), Some(&5));
    }

    #[test]
    fn ring_capacity_one_always_replaces() {
        let mut w = RingWindow::new(1);
        assert_eq!(w.push("a"), None);
        assert_eq!(w.push("b"), Some("a"));
        assert_eq!(w.len(), 1);
        assert_eq!(w.newest(), Some(&"b"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_rejects_zero_capacity() {
        RingWindow::<u8>::new(0);
    }

    #[test]
    fn ring_clear_empties() {
        let mut w = RingWindow::new(2);
        w.push(1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn sum_window_tracks_sliding_sum() {
        let mut w = SumWindow::new(3);
        assert_eq!(w.mean(), None);
        w.push(10);
        w.push(20);
        w.push(30);
        assert_eq!(w.sum(), 60);
        w.push(40); // evicts 10
        assert_eq!(w.sum(), 90);
        assert_eq!(w.mean(), Some(30.0));
    }

    #[test]
    fn sum_window_handles_negatives() {
        let mut w = SumWindow::new(2);
        w.push(-5);
        w.push(3);
        assert_eq!(w.sum(), -2);
        w.push(-1); // evicts -5
        assert_eq!(w.sum(), 2);
    }

    #[test]
    fn moments_window_basic() {
        let mut w = MomentsWindow::new(4);
        for x in [2.0, 4.0, 4.0, 4.0] {
            w.push(x);
        }
        assert!((w.mean().unwrap() - 3.5).abs() < 1e-12);
        // Population variance of [2,4,4,4] = 0.75.
        assert!((w.variance().unwrap() - 0.75).abs() < 1e-12);
        w.push(6.0); // evicts 2 → [4,4,4,6]
        assert!((w.mean().unwrap() - 4.5).abs() < 1e-12);
        assert!((w.variance().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn moments_variance_never_negative() {
        let mut w = MomentsWindow::new(100);
        // Identical large-ish values: naive sumsq cancellation territory.
        for _ in 0..100 {
            w.push(1234.5678);
        }
        assert!(w.variance().unwrap() >= 0.0);
        assert!(w.variance().unwrap() < 1e-6);
    }

    proptest! {
        #[test]
        fn sum_window_matches_naive(values in prop::collection::vec(-1_000_000i64..1_000_000, 1..200), cap in 1usize..50) {
            let mut w = SumWindow::new(cap);
            let mut naive: Vec<i64> = Vec::new();
            for &v in &values {
                w.push(v);
                naive.push(v);
                if naive.len() > cap {
                    naive.remove(0);
                }
                prop_assert_eq!(w.sum(), naive.iter().map(|&x| x as i128).sum::<i128>());
                prop_assert_eq!(w.len(), naive.len());
            }
        }

        #[test]
        fn moments_window_matches_two_pass(values in prop::collection::vec(0.0f64..10.0, 1..200), cap in 1usize..50) {
            let mut w = MomentsWindow::new(cap);
            let mut naive: Vec<f64> = Vec::new();
            for &v in &values {
                w.push(v);
                naive.push(v);
                if naive.len() > cap {
                    naive.remove(0);
                }
                let n = naive.len() as f64;
                let mean = naive.iter().sum::<f64>() / n;
                let var = naive.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                prop_assert!((w.mean().unwrap() - mean).abs() < 1e-9);
                prop_assert!((w.variance().unwrap() - var).abs() < 1e-7);
            }
        }

        #[test]
        fn moments_window_survives_ns_scale_magnitudes(
            base in 1.0e12f64..2.0e15,
            jitters in prop::collection::vec(0.0f64..2.0e7, 2..200),
            cap in 1usize..50,
        ) {
            // Timestamp-like samples: enormous offset, small spread. A raw
            // Σx/Σx² implementation loses the entire variance to mantissa
            // cancellation here (x² ≈ 1e24+, f64 resolution ≈ 1e8). The
            // reference is itself computed centered — at these magnitudes
            // an uncentered two-pass reference would be the noisier side.
            let mut w = MomentsWindow::new(cap);
            let mut naive: Vec<f64> = Vec::new();
            let origin = base + jitters[0];
            for &j in &jitters {
                let v = base + j;
                w.push(v);
                naive.push(v);
                if naive.len() > cap {
                    naive.remove(0);
                }
                let n = naive.len() as f64;
                let centered: Vec<f64> = naive.iter().map(|x| x - origin).collect();
                let mean_c = centered.iter().sum::<f64>() / n;
                let mean = origin + mean_c;
                let var = centered.iter().map(|c| (c - mean_c).powi(2)).sum::<f64>() / n;
                // Sub-nanosecond mean accuracy despite the 1e12+ offset.
                prop_assert!((w.mean().unwrap() - mean).abs() < 0.5);
                // Cancellation floor scales with the centered second
                // moment (window may drift from the origin), far below
                // the jitter scale the detectors act on.
                let msq = centered.iter().map(|c| c * c).sum::<f64>() / n;
                let tol = 1e-6 * var + 1e-10 * msq + 1e-9;
                prop_assert!(
                    (w.variance().unwrap() - var).abs() < tol,
                    "var {} vs two-pass {}",
                    w.variance().unwrap(),
                    var
                );
            }
        }

        #[test]
        fn ring_window_matches_naive_fifo(values in prop::collection::vec(0u32..1000, 1..100), cap in 1usize..20) {
            let mut w = RingWindow::new(cap);
            let mut naive: Vec<u32> = Vec::new();
            for &v in &values {
                let evicted = w.push(v);
                naive.push(v);
                let expect_evicted = if naive.len() > cap { Some(naive.remove(0)) } else { None };
                prop_assert_eq!(evicted, expect_evicted);
                prop_assert_eq!(w.iter().copied().collect::<Vec<_>>(), naive.clone());
            }
        }
    }
}
