//! Bertier's failure detector (§II-B2 of the paper).
//!
//! Bertier et al. keep Chen's expected-arrival estimation (Eq. 2) but
//! replace the constant safety margin with a dynamic one adapted by
//! Jacobson's TCP-RTO estimation (Eqs. 3–6). On each fresh heartbeat
//! `m_l` received at `A_l`:
//!
//! ```text
//! error_l    = A_l − EA_l − delay_l
//! delay_l+1  = delay_l + γ·error_l
//! var_l+1    = var_l + γ·(|error_l| − var_l)
//! Δto_l+1    = β·delay_l+1 + φ·var_l+1
//! τ_l+1      = EA_l+1 + Δto_l+1
//! ```
//!
//! The algorithm has no free tuning knob (γ, β, φ are fixed constants),
//! which is why the paper plots it as a single point in Figures 6/7.

use crate::detector::{Decision, FailureDetector, FreshnessState};
use crate::estimator::ChenEstimator;
use twofd_sim::time::{Nanos, Span};

/// Jacobson-adaptation constants. The paper: "Parameter γ represents the
/// importance of a new measure … typical values are β [= 1] and φ = 4";
/// Bertier et al. use γ = 0.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BertierParams {
    /// Weight of a new error measurement.
    pub gamma: f64,
    /// Weight of the smoothed error ("delay") in the margin.
    pub beta: f64,
    /// Weight of the error variability in the margin.
    pub phi: f64,
}

impl Default for BertierParams {
    fn default() -> Self {
        BertierParams {
            gamma: 0.1,
            beta: 1.0,
            phi: 4.0,
        }
    }
}

/// Bertier's adaptive failure detector.
#[derive(Debug, Clone)]
pub struct BertierFd {
    estimator: ChenEstimator,
    params: BertierParams,
    /// Smoothed estimation error ("delay_l"), seconds.
    smoothed_error: f64,
    /// Error variability ("var_l"), seconds.
    variability: f64,
    /// EA_l: the prediction made for the message we are waiting for.
    predicted_arrival: Option<Nanos>,
    state: FreshnessState,
}

impl BertierFd {
    /// Creates the detector with the standard constants and the given
    /// estimation window (the paper's comparison uses 1000).
    pub fn new(window: usize, interval: Span) -> Self {
        Self::with_params(window, interval, BertierParams::default())
    }

    /// Creates the detector with explicit Jacobson constants.
    pub fn with_params(window: usize, interval: Span, params: BertierParams) -> Self {
        assert!(params.gamma > 0.0 && params.gamma <= 1.0, "gamma in (0,1]");
        BertierFd {
            estimator: ChenEstimator::new(window, interval),
            params,
            smoothed_error: 0.0,
            variability: 0.0,
            predicted_arrival: None,
            state: FreshnessState::default(),
        }
    }

    /// The current dynamic safety margin Δto, in seconds.
    pub fn current_margin_secs(&self) -> f64 {
        (self.params.beta * self.smoothed_error + self.params.phi * self.variability).max(0.0)
    }

    /// The configured estimation window size.
    pub fn window(&self) -> usize {
        self.estimator.window()
    }
}

impl FailureDetector for BertierFd {
    fn name(&self) -> String {
        format!("bertier({})", self.estimator.window())
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        if !self.state.accept(seq) {
            return None;
        }
        // Eq. 3: estimation error of *this* arrival against the
        // prediction made when the previous heartbeat was processed.
        // For the very first heartbeat there is no prediction; the error
        // is defined as zero so the margin starts from rest.
        if let Some(ea) = self.predicted_arrival {
            let error = arrival.as_secs_f64() - ea.as_secs_f64() - self.smoothed_error;
            // Eqs. 4–5.
            self.smoothed_error += self.params.gamma * error;
            self.variability += self.params.gamma * (error.abs() - self.variability);
        }
        self.estimator.observe(seq, arrival);
        let ea_next = self
            .estimator
            .expected_next_arrival()
            .expect("estimator has at least one sample");
        self.predicted_arrival = Some(ea_next);
        // Eq. 6 (margin floored at zero: a negative timeout would mean
        // suspecting before the expected arrival, which the algorithm
        // never intends).
        let margin = Span::from_secs_f64(self.current_margin_secs());
        let d = Decision {
            trust_until: ea_next + margin,
        };
        self.state.decision = Some(d);
        Some(d)
    }

    fn current_decision(&self) -> Option<Decision> {
        self.state.decision
    }

    fn last_seq(&self) -> Option<u64> {
        self.state.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DI: Span = Span(100_000_000); // 100 ms

    fn arrival(seq: u64, delay_ms: u64) -> Nanos {
        Nanos(seq * DI.0 + delay_ms * 1_000_000)
    }

    #[test]
    fn first_heartbeat_has_zero_margin() {
        let mut fd = BertierFd::new(10, DI);
        let d = fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        // No error history yet: τ_2 = EA_2 exactly.
        assert_eq!(d.trust_until, Nanos(2 * DI.0 + 10_000_000));
        assert_eq!(fd.current_margin_secs(), 0.0);
    }

    #[test]
    fn steady_arrivals_keep_margin_tiny() {
        let mut fd = BertierFd::new(100, DI);
        for seq in 1..=200u64 {
            fd.on_heartbeat(seq, arrival(seq, 10));
        }
        // Perfectly periodic arrivals → errors are ~0 → margin ~0.
        assert!(
            fd.current_margin_secs() < 1e-6,
            "{}",
            fd.current_margin_secs()
        );
    }

    #[test]
    fn jitter_grows_the_margin() {
        let mut fd = BertierFd::new(100, DI);
        for seq in 1..=200u64 {
            // Alternating 5 ms / 45 ms delays: persistent estimation error.
            let delay = if seq % 2 == 0 { 5 } else { 45 };
            fd.on_heartbeat(seq, arrival(seq, delay));
        }
        // The φ·var term must have picked up the ~±20 ms oscillation.
        assert!(
            fd.current_margin_secs() > 0.02,
            "margin {}",
            fd.current_margin_secs()
        );
    }

    #[test]
    fn margin_adapts_downward_after_stabilization() {
        let mut fd = BertierFd::new(10, DI);
        for seq in 1..=50u64 {
            let delay = if seq % 2 == 0 { 5 } else { 45 };
            fd.on_heartbeat(seq, arrival(seq, delay));
        }
        let noisy = fd.current_margin_secs();
        for seq in 51..=400u64 {
            fd.on_heartbeat(seq, arrival(seq, 10));
        }
        let calm = fd.current_margin_secs();
        assert!(calm < noisy / 4.0, "calm {calm} vs noisy {noisy}");
    }

    #[test]
    fn stale_messages_ignored() {
        let mut fd = BertierFd::new(10, DI);
        fd.on_heartbeat(3, arrival(3, 10)).unwrap();
        assert!(fd.on_heartbeat(2, arrival(3, 12)).is_none());
    }

    #[test]
    #[should_panic(expected = "gamma in (0,1]")]
    fn rejects_bad_gamma() {
        BertierFd::with_params(
            10,
            DI,
            BertierParams {
                gamma: 0.0,
                beta: 1.0,
                phi: 4.0,
            },
        );
    }

    #[test]
    fn name_includes_window() {
        assert_eq!(BertierFd::new(1000, DI).name(), "bertier(1000)");
    }
}
