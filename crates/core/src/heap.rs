//! The heap-based reference `ProcessSet` — differential oracle for the
//! timing-wheel implementation.
//!
//! This is the original lazy-deletion `BinaryHeap` process set that
//! [`crate::ProcessSet`] replaced, kept as an independently simple
//! implementation of the *same* published-timeline contract so the
//! wheel can be differentially tested against it (see the proptest in
//! `tests/shard_equivalence.rs`). Two deliberate fixes over the
//! historical version:
//!
//! 1. **Stale-horizon fix** ([`HeapProcessSet::next_expiry`]): the old
//!    `next_expiry` peeked the heap top blindly, so it could report a
//!    horizon long superseded by fresher heartbeats and make a shard
//!    worker park-and-wake on a dead deadline. It now pops stale
//!    entries until the top corresponds to a live stream horizon.
//! 2. **Equality staleness**: every fresh decision pushes its horizon
//!    (even one at or before its own arrival — the "no fresh message"
//!    shrink case), and an entry is live iff its deadline *equals* the
//!    stream's current `trust_until`. This makes the heap's live-entry
//!    multiset — and hence its `next_expiry` sequence — identical to
//!    the wheel's by construction, while publishing the same
//!    S-transitions at the same exact stamps as before (a shrink-case
//!    expiry is published at the first sweep past it rather than at the
//!    first sweep past the stream's *previous* horizon).
//!
//! Unlike [`crate::ProcessSet`] this keeps the `K: Ord` bound (heap
//! entries are `(Nanos, K)` tuples) and scans full detector entries for
//! status queries; it is for tests and small sets, not the fleet path.

use crate::detector::{Decision, FailureDetector, FdOutput};
use crate::multi::{DetectorBuilder, ProcessStatus, StreamTransition, TransitionKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

use twofd_sim::time::Nanos;

struct Entry<D> {
    fd: D,
    last_published: FdOutput,
}

/// A bank of per-process failure detectors scheduled by a lazy-deletion
/// binary min-heap. Reference implementation — see the module docs.
pub struct HeapProcessSet<K, B: DetectorBuilder<K>> {
    builder: B,
    detectors: HashMap<K, Entry<B::Detector>>,
    /// Min-heap of `(trust_until, key)` expiry candidates, lazily
    /// deleted: an entry is live iff it equals its stream's current
    /// horizon.
    expiries: BinaryHeap<Reverse<(Nanos, K)>>,
}

impl<K, B> HeapProcessSet<K, B>
where
    K: Eq + Hash + Ord + Clone,
    B: DetectorBuilder<K>,
{
    /// Creates an empty set; `builder` constructs the detector for a
    /// process the first time a heartbeat from it is seen (or when
    /// registered explicitly).
    pub fn new(builder: B) -> Self {
        HeapProcessSet {
            builder,
            detectors: HashMap::new(),
            expiries: BinaryHeap::new(),
        }
    }

    /// Pre-registers a process so it is reported (as `Suspect`) before
    /// its first heartbeat.
    pub fn register(&mut self, key: K) {
        let builder = &self.builder;
        self.detectors.entry(key.clone()).or_insert_with(|| Entry {
            fd: builder.build(&key),
            last_published: FdOutput::Suspect,
        });
    }

    /// Removes a process from monitoring; returns whether it existed.
    /// Any queued expiry entries for it are discarded lazily.
    pub fn deregister(&mut self, key: &K) -> bool {
        self.detectors.remove(key).is_some()
    }

    /// Feeds a heartbeat from process `key`, auto-registering unknown
    /// processes. Returns the decision (None for stale heartbeats).
    pub fn on_heartbeat(&mut self, key: K, seq: u64, arrival: Nanos) -> Option<Decision> {
        let mut scratch = Vec::new();
        self.on_heartbeat_with_events(key, seq, arrival, &mut scratch)
    }

    /// Feeds a heartbeat and appends any resulting output transitions to
    /// `events` — same contract as
    /// [`crate::ProcessSet::on_heartbeat_with_events`].
    pub fn on_heartbeat_with_events(
        &mut self,
        key: K,
        seq: u64,
        arrival: Nanos,
        events: &mut Vec<StreamTransition<K>>,
    ) -> Option<Decision> {
        let builder = &self.builder;
        let entry = self.detectors.entry(key.clone()).or_insert_with(|| Entry {
            fd: builder.build(&key),
            last_published: FdOutput::Suspect,
        });
        let prev = entry.fd.current_decision();
        let decision = entry.fd.on_heartbeat(seq, arrival)?;

        if entry.last_published == FdOutput::Trust {
            if let Some(p) = prev {
                if p.trust_until < arrival {
                    entry.last_published = FdOutput::Suspect;
                    events.push(StreamTransition::new(
                        key.clone(),
                        TransitionKind::Suspect,
                        p.trust_until,
                    ));
                }
            }
        }

        if decision.trust_until > arrival && entry.last_published == FdOutput::Suspect {
            entry.last_published = FdOutput::Trust;
            events.push(StreamTransition::new(
                key.clone(),
                TransitionKind::Trust,
                arrival,
            ));
        }
        // Unconditional: even a shrink-case horizon (trust_until <=
        // arrival) is queued, so the live-entry multiset matches the
        // wheel's exactly.
        self.expiries.push(Reverse((decision.trust_until, key)));

        Some(decision)
    }

    /// Publishes the S-transition of every stream whose trust horizon
    /// expired strictly before `now`, stamped at the exact expiry
    /// instant.
    pub fn sweep(&mut self, now: Nanos, events: &mut Vec<StreamTransition<K>>) {
        while let Some(Reverse((t, _))) = self.expiries.peek() {
            if *t >= now {
                break;
            }
            let Reverse((t, key)) = self.expiries.pop().expect("peeked entry");
            let Some(entry) = self.detectors.get_mut(&key) else {
                continue; // deregistered since the entry was queued
            };
            let Some(d) = entry.fd.current_decision() else {
                continue;
            };
            if d.trust_until != t {
                continue; // stale: superseded by a fresher heartbeat
            }
            if entry.last_published == FdOutput::Trust {
                entry.last_published = FdOutput::Suspect;
                events.push(StreamTransition::new(key, TransitionKind::Suspect, t));
            }
        }
    }

    /// Earliest *live* queued horizon: stale entries (superseded or
    /// deregistered) are popped before reporting, so the returned
    /// instant always matches some stream's current `trust_until`.
    pub fn next_expiry(&mut self) -> Option<Nanos> {
        loop {
            let Reverse((t, key)) = self.expiries.peek()?;
            let live = self
                .detectors
                .get(key)
                .and_then(|e| e.fd.current_decision())
                .is_some_and(|d| d.trust_until == *t);
            if live {
                return Some(*t);
            }
            self.expiries.pop();
        }
    }

    /// The output for process `key` at time `t` (`None` if unknown).
    pub fn output(&self, key: &K, t: Nanos) -> Option<FdOutput> {
        self.detectors.get(key).map(|e| e.fd.output_at(t))
    }

    /// Status snapshot of every monitored process at time `t`, in
    /// unspecified order.
    pub fn statuses(&self, t: Nanos) -> Vec<ProcessStatus<K>> {
        self.detectors
            .iter()
            .map(|(key, e)| ProcessStatus {
                key: key.clone(),
                output: e.fd.output_at(t),
                last_seq: e.fd.last_seq(),
                trust_until: e.fd.current_decision().map(|d| d.trust_until),
                // The heap oracle is the crash-stop reference; it never
                // sees an incarnation.
                incarnation: 0,
            })
            .collect()
    }

    /// `(trusted, suspected)` process counts at time `t`.
    pub fn counts(&self, t: Nanos) -> (usize, usize) {
        let mut trusted = 0;
        let mut suspect = 0;
        for e in self.detectors.values() {
            match e.fd.output_at(t) {
                FdOutput::Trust => trusted += 1,
                FdOutput::Suspect => suspect += 1,
            }
        }
        (trusted, suspect)
    }

    /// Number of monitored processes.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// True when no process is monitored.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twofd::TwoWindowFd;
    use twofd_sim::time::Span;

    const DI: Span = Span(100_000_000);

    fn set() -> HeapProcessSet<&'static str, impl Fn(&&'static str) -> TwoWindowFd> {
        HeapProcessSet::new(|_key: &&str| TwoWindowFd::new(1, 100, DI, Span::from_millis(40)))
    }

    fn hb(seq: u64) -> Nanos {
        Nanos(seq * DI.0 + 10_000_000)
    }

    #[test]
    fn next_expiry_reports_only_live_horizons() {
        let mut s = set();
        for seq in 1..=5 {
            s.on_heartbeat("a", seq, hb(seq));
        }
        let live = s.statuses(hb(5))[0].trust_until.unwrap();
        // The historical bug: four superseded horizons sit below `live`
        // in the heap. The fixed probe must skip them all.
        assert_eq!(s.next_expiry(), Some(live));
    }

    #[test]
    fn next_expiry_skips_deregistered_streams() {
        let mut s = set();
        s.on_heartbeat("a", 1, hb(1));
        s.on_heartbeat("b", 5, hb(1) + Span::from_millis(1));
        s.deregister(&"a");
        let live = s
            .statuses(hb(1))
            .iter()
            .find(|st| st.key == "b")
            .unwrap()
            .trust_until
            .unwrap();
        assert_eq!(s.next_expiry(), Some(live));
        s.deregister(&"b");
        assert_eq!(s.next_expiry(), None);
    }

    #[test]
    fn sweep_and_synthesis_match_the_published_contract() {
        let mut s = set();
        let mut events = Vec::new();
        s.on_heartbeat_with_events("a", 1, hb(1), &mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].output, FdOutput::Trust);
        let trust_until = s.statuses(hb(1))[0].trust_until.unwrap();
        events.clear();
        s.sweep(trust_until, &mut events);
        assert!(events.is_empty(), "horizon instant itself is exclusive");
        s.sweep(trust_until + Span(1), &mut events);
        assert_eq!(
            events,
            vec![StreamTransition::new(
                "a",
                TransitionKind::Suspect,
                trust_until
            )]
        );
    }
}
