//! QoS metrics for failure detectors (§II-A2 of the paper).
//!
//! In the paper's evaluation model the monitored process never crashes,
//! so every S-transition is a *mistake*. From the mistake log of a replay
//! the four primary metrics follow:
//!
//! * **T_D** — detection time: how long after a crash the detector would
//!   suspect for ever. Measured per heartbeat as the worst case (crash
//!   immediately after the heartbeat is sent ⇒ detection at that
//!   heartbeat's freshness point) and as the average case (crash
//!   uniformly distributed within the following inter-send interval).
//! * **T_MR** — average mistake rate: S-transitions per unit time.
//! * **T_M** — average mistake duration: mean S→T span.
//! * **P_A** — query accuracy probability: fraction of time the output
//!   is correct (`Trust`, since `p` is alive throughout).

use serde::{Deserialize, Serialize};
use twofd_sim::time::{Nanos, Span};

use crate::Segment;

/// One suspicion period of a detector monitoring a live process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mistake {
    /// The S-transition instant.
    pub start: Nanos,
    /// The T-transition instant (or the replay horizon if censored).
    pub end: Nanos,
    /// Sequence number of the last fresh heartbeat processed before the
    /// S-transition — used to attribute the mistake to a trace segment.
    pub after_seq: u64,
    /// True if the replay horizon arrived before the mistake was
    /// corrected.
    pub censored: bool,
}

impl Mistake {
    /// How long the mistaken suspicion lasted.
    pub fn duration(&self) -> Span {
        self.end - self.start
    }
}

/// Aggregated QoS metrics of one replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosMetrics {
    /// Average-case detection time T_D, seconds (crash uniformly within
    /// an inter-send interval).
    pub detection_time: f64,
    /// Worst-case detection time, seconds (crash right after a send).
    pub worst_detection_time: f64,
    /// Average mistake rate T_MR, S-transitions per second.
    pub mistake_rate: f64,
    /// Average mistake duration T_M, seconds (uncensored mistakes).
    pub avg_mistake_duration: f64,
    /// Query accuracy probability P_A.
    pub query_accuracy: f64,
    /// Total number of mistakes (S-transitions), censored included.
    pub mistakes: u64,
    /// Observation span the rates are normalized over, seconds.
    pub observed_secs: f64,
}

impl QosMetrics {
    /// Computes the metrics from a mistake log.
    ///
    /// * `mistakes` — the replay's mistake log.
    /// * `observed` — observation span (first fresh arrival → horizon).
    /// * `sum_worst_td` — Σ over fresh heartbeats of `(τ − σ)`, seconds.
    /// * `fresh` — number of fresh heartbeats.
    /// * `interval` — the sender's Δi (for the average-case correction).
    pub fn from_mistakes(
        mistakes: &[Mistake],
        observed: Span,
        sum_worst_td: f64,
        fresh: u64,
        interval: Span,
    ) -> QosMetrics {
        let observed_secs = observed.as_secs_f64();
        let suspect: f64 = mistakes.iter().map(|m| m.duration().as_secs_f64()).sum();
        let closed: Vec<&Mistake> = mistakes.iter().filter(|m| !m.censored).collect();
        let avg_mistake_duration = if closed.is_empty() {
            if mistakes.is_empty() {
                0.0
            } else {
                suspect / mistakes.len() as f64
            }
        } else {
            closed
                .iter()
                .map(|m| m.duration().as_secs_f64())
                .sum::<f64>()
                / closed.len() as f64
        };
        let worst = if fresh == 0 {
            0.0
        } else {
            sum_worst_td / fresh as f64
        };
        QosMetrics {
            detection_time: (worst - interval.as_secs_f64() / 2.0).max(0.0),
            worst_detection_time: worst,
            mistake_rate: if observed_secs > 0.0 {
                mistakes.len() as f64 / observed_secs
            } else {
                0.0
            },
            avg_mistake_duration,
            query_accuracy: if observed_secs > 0.0 {
                (1.0 - suspect / observed_secs).clamp(0.0, 1.0)
            } else {
                1.0
            },
            mistakes: mistakes.len() as u64,
            observed_secs,
        }
    }

    /// Average mistake *recurrence* time (the reciprocal metric Chen's
    /// QoS spec bounds from below), seconds; infinite with no mistakes.
    pub fn mistake_recurrence(&self) -> f64 {
        if self.mistake_rate > 0.0 {
            1.0 / self.mistake_rate
        } else {
            f64::INFINITY
        }
    }
}

/// Counts mistakes per trace segment, attributing each mistake to the
/// segment containing the heartbeat it followed.
pub fn mistakes_by_segment(mistakes: &[Mistake], segments: &[Segment]) -> Vec<u64> {
    let mut counts = vec![0u64; segments.len()];
    for m in mistakes {
        if let Some(i) = segments.iter().position(|s| s.contains(m.after_seq)) {
            counts[i] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(start_ms: u64, end_ms: u64, after_seq: u64, censored: bool) -> Mistake {
        Mistake {
            start: Nanos::from_millis(start_ms),
            end: Nanos::from_millis(end_ms),
            after_seq,
            censored,
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(mk(100, 150, 1, false).duration(), Span::from_millis(50));
    }

    #[test]
    fn metrics_on_clean_replay() {
        let m = QosMetrics::from_mistakes(
            &[],
            Span::from_secs(100),
            215.0,
            1000,
            Span::from_millis(100),
        );
        assert_eq!(m.mistakes, 0);
        assert_eq!(m.mistake_rate, 0.0);
        assert_eq!(m.query_accuracy, 1.0);
        assert_eq!(m.mistake_recurrence(), f64::INFINITY);
        assert!((m.worst_detection_time - 0.215).abs() < 1e-12);
        assert!((m.detection_time - 0.165).abs() < 1e-12);
    }

    #[test]
    fn metrics_count_rates_and_accuracy() {
        let mistakes = vec![mk(1_000, 1_100, 10, false), mk(5_000, 5_300, 50, false)];
        let m = QosMetrics::from_mistakes(
            &mistakes,
            Span::from_secs(100),
            0.0,
            0,
            Span::from_millis(100),
        );
        assert_eq!(m.mistakes, 2);
        assert!((m.mistake_rate - 0.02).abs() < 1e-12);
        // Suspect time 0.4 s of 100 s.
        assert!((m.query_accuracy - 0.996).abs() < 1e-12);
        assert!((m.avg_mistake_duration - 0.2).abs() < 1e-12);
        assert!((m.mistake_recurrence() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn censored_mistakes_count_for_rate_not_duration() {
        let mistakes = vec![mk(0, 100, 1, false), mk(900, 1_000, 9, true)];
        let m = QosMetrics::from_mistakes(
            &mistakes,
            Span::from_secs(1),
            0.0,
            0,
            Span::from_millis(100),
        );
        assert_eq!(m.mistakes, 2);
        // Average duration uses only the closed mistake (0.1 s).
        assert!((m.avg_mistake_duration - 0.1).abs() < 1e-12);
        // Accuracy accounts for both periods (0.2 s suspect of 1 s).
        assert!((m.query_accuracy - 0.8).abs() < 1e-12);
    }

    #[test]
    fn all_censored_falls_back_to_overall_mean() {
        let mistakes = vec![mk(0, 500, 1, true)];
        let m = QosMetrics::from_mistakes(
            &mistakes,
            Span::from_secs(1),
            0.0,
            0,
            Span::from_millis(100),
        );
        assert!((m.avg_mistake_duration - 0.5).abs() < 1e-12);
    }

    #[test]
    fn detection_time_floor_at_zero() {
        let m = QosMetrics::from_mistakes(&[], Span::from_secs(1), 0.01, 1, Span::from_millis(100));
        assert_eq!(m.detection_time, 0.0);
        assert!((m.worst_detection_time - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_observation_span() {
        let m = QosMetrics::from_mistakes(&[], Span::ZERO, 0.0, 0, Span::from_millis(100));
        assert_eq!(m.mistake_rate, 0.0);
        assert_eq!(m.query_accuracy, 1.0);
    }

    #[test]
    fn segment_attribution() {
        let segments = vec![Segment::new("a", 1, 100), Segment::new("b", 100, 200)];
        let mistakes = vec![
            mk(0, 1, 5, false),
            mk(2, 3, 99, false),
            mk(4, 5, 100, false),
            mk(6, 7, 500, false), // outside all segments
        ];
        assert_eq!(mistakes_by_segment(&mistakes, &segments), vec![2, 1]);
    }
}
