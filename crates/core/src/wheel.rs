//! Hierarchical timing wheel for trust-horizon expiries.
//!
//! The lazy-deletion binary heap that [`crate::ProcessSet`] used to
//! schedule expiries costs `O(log n)` per fresh heartbeat and — worse at
//! fleet scale — scatters its entries across an ever-reordering array,
//! so every sweep and every `next_expiry` probe is a cache-miss chain.
//! This module replaces it with the classic hierarchical timing wheel
//! (Varghese & Lauck): `O(1)` insert, `O(1)` amortized advance, and
//! batched harvesting of everything that expired in a tick.
//!
//! ## Geometry
//!
//! Time is quantized into ticks of `2^20` ns (≈ 1.05 ms) — comparable to
//! the sharded monitor's minimum park and far below any realistic
//! heartbeat interval, so quantization never delays an expiry by more
//! than one park. Four levels of 64 slots each cover:
//!
//! | level | slot width | horizon |
//! |-------|------------|---------|
//! | 0     | 1 tick ≈ 1.05 ms   | ≈ 67 ms  |
//! | 1     | 64 ticks ≈ 67 ms   | ≈ 4.3 s  |
//! | 2     | 64² ticks ≈ 4.3 s  | ≈ 4.6 min|
//! | 3     | 64³ ticks ≈ 4.6 min| ≈ 4.9 h  |
//!
//! Deadlines beyond level 3 go to an unsorted overflow list that is
//! re-examined once per level-3 rotation. Deadlines in the current (or a
//! past) tick live in a `cur` list checked entry-by-entry, which keeps
//! the harvest *exact*: [`TimingWheel::advance`] emits precisely the
//! entries with `deadline < now`, never early, despite the coarse ticks.
//!
//! ## Staleness
//!
//! The wheel stores `(slot, gen, deadline)` triples and never removes an
//! entry when its stream is superseded or deregistered — exactly like
//! the lazy heap. The owner supplies an `is_live` predicate (in
//! [`crate::ProcessSet`]: *generation matches and `deadline` equals the
//! stream's current `trust_until`*) to [`TimingWheel::next_expiry_with`],
//! which prunes dead entries as it scans and therefore reports only live
//! horizons — the fix for the stale-horizon parking bug. A one-entry
//! cached minimum makes the common repeated probe `O(1)`.
//!
//! The wheel itself never reads a clock: all time comes in as [`Nanos`]
//! arguments, so it is deterministic under simulated and manual clocks.

use twofd_sim::time::Nanos;

/// Log2 of the tick width in nanoseconds: ticks of `2^20` ns ≈ 1.05 ms.
pub const TICK_SHIFT: u32 = 20;

/// Log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels (beyond them: the overflow list).
const LEVELS: usize = 4;
/// Slot-index mask within a level.
const MASK: u64 = (SLOTS as u64) - 1;

/// One scheduled expiry: a dense stream slot, the slot's generation at
/// scheduling time (guards against slot recycling), and the exact
/// nanosecond deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelEntry {
    /// Dense stream slot (see [`crate::slab::StreamSlab`]).
    pub slot: u32,
    /// Generation of the slot when the entry was scheduled.
    pub gen: u32,
    /// Exact trust horizon being scheduled.
    pub deadline: Nanos,
}

/// A four-level hierarchical timing wheel over [`WheelEntry`]s.
pub struct TimingWheel {
    /// Current tick (`now >> TICK_SHIFT` of the last `advance`).
    now_tick: u64,
    /// Flattened `LEVELS × SLOTS` buckets.
    buckets: Vec<Vec<WheelEntry>>,
    /// Per-level occupancy bitmaps (bit `i` ⇔ bucket `i` non-empty).
    occ: [u64; LEVELS],
    /// Entries whose deadline falls in the current tick (or earlier at
    /// insert time); checked entry-by-entry for exact harvesting.
    cur: Vec<WheelEntry>,
    /// Deadlines beyond the level-3 horizon.
    overflow: Vec<WheelEntry>,
    /// Cached minimum *live* entry from the last successful
    /// `next_expiry_with` scan; invalidated conservatively.
    cached_min: Option<WheelEntry>,
    /// Entries currently stored (live and dead alike).
    len: usize,
}

impl TimingWheel {
    /// An empty wheel whose clock starts at `origin`.
    //
    // hotpath:allow(alloc) — construction path: one allocation burst
    // per shard at startup (the bucket grid); the insert/expire paths
    // reuse these vectors and never allocate beyond amortised growth.
    pub fn new(origin: Nanos) -> Self {
        TimingWheel {
            now_tick: origin.0 >> TICK_SHIFT,
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            cur: Vec::new(),
            overflow: Vec::new(),
            cached_min: None,
            len: 0,
        }
    }

    /// Number of entries stored, including superseded (dead) ones that
    /// have not been pruned yet.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `(slot, gen, deadline)`. `O(1)`; never inspects other
    /// entries. Superseded entries for the same slot are *not* removed —
    /// they die by generation/deadline mismatch.
    pub fn insert(&mut self, slot: u32, gen: u32, deadline: Nanos) {
        let e = WheelEntry {
            slot,
            gen,
            deadline,
        };
        match self.cached_min {
            // A strictly earlier live horizon: it is the new minimum.
            Some(c) if e.deadline < c.deadline => self.cached_min = Some(e),
            // The cached stream got a new (not earlier) horizon, so the
            // cached entry is now stale: forget it.
            Some(c) if c.slot == slot && (e.deadline, e.gen) != (c.deadline, c.gen) => {
                self.cached_min = None
            }
            _ => {}
        }
        self.place(e);
        self.len += 1;
    }

    /// Tells the wheel that `slot` was deregistered, so a cached minimum
    /// pointing at it must not be trusted. Stored entries are pruned
    /// lazily as usual.
    pub fn note_removed(&mut self, slot: u32) {
        if self.cached_min.is_some_and(|c| c.slot == slot) {
            self.cached_min = None;
        }
    }

    /// Routes an entry to its bucket relative to `self.now_tick`.
    fn place(&mut self, e: WheelEntry) {
        let dt = e.deadline.0 >> TICK_SHIFT;
        if dt <= self.now_tick {
            self.cur.push(e);
            return;
        }
        let delta = dt - self.now_tick;
        let level = if delta < (1 << LEVEL_BITS) {
            0
        } else if delta < (1 << (2 * LEVEL_BITS)) {
            1
        } else if delta < (1 << (3 * LEVEL_BITS)) {
            2
        } else if delta < (1 << (4 * LEVEL_BITS)) {
            3
        } else {
            self.overflow.push(e);
            return;
        };
        let idx = ((dt >> (LEVEL_BITS * level as u32)) & MASK) as usize;
        self.buckets[level * SLOTS + idx].push(e);
        self.occ[level] |= 1 << idx;
    }

    /// Advances the wheel to `now`, appending to `due` **exactly** the
    /// stored entries with `deadline < now` (strict, matching the sweep
    /// semantics of [`crate::ProcessSet::sweep`]). Entries are emitted in
    /// harvest order, not deadline order.
    pub fn advance(&mut self, now: Nanos, due: &mut Vec<WheelEntry>) {
        let before = due.len();
        let target = now.0 >> TICK_SHIFT;
        while self.now_tick < target {
            let epoch_end = (self.now_tick & !MASK) + SLOTS as u64;
            let stop = target.min(epoch_end);
            // Level-0 buckets for ticks in (now_tick, stop) are fully
            // elapsed: every entry in them satisfies
            // `deadline < (tick+1) << TICK_SHIFT <= now`.
            let lo = (self.now_tick & MASK) + 1;
            let hi = if stop == epoch_end {
                SLOTS as u64
            } else {
                stop & MASK
            };
            let mut mask = self.occ[0] & range_mask(lo, hi);
            while mask != 0 {
                let idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.occ[0] &= !(1 << idx);
                due.append(&mut self.buckets[idx]);
            }
            self.now_tick = stop;
            if stop == epoch_end {
                self.cascade();
            }
            if self.now_tick == target {
                // The target tick's own bucket holds entries that may be
                // due only partway through the tick: per-entry check.
                let idx = (self.now_tick & MASK) as usize;
                if self.occ[0] & (1 << idx) != 0 {
                    self.occ[0] &= !(1 << idx);
                    let mut b = std::mem::take(&mut self.buckets[idx]);
                    self.cur.append(&mut b);
                    self.buckets[idx] = b;
                }
            }
        }
        // Exact harvest of current-tick (and insert-time-past) entries.
        let mut i = 0;
        while i < self.cur.len() {
            if self.cur[i].deadline < now {
                due.push(self.cur.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.len -= due.len() - before;
        // Anything at or past the cached minimum may just have been
        // harvested out of the wheel.
        if self.cached_min.is_some_and(|c| c.deadline < now) {
            self.cached_min = None;
        }
    }

    /// Redistributes the higher-level buckets that expire at the epoch
    /// boundary `self.now_tick` (a multiple of 64 ticks).
    fn cascade(&mut self) {
        let t = self.now_tick;
        if t & ((1 << (4 * LEVEL_BITS)) - 1) == 0 {
            // A full level-3 rotation elapsed: overflow entries may now
            // be within the wheel horizon.
            let of = std::mem::take(&mut self.overflow);
            for e in of {
                self.place(e);
            }
        }
        if t & ((1 << (3 * LEVEL_BITS)) - 1) == 0 {
            self.cascade_level(3);
        }
        if t & ((1 << (2 * LEVEL_BITS)) - 1) == 0 {
            self.cascade_level(2);
        }
        self.cascade_level(1);
    }

    /// Drains the bucket of `level` at the current rotation position and
    /// re-places its entries (into lower levels or `cur`).
    fn cascade_level(&mut self, level: usize) {
        let idx = ((self.now_tick >> (LEVEL_BITS * level as u32)) & MASK) as usize;
        if self.occ[level] & (1 << idx) == 0 {
            return;
        }
        self.occ[level] &= !(1 << idx);
        let b = std::mem::take(&mut self.buckets[level * SLOTS + idx]);
        for e in b {
            self.place(e);
        }
    }

    /// The earliest deadline among stored entries that `is_live` accepts,
    /// pruning dead entries as it scans. Returns `None` when no live
    /// entry is scheduled.
    ///
    /// This is the stale-horizon fix: the reported horizon always belongs
    /// to a stream whose *current* trust horizon it is, so a sweeper
    /// parked on it never wakes for a dead deadline. The result is
    /// memoized; repeated probes without intervening earlier inserts or
    /// harvests are `O(1)`.
    pub fn next_expiry_with<F>(&mut self, mut is_live: F) -> Option<Nanos>
    where
        F: FnMut(&WheelEntry) -> bool,
    {
        if let Some(c) = self.cached_min {
            if is_live(&c) {
                return Some(c.deadline);
            }
            self.cached_min = None;
        }
        let mut best: Option<WheelEntry> = None;
        let mut pruned = 0;
        // Current-tick entries can precede everything in the levels.
        if let Some(m) = scan_bucket(&mut self.cur, &mut is_live, &mut pruned) {
            min_entry(&mut best, m);
        }
        for level in 0..LEVELS {
            let pos = (self.now_tick >> (LEVEL_BITS * level as u32)) & MASK;
            // Buckets in time order: the remainder of this rotation,
            // then the wrapped (next-rotation) part. Within a level the
            // first bucket holding a live entry holds the level minimum.
            for idx in (pos + 1..SLOTS as u64).chain(0..=pos) {
                if self.occ[level] & (1 << idx) == 0 {
                    continue;
                }
                let b = &mut self.buckets[level * SLOTS + idx as usize];
                let m = scan_bucket(b, &mut is_live, &mut pruned);
                if b.is_empty() {
                    self.occ[level] &= !(1 << idx);
                }
                if let Some(m) = m {
                    min_entry(&mut best, m);
                    break;
                }
            }
        }
        if let Some(m) = scan_bucket(&mut self.overflow, &mut is_live, &mut pruned) {
            min_entry(&mut best, m);
        }
        self.len -= pruned;
        self.cached_min = best;
        best.map(|e| e.deadline)
    }
}

/// Bitmask with bits `lo..hi` (exclusive) set.
fn range_mask(lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= 64 && hi <= 64);
    if lo >= hi {
        return 0;
    }
    let high = if hi == 64 { u64::MAX } else { (1 << hi) - 1 };
    high & !((1 << lo) - 1)
}

/// Removes dead entries from `v` and returns its minimum live entry.
fn scan_bucket<F>(
    v: &mut Vec<WheelEntry>,
    is_live: &mut F,
    pruned: &mut usize,
) -> Option<WheelEntry>
where
    F: FnMut(&WheelEntry) -> bool,
{
    let mut min: Option<WheelEntry> = None;
    let mut i = 0;
    while i < v.len() {
        if is_live(&v[i]) {
            min_entry(&mut min, v[i]);
            i += 1;
        } else {
            v.swap_remove(i);
            *pruned += 1;
        }
    }
    min
}

/// `*best = min(*best, e)` by deadline.
fn min_entry(best: &mut Option<WheelEntry>, e: WheelEntry) {
    if best.is_none_or(|b| e.deadline < b.deadline) {
        *best = Some(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 1 << TICK_SHIFT;

    fn drain(w: &mut TimingWheel, now: Nanos) -> Vec<WheelEntry> {
        let mut due = Vec::new();
        w.advance(now, &mut due);
        due
    }

    #[test]
    fn harvest_is_strict_and_exact() {
        let mut w = TimingWheel::new(Nanos(0));
        let d = Nanos(3 * TICK + 17);
        w.insert(1, 0, d);
        // Advancing *to* the deadline publishes nothing...
        assert!(drain(&mut w, d).is_empty());
        // ...one nanosecond later it fires, exactly once.
        let due = drain(&mut w, Nanos(d.0 + 1));
        assert_eq!(
            due,
            vec![WheelEntry {
                slot: 1,
                gen: 0,
                deadline: d
            }]
        );
        assert!(drain(&mut w, Nanos(d.0 + TICK)).is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_deadline_fires_without_tick_movement() {
        let mut w = TimingWheel::new(Nanos(5 * TICK));
        let d = Nanos(5 * TICK + 100);
        w.insert(2, 0, d);
        assert!(drain(&mut w, Nanos(5 * TICK + 100)).is_empty());
        assert_eq!(drain(&mut w, Nanos(5 * TICK + 101)).len(), 1);
    }

    #[test]
    fn past_deadline_insert_fires_on_next_advance() {
        let mut w = TimingWheel::new(Nanos(10 * TICK));
        w.insert(3, 0, Nanos(2 * TICK));
        let due = drain(&mut w, Nanos(10 * TICK + 1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].deadline, Nanos(2 * TICK));
    }

    #[test]
    fn all_levels_and_overflow_deliver() {
        let mut w = TimingWheel::new(Nanos(0));
        // One deadline per level plus one beyond the wheel horizon.
        let deadlines = [
            Nanos(10 * TICK),              // level 0
            Nanos(200 * TICK),             // level 1
            Nanos(10_000 * TICK),          // level 2
            Nanos(500_000 * TICK),         // level 3
            Nanos(20_000_000 * TICK + 42), // overflow (> 64^4 ticks)
        ];
        for (i, d) in deadlines.iter().enumerate() {
            w.insert(i as u32, 7, *d);
        }
        assert_eq!(w.len(), 5);
        for (i, d) in deadlines.iter().enumerate() {
            let due = drain(&mut w, Nanos(d.0 + 1));
            assert_eq!(due.len(), 1, "deadline {i} must fire alone");
            assert_eq!(
                due[0],
                WheelEntry {
                    slot: i as u32,
                    gen: 7,
                    deadline: *d
                }
            );
        }
        assert!(w.is_empty());
    }

    #[test]
    fn coarse_jump_delivers_everything_in_between() {
        let mut w = TimingWheel::new(Nanos(0));
        for s in 0..1000u32 {
            w.insert(s, 0, Nanos((s as u64 + 1) * 3 * TICK + (s as u64 % 977)));
        }
        // A single one-hour jump (ManualClock style) harvests all.
        let due = drain(&mut w, Nanos::from_secs(3600));
        assert_eq!(due.len(), 1000);
        assert!(w.is_empty());
    }

    #[test]
    fn next_expiry_skips_dead_entries_and_prunes() {
        let mut w = TimingWheel::new(Nanos(0));
        w.insert(1, 0, Nanos(5 * TICK)); // dead (superseded)
        w.insert(1, 0, Nanos(9 * TICK)); // live
        w.insert(2, 0, Nanos(7 * TICK)); // dead (deregistered)
        let live = |e: &WheelEntry| e.slot == 1 && e.deadline == Nanos(9 * TICK);
        assert_eq!(w.next_expiry_with(live), Some(Nanos(9 * TICK)));
        assert_eq!(w.len(), 1, "dead entries were pruned by the scan");
        // Cached: a second probe still answers correctly.
        assert_eq!(w.next_expiry_with(live), Some(Nanos(9 * TICK)));
    }

    #[test]
    fn next_expiry_sees_cross_level_minimum() {
        let mut w = TimingWheel::new(Nanos(0));
        w.insert(1, 0, Nanos(100 * TICK)); // level 1
        w.insert(2, 0, Nanos(3 * TICK)); // level 0 — the minimum
        w.insert(3, 0, Nanos(70_000 * TICK)); // level 2
        assert_eq!(w.next_expiry_with(|_| true), Some(Nanos(3 * TICK)));
        // Harvest the minimum; the next minimum is the level-1 entry.
        let due = drain(&mut w, Nanos(4 * TICK));
        assert_eq!(due.len(), 1);
        assert_eq!(w.next_expiry_with(|_| true), Some(Nanos(100 * TICK)));
    }

    #[test]
    fn cached_min_invalidates_on_earlier_insert() {
        let mut w = TimingWheel::new(Nanos(0));
        w.insert(1, 0, Nanos(50 * TICK));
        assert_eq!(w.next_expiry_with(|_| true), Some(Nanos(50 * TICK)));
        w.insert(2, 0, Nanos(8 * TICK));
        assert_eq!(w.next_expiry_with(|_| true), Some(Nanos(8 * TICK)));
    }

    #[test]
    fn cached_min_invalidates_on_same_slot_reschedule() {
        let mut w = TimingWheel::new(Nanos(0));
        w.insert(1, 0, Nanos(10 * TICK));
        assert_eq!(w.next_expiry_with(|_| true), Some(Nanos(10 * TICK)));
        // The stream's horizon moves later; the old entry is now dead.
        w.insert(1, 0, Nanos(40 * TICK));
        let q = w.next_expiry_with(|e| e.deadline == Nanos(40 * TICK));
        assert_eq!(q, Some(Nanos(40 * TICK)));
    }

    #[test]
    fn note_removed_drops_cached_min() {
        let mut w = TimingWheel::new(Nanos(0));
        w.insert(1, 0, Nanos(10 * TICK));
        w.insert(2, 0, Nanos(20 * TICK));
        assert_eq!(w.next_expiry_with(|_| true), Some(Nanos(10 * TICK)));
        w.note_removed(1);
        assert_eq!(w.next_expiry_with(|e| e.slot != 1), Some(Nanos(20 * TICK)));
    }

    #[test]
    fn wrapped_level0_entries_fire_in_the_next_epoch() {
        // Start near an epoch boundary so a short deadline wraps.
        let start = 62 * TICK;
        let mut w = TimingWheel::new(Nanos(start));
        let d = Nanos(start + 5 * TICK); // tick 67 → level-0 index 3 (wrapped)
        w.insert(9, 0, d);
        assert_eq!(w.next_expiry_with(|_| true), Some(d));
        assert!(drain(&mut w, d).is_empty());
        assert_eq!(drain(&mut w, Nanos(d.0 + 1)).len(), 1);
    }
}
