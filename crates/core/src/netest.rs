//! Online estimation of network behaviour (§V-A.1 of the paper).
//!
//! A live failure-detection service cannot be handed `pL` and `V(D)` —
//! it estimates them from the heartbeat stream itself:
//!
//! * `pL` — count missing sequence numbers against the highest sequence
//!   number seen;
//! * `V(D)` — variance of `A − S` (receive time minus sender timestamp)
//!   over a sliding window. Clock skew shifts every `A − S` by the same
//!   constant, so the *variance* is unaffected — the paper's key remark.
//!
//! [`NetworkEstimator`] feeds [`crate::qos::configure`] in adaptive
//! deployments: re-run the procedure periodically with the current
//! estimates and the detector re-tunes itself to the network.

use crate::qos::NetworkBehavior;
use crate::window::MomentsWindow;
use twofd_sim::time::Nanos;

/// Sliding estimator of `(pL, V(D))` from observed heartbeats.
#[derive(Debug, Clone)]
pub struct NetworkEstimator {
    delays: MomentsWindow,
    highest_seq: u64,
    received: u64,
}

impl NetworkEstimator {
    /// Creates an estimator keeping `window` delay samples.
    pub fn new(window: usize) -> Self {
        NetworkEstimator {
            delays: MomentsWindow::new(window),
            highest_seq: 0,
            received: 0,
        }
    }

    /// Records the delivery of heartbeat `seq`, timestamped `send` by the
    /// sender's clock and received at `arrival` on the local clock.
    pub fn observe(&mut self, seq: u64, send: Nanos, arrival: Nanos) {
        self.received += 1;
        self.highest_seq = self.highest_seq.max(seq);
        // A − S may be negative under clock skew; carry it as signed
        // seconds — only the variance is consumed.
        let delta = arrival.0 as f64 - send.0 as f64;
        self.delays.push(delta / 1e9);
    }

    /// Estimated loss probability: missing heartbeats over the highest
    /// sequence number seen (0 before any delivery).
    pub fn loss_estimate(&self) -> f64 {
        if self.highest_seq == 0 {
            return 0.0;
        }
        let missing = self.highest_seq.saturating_sub(self.received);
        (missing as f64 / self.highest_seq as f64).clamp(0.0, 0.999_999)
    }

    /// Estimated delay variance `V(D)` in seconds² (0 before two
    /// samples).
    pub fn delay_variance(&self) -> f64 {
        self.delays.variance().unwrap_or(0.0)
    }

    /// Estimated mean of `A − S` in seconds — delay **plus clock skew**;
    /// only meaningful with synchronized clocks.
    pub fn skewed_delay_mean(&self) -> f64 {
        self.delays.mean().unwrap_or(0.0)
    }

    /// Heartbeats observed so far.
    pub fn observed(&self) -> u64 {
        self.received
    }

    /// The current `(pL, V(D))` snapshot for the configuration procedure.
    pub fn behavior(&self) -> NetworkBehavior {
        NetworkBehavior::new(self.loss_estimate(), self.delay_variance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_sim::time::Span;

    const DI: u64 = 100_000_000; // 100 ms in nanos

    fn feed(est: &mut NetworkEstimator, seq: u64, delay_ms: u64) {
        let send = Nanos(seq * DI);
        est.observe(seq, send, send + Span::from_millis(delay_ms));
    }

    #[test]
    fn fresh_estimator_reports_zeroes() {
        let e = NetworkEstimator::new(100);
        assert_eq!(e.loss_estimate(), 0.0);
        assert_eq!(e.delay_variance(), 0.0);
        assert_eq!(e.observed(), 0);
    }

    #[test]
    fn loss_counted_from_sequence_gaps() {
        let mut e = NetworkEstimator::new(100);
        for seq in [1u64, 2, 3, 5, 6, 8, 9, 10] {
            feed(&mut e, seq, 10);
        }
        // 10 sent (highest seq), 8 received → pL = 0.2.
        assert!((e.loss_estimate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_sample_spread() {
        let mut e = NetworkEstimator::new(100);
        // Delays alternate 10/30 ms → population variance (0.01)² = 1e-4.
        for seq in 1..=100u64 {
            feed(&mut e, seq, if seq % 2 == 0 { 10 } else { 30 });
        }
        assert!((e.delay_variance() - 1e-4).abs() < 1e-8);
        assert!((e.skewed_delay_mean() - 0.020).abs() < 1e-9);
    }

    #[test]
    fn clock_skew_does_not_affect_variance() {
        let mut plain = NetworkEstimator::new(100);
        let mut skewed = NetworkEstimator::new(100);
        for seq in 1..=50u64 {
            let send = Nanos(seq * DI);
            let delay = Span::from_millis(10 + (seq % 7));
            plain.observe(seq, send, send + delay);
            // Receiver clock 3 s ahead.
            skewed.observe(seq, send, send + delay + Span::from_secs(3));
        }
        assert!((plain.delay_variance() - skewed.delay_variance()).abs() < 1e-12);
        // Means differ by the skew, as expected.
        assert!((skewed.skewed_delay_mean() - plain.skewed_delay_mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_skew_handled() {
        let mut e = NetworkEstimator::new(10);
        // Receiver clock behind the sender: A − S negative.
        let send = Nanos::from_secs(100);
        e.observe(1, send, Nanos::from_secs(99));
        assert!(e.skewed_delay_mean() < 0.0);
        assert_eq!(e.delay_variance(), 0.0);
    }

    #[test]
    fn behavior_snapshot_combines_both() {
        let mut e = NetworkEstimator::new(100);
        for seq in [1u64, 2, 4, 5] {
            feed(&mut e, seq, if seq % 2 == 0 { 10 } else { 20 });
        }
        let b = e.behavior();
        assert!((b.loss_prob - 0.2).abs() < 1e-12);
        assert!(b.delay_var > 0.0);
    }

    #[test]
    fn window_slides() {
        let mut e = NetworkEstimator::new(4);
        for seq in 1..=100u64 {
            // Early delays huge, recent delays identical: a sliding
            // window must forget the early spread.
            feed(&mut e, seq, if seq < 90 { (seq % 50) * 10 } else { 10 });
        }
        assert!(e.delay_variance() < 1e-9);
    }
}
