//! Explicit Trust/Suspect output timelines.
//!
//! A [`ReplayResult`] stores the *mistake log* — the compact form the
//! QoS metrics need. [`Timeline`] is the other view of the same
//! information: the full alternating sequence of S- and T-transitions
//! (§II-A1's model of a failure detector's output), queryable at any
//! instant. The Figure 9 style analyses ("which mistakes does each
//! detector make, and when?") and visual renderings are built on it.

use crate::detector::FdOutput;
use crate::metrics::Mistake;
use crate::replay::ReplayResult;
use twofd_sim::time::{Nanos, Span};

/// One output transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When the output changed.
    pub at: Nanos,
    /// The output in force *from* this instant.
    pub to: FdOutput,
}

/// A detector's output as a function of time over an observation window.
///
/// ```
/// use twofd_core::{replay, ChenFd, FdOutput, Timeline};
/// use twofd_sim::Span;
/// use twofd_trace::WanTraceConfig;
///
/// let trace = WanTraceConfig::small(2_000, 7).generate();
/// let mut fd = ChenFd::new(100, trace.interval, Span::from_millis(50));
/// let result = replay(&mut fd, &trace);
/// let timeline = Timeline::from_replay(&result);
/// let suspect = timeline.time_in(FdOutput::Suspect);
/// let trust = timeline.time_in(FdOutput::Trust);
/// assert_eq!(suspect + trust, result.observed());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Observation start (first fresh arrival).
    pub start: Nanos,
    /// Observation end (replay horizon).
    pub end: Nanos,
    /// Output at `start`.
    initial: FdOutput,
    /// Transitions after `start`, strictly increasing in time and
    /// strictly alternating in output.
    transitions: Vec<Transition>,
}

impl Timeline {
    /// Reconstructs the timeline from a replay's mistake log.
    pub fn from_replay(result: &ReplayResult) -> Timeline {
        Self::from_mistakes(&result.mistakes, result.first_arrival, result.horizon)
    }

    /// Reconstructs a timeline from a mistake log over `[start, end]`.
    /// Mistake intervals are the Suspect periods; everything else is
    /// Trust.
    pub fn from_mistakes(mistakes: &[Mistake], start: Nanos, end: Nanos) -> Timeline {
        let mut transitions = Vec::with_capacity(mistakes.len() * 2);
        let mut initial = FdOutput::Trust;
        for m in mistakes {
            debug_assert!(m.start < m.end);
            if m.start <= start {
                initial = FdOutput::Suspect;
            } else {
                transitions.push(Transition {
                    at: m.start,
                    to: FdOutput::Suspect,
                });
            }
            if m.end < end {
                transitions.push(Transition {
                    at: m.end,
                    to: FdOutput::Trust,
                });
            }
        }
        Timeline {
            start,
            end,
            initial,
            transitions,
        }
    }

    /// The output at instant `t` (clamped to the observation window).
    pub fn output_at(&self, t: Nanos) -> FdOutput {
        let t = t.clamp(self.start, self.end);
        match self.transitions.binary_search_by(|tr| tr.at.cmp(&t)) {
            // Transition exactly at t: its output is in force from t.
            Ok(i) => self.transitions[i].to,
            Err(0) => self.initial,
            Err(i) => self.transitions[i - 1].to,
        }
    }

    /// All transitions, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of S-transitions within the window (a suspicion period
    /// already open at the window start counts as one).
    pub fn s_transitions(&self) -> usize {
        self.count(FdOutput::Suspect) + usize::from(self.initial == FdOutput::Suspect)
    }

    /// Number of T-transitions within the window.
    pub fn t_transitions(&self) -> usize {
        self.count(FdOutput::Trust)
    }

    fn count(&self, to: FdOutput) -> usize {
        self.transitions.iter().filter(|tr| tr.to == to).count()
    }

    /// Total time spent in `output` within the observation window.
    pub fn time_in(&self, output: FdOutput) -> Span {
        let mut total = Span::ZERO;
        let mut cursor = self.start;
        let mut current = self.initial;
        for tr in &self.transitions {
            if current == output {
                total += tr.at - cursor;
            }
            cursor = tr.at;
            current = tr.to;
        }
        if current == output {
            total += self.end - cursor;
        }
        total
    }

    /// True if this timeline suspects at every instant the `other`
    /// timeline suspects — the point-set containment of Eq. 13. Both
    /// timelines must cover the same window for the comparison to be
    /// meaningful.
    pub fn suspicion_contained_in(&self, other: &Timeline) -> bool {
        // Check at every boundary instant of either timeline plus
        // midpoints of our suspect periods.
        let mut probes: Vec<Nanos> = vec![self.start, self.end];
        probes.extend(self.transitions.iter().map(|t| t.at));
        probes.extend(other.transitions.iter().map(|t| t.at));
        // Midpoints between consecutive distinct probes catch interval
        // interiors.
        probes.sort_unstable();
        probes.dedup();
        let midpoints: Vec<Nanos> = probes
            .windows(2)
            .map(|w| Nanos((w[0].0 + w[1].0) / 2))
            .collect();
        probes.extend(midpoints);
        probes.iter().all(|&t| {
            self.output_at(t) != FdOutput::Suspect || other.output_at(t) == FdOutput::Suspect
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(start_ms: u64, end_ms: u64) -> Mistake {
        Mistake {
            start: Nanos::from_millis(start_ms),
            end: Nanos::from_millis(end_ms),
            after_seq: 0,
            censored: false,
        }
    }

    fn window() -> (Nanos, Nanos) {
        (Nanos::from_millis(0), Nanos::from_millis(1000))
    }

    #[test]
    fn empty_log_is_all_trust() {
        let (s, e) = window();
        let tl = Timeline::from_mistakes(&[], s, e);
        assert_eq!(tl.output_at(Nanos::from_millis(500)), FdOutput::Trust);
        assert_eq!(tl.time_in(FdOutput::Suspect), Span::ZERO);
        assert_eq!(tl.time_in(FdOutput::Trust), Span::from_millis(1000));
        assert!(tl.transitions().is_empty());
    }

    #[test]
    fn single_mistake_produces_two_transitions() {
        let (s, e) = window();
        let tl = Timeline::from_mistakes(&[mk(200, 300)], s, e);
        assert_eq!(tl.transitions().len(), 2);
        assert_eq!(tl.output_at(Nanos::from_millis(100)), FdOutput::Trust);
        assert_eq!(tl.output_at(Nanos::from_millis(200)), FdOutput::Suspect);
        assert_eq!(tl.output_at(Nanos::from_millis(299)), FdOutput::Suspect);
        assert_eq!(tl.output_at(Nanos::from_millis(300)), FdOutput::Trust);
        assert_eq!(tl.time_in(FdOutput::Suspect), Span::from_millis(100));
    }

    #[test]
    fn mistake_at_window_start_sets_initial_output() {
        let (s, e) = window();
        let tl = Timeline::from_mistakes(&[mk(0, 50)], s, e);
        assert_eq!(tl.output_at(Nanos::from_millis(0)), FdOutput::Suspect);
        assert_eq!(tl.output_at(Nanos::from_millis(50)), FdOutput::Trust);
    }

    #[test]
    fn censored_mistake_runs_to_the_end() {
        let (s, e) = window();
        let tl = Timeline::from_mistakes(&[mk(900, 1000)], s, e);
        assert_eq!(tl.output_at(e), FdOutput::Suspect);
        assert_eq!(tl.transitions().len(), 1);
    }

    #[test]
    fn queries_clamp_to_the_window() {
        let (s, e) = window();
        let tl = Timeline::from_mistakes(&[mk(900, 1000)], s, e);
        assert_eq!(tl.output_at(Nanos::from_secs(100)), FdOutput::Suspect);
        assert_eq!(tl.output_at(Nanos::ZERO), FdOutput::Trust);
    }

    #[test]
    fn time_accounting_partitions_the_window() {
        let (s, e) = window();
        let tl = Timeline::from_mistakes(&[mk(100, 250), mk(400, 410)], s, e);
        let suspect = tl.time_in(FdOutput::Suspect);
        let trust = tl.time_in(FdOutput::Trust);
        assert_eq!(suspect, Span::from_millis(160));
        assert_eq!(suspect + trust, e - s);
    }

    #[test]
    fn containment_detects_subsets_and_violations() {
        let (s, e) = window();
        let narrow = Timeline::from_mistakes(&[mk(210, 280)], s, e);
        let wide = Timeline::from_mistakes(&[mk(200, 300)], s, e);
        assert!(narrow.suspicion_contained_in(&wide));
        assert!(!wide.suspicion_contained_in(&narrow));
        // Disjoint suspicion is not contained.
        let other = Timeline::from_mistakes(&[mk(500, 600)], s, e);
        assert!(!other.suspicion_contained_in(&wide));
        // Equal timelines contain each other.
        assert!(wide.suspicion_contained_in(&wide));
    }

    #[test]
    fn from_replay_matches_replay_semantics() {
        use crate::chen::ChenFd;
        use crate::replay::replay;
        use twofd_trace::WanTraceConfig;

        let trace = WanTraceConfig::small(5_000, 3).generate();
        let mut fd = ChenFd::new(100, trace.interval, Span::from_millis(30));
        let result = replay(&mut fd, &trace);
        let tl = Timeline::from_replay(&result);
        // Suspect time equals the metric's complement of accuracy.
        let m = result.metrics();
        let pa_from_timeline =
            1.0 - tl.time_in(FdOutput::Suspect).as_secs_f64() / result.observed().as_secs_f64();
        assert!((pa_from_timeline - m.query_accuracy).abs() < 1e-9);
        // One Suspect-transition per mistake (none starts at the window
        // edge in this trace).
        assert_eq!(
            tl.transitions()
                .iter()
                .filter(|t| t.to == FdOutput::Suspect)
                .count(),
            result.mistakes.len()
        );
    }
}
