//! Numerical routines for the accrual detectors.
//!
//! The φ accrual FD needs the normal tail probability (Eq. 8 of the
//! paper) and its inverse (to turn a threshold Φ back into a timeout);
//! neither is in `std` and no math crate is in the approved dependency
//! set, so both are implemented here:
//!
//! * [`erfc`] — complementary error function, Abramowitz & Stegun
//!   7.1.26-style rational approximation (|ε| ≤ 1.5·10⁻⁷), continued in
//!   the far tail by an asymptotic form so probabilities keep shrinking
//!   monotonically instead of flushing to zero.
//! * [`normal_cdf`] / [`normal_sf`] — CDF and survival function of
//!   `N(mu, sigma²)`.
//! * [`inverse_normal_cdf`] — Acklam's rational approximation with one
//!   Halley refinement step (relative error ≈ 10⁻¹⁵ after refinement).

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Accurate to ~1.5e-7 absolute in the central range and monotone in the
/// tails; sufficient for suspicion levels, which the paper reads on a
/// log10 scale.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // A&S 7.1.26 rational approximation for erf on x >= 0.
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let approx = poly * (-x * x).exp();
    if approx > 0.0 || x < 26.0 {
        approx
    } else {
        // Far tail: first-order asymptotic erfc(x) ~ exp(-x^2)/(x sqrt(pi)),
        // computed in log space to survive past the exp underflow point.
        let ln = -x * x - x.ln() - 0.5 * core::f64::consts::PI.ln();
        ln.exp()
    }
}

/// CDF of the normal distribution `N(mu, sigma^2)` at `x`.
pub fn normal_cdf(x: f64, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0, "sigma must be positive");
    0.5 * erfc(-(x - mu) / (sigma * core::f64::consts::SQRT_2))
}

/// Survival function `1 - CDF`, computed directly from `erfc` so that
/// tiny tail probabilities do not cancel to zero.
pub fn normal_sf(x: f64, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0, "sigma must be positive");
    0.5 * erfc((x - mu) / (sigma * core::f64::consts::SQRT_2))
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation refined by one Halley step against
/// [`normal_cdf`]. Valid for `p` in `(0, 1)`.
///
/// # Panics
/// If `p` is outside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires p in (0,1), got {p}"
    );

    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step; skip in the extreme tails where the
    // CDF evaluation itself has no precision left.
    if p > 1e-300 && p < 1.0 - 1e-16 {
        let e = normal_cdf(x, 0.0, 1.0) - p;
        let u = e * (core::f64::consts::TAU).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (2.0, 0.0046777),
            (3.0, 2.209e-5),
        ];
        for (x, expect) in cases {
            let got = erfc(x);
            assert!(
                (got - expect).abs() < 2e-6,
                "erfc({x}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_is_monotone_decreasing_far_into_tail() {
        let mut prev = f64::INFINITY;
        let mut x = 0.0;
        while x < 40.0 {
            let v = erfc(x);
            assert!(v <= prev, "erfc not monotone at {x}: {v} > {prev}");
            assert!(v >= 0.0);
            prev = v;
            x += 0.05;
        }
        // Still strictly positive deep in the tail (no premature flush
        // to zero): matters for phi = -log10(P_later). At x = 26 the true
        // value ~e^-676 ≈ 1e-294 is still representable; past x ≈ 27.2
        // even subnormals run out, so f64 zero is the correct answer.
        assert!(erfc(26.0) > 0.0);
    }

    #[test]
    fn normal_cdf_standard_values() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.9750021).abs() < 1e-6);
        assert!((normal_cdf(-1.0, 0.0, 1.0) - 0.1586553).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_location_scale() {
        // N(10, 4): P(X <= 12) = Phi(1).
        let a = normal_cdf(12.0, 10.0, 2.0);
        let b = normal_cdf(1.0, 0.0, 1.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn sf_complements_cdf() {
        for x in [-3.0, -0.5, 0.0, 0.5, 3.0] {
            let s = normal_sf(x, 0.0, 1.0) + normal_cdf(x, 0.0, 1.0);
            assert!((s - 1.0).abs() < 1e-7, "sf+cdf = {s} at {x}");
        }
    }

    #[test]
    fn sf_keeps_tail_precision() {
        // At z = 8 the survival probability is ~6.2e-16; the direct
        // 1 - cdf would return exactly 0.
        let sf = normal_sf(8.0, 0.0, 1.0);
        assert!(sf > 0.0 && sf < 1e-14);
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for p in [1e-9, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let z = inverse_normal_cdf(p);
            let back = normal_cdf(z, 0.0, 1.0);
            assert!(
                (back - p).abs() < 1e-7 * p.max(1e-3),
                "round trip failed: p={p}, z={z}, back={back}"
            );
        }
    }

    #[test]
    fn inverse_cdf_known_quantiles() {
        // Accuracy is bounded by the ~1.5e-7 absolute error of the
        // underlying erfc approximation (the Halley step makes the
        // quantile self-consistent with *our* CDF, not the exact one);
        // at z ≈ 3.7 the density is ~2.4e-4, so that converts to ~6e-4
        // in z. Plenty for suspicion thresholds read on a log10 scale.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.9999) - 3.719016).abs() < 2e-3);
    }

    #[test]
    fn inverse_cdf_is_antisymmetric() {
        for p in [0.01, 0.2, 0.4] {
            let a = inverse_normal_cdf(p);
            let b = inverse_normal_cdf(1.0 - p);
            assert!((a + b).abs() < 1e-8, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn inverse_cdf_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn inverse_cdf_rejects_one() {
        inverse_normal_cdf(1.0);
    }
}
