//! The common failure-detector interface.
//!
//! Every algorithm in the paper — Chen, Bertier, φ, ED and 2W-FD — is a
//! heartbeat-driven *unreliable* failure detector: it consumes `(seq,
//! arrival-time)` pairs and, at any instant, outputs either `Trust` or
//! `Suspect` for the monitored process.
//!
//! The key observation that gives all five a uniform, replay-friendly
//! interface: after processing a fresh heartbeat at time `A`, each
//! algorithm's future output is fully determined by a single instant —
//! the time at which it will S-transition if no further fresh heartbeat
//! arrives:
//!
//! * Chen / Bertier / 2W-FD — the next freshness point
//!   `τ_{l+1} = EA_{l+1} + Δto` (Eqs. 1 and 12);
//! * φ / ED — the instant the suspicion level crosses the configured
//!   threshold, which is computable in closed form because suspicion is
//!   monotone in elapsed time.
//!
//! That instant is the [`Decision::trust_until`] returned by
//! [`FailureDetector::on_heartbeat`]; the replay engine and the live UDP
//! monitor both reconstruct the full Trust/Suspect timeline from it.

use twofd_sim::time::Nanos;

/// The detector's verdict on the monitored process at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FdOutput {
    /// The monitored process is believed alive (paper: `T`).
    Trust,
    /// The monitored process is suspected crashed (paper: `S`).
    Suspect,
}

/// Outcome of processing one fresh heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The instant the detector will S-transition if no further fresh
    /// heartbeat arrives. If this is not later than the heartbeat's own
    /// arrival time, the detector does **not** return to `Trust` (the
    /// heartbeat arrived after its own freshness point — Chen §II-B1's
    /// "no message that is still fresh" case).
    pub trust_until: Nanos,
}

/// A heartbeat-style unreliable failure detector with QoS.
pub trait FailureDetector {
    /// A short human-readable identifier, including key parameters
    /// (e.g. `"2w-fd(1,1000)"`).
    fn name(&self) -> String;

    /// Feeds the arrival of heartbeat `seq` at local time `arrival`.
    ///
    /// Returns `Some(decision)` if the message was *fresh* (its sequence
    /// number exceeds every previously seen one) and `None` if it was
    /// stale and ignored — stale messages never affect the output
    /// (Algorithm 1, line 13: "if j > l").
    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision>;

    /// The most recent decision, if any heartbeat has been processed.
    fn current_decision(&self) -> Option<Decision>;

    /// Largest sequence number seen so far.
    fn last_seq(&self) -> Option<u64>;

    /// The detector's output at time `t`, assuming `t` is not earlier
    /// than the last processed arrival. Before any heartbeat the output
    /// is `Suspect` (Algorithm 1 initializes `τ_0 = 0`, so at startup no
    /// received message is fresh).
    fn output_at(&self, t: Nanos) -> FdOutput {
        match self.current_decision() {
            Some(d) if t < d.trust_until => FdOutput::Trust,
            _ => FdOutput::Suspect,
        }
    }
}

/// Type-erasure compatibility: a boxed detector is itself a detector,
/// so generic containers (e.g. [`crate::multi::ProcessSet`]) accept
/// either an inline [`crate::suite::AnyDetector`] or a
/// `Box<dyn FailureDetector + Send>` for implementations outside the
/// paper's suite. Runtime hot paths should store detectors inline.
impl FailureDetector for Box<dyn FailureDetector + Send> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        (**self).on_heartbeat(seq, arrival)
    }

    fn current_decision(&self) -> Option<Decision> {
        (**self).current_decision()
    }

    fn last_seq(&self) -> Option<u64> {
        (**self).last_seq()
    }

    fn output_at(&self, t: Nanos) -> FdOutput {
        (**self).output_at(t)
    }
}

/// Freshness bookkeeping shared by all detector implementations.
#[derive(Debug, Clone, Default)]
pub(crate) struct FreshnessState {
    pub last_seq: Option<u64>,
    pub decision: Option<Decision>,
}

impl FreshnessState {
    /// Returns true (and records `seq`) iff `seq` is fresh.
    pub fn accept(&mut self, seq: u64) -> bool {
        match self.last_seq {
            Some(l) if seq <= l => false,
            _ => {
                self.last_seq = Some(seq);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial detector for exercising the trait's default method:
    /// trusts for a fixed horizon after each fresh heartbeat.
    struct FixedTimeout {
        state: FreshnessState,
        horizon: u64,
    }

    impl FailureDetector for FixedTimeout {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
            if !self.state.accept(seq) {
                return None;
            }
            let d = Decision {
                trust_until: Nanos(arrival.0 + self.horizon),
            };
            self.state.decision = Some(d);
            Some(d)
        }
        fn current_decision(&self) -> Option<Decision> {
            self.state.decision
        }
        fn last_seq(&self) -> Option<u64> {
            self.state.last_seq
        }
    }

    #[test]
    fn output_is_suspect_before_any_heartbeat() {
        let fd = FixedTimeout {
            state: FreshnessState::default(),
            horizon: 100,
        };
        assert_eq!(fd.output_at(Nanos(0)), FdOutput::Suspect);
        assert_eq!(fd.output_at(Nanos(1_000_000)), FdOutput::Suspect);
    }

    #[test]
    fn output_follows_trust_until() {
        let mut fd = FixedTimeout {
            state: FreshnessState::default(),
            horizon: 100,
        };
        fd.on_heartbeat(1, Nanos(1_000)).unwrap();
        assert_eq!(fd.output_at(Nanos(1_050)), FdOutput::Trust);
        assert_eq!(fd.output_at(Nanos(1_099)), FdOutput::Trust);
        assert_eq!(fd.output_at(Nanos(1_100)), FdOutput::Suspect);
    }

    #[test]
    fn stale_heartbeats_are_rejected() {
        let mut fd = FixedTimeout {
            state: FreshnessState::default(),
            horizon: 100,
        };
        assert!(fd.on_heartbeat(5, Nanos(1_000)).is_some());
        assert!(fd.on_heartbeat(5, Nanos(2_000)).is_none());
        assert!(fd.on_heartbeat(4, Nanos(2_000)).is_none());
        assert!(fd.on_heartbeat(6, Nanos(2_000)).is_some());
        assert_eq!(fd.last_seq(), Some(6));
    }

    #[test]
    fn freshness_state_accepts_monotonically() {
        let mut s = FreshnessState::default();
        assert!(s.accept(1));
        assert!(!s.accept(1));
        assert!(!s.accept(0));
        assert!(s.accept(10));
        assert_eq!(s.last_seq, Some(10));
    }
}
