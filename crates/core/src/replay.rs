//! Trace replay — the paper's evaluation methodology.
//!
//! "All experiments were performed on traces … these logged arrival
//! times are used to replay the execution for each FD algorithm.
//! Therefore, all failure detectors were compared in the same
//! experimental conditions." (§IV-A)
//!
//! [`replay`] feeds a trace's deliveries, in arrival order, to any
//! [`FailureDetector`] and reconstructs the full Trust/Suspect timeline
//! from the per-heartbeat [`Decision`]s, producing the mistake log the
//! QoS metrics are computed from.
//!
//! The timeline reconstruction exploits the decision semantics: after a
//! fresh heartbeat with decision `trust_until = τ`, the detector trusts
//! on `[A, τ)` (empty if `τ ≤ A`) and suspects from `τ` until the next
//! fresh heartbeat that restores trust.

use crate::detector::{Decision, FailureDetector};
use crate::metrics::{Mistake, QosMetrics};
use twofd_sim::time::{Nanos, Span};
use twofd_trace::Trace;

/// The outcome of replaying one detector over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// The detector's `name()`.
    pub detector: String,
    /// Every suspicion period, in chronological order.
    pub mistakes: Vec<Mistake>,
    /// Fresh heartbeats processed.
    pub fresh_heartbeats: u64,
    /// Stale (reordered/duplicate) heartbeats ignored.
    pub stale_heartbeats: u64,
    /// Arrival time of the first fresh heartbeat (observation start).
    pub first_arrival: Nanos,
    /// Replay horizon (observation end).
    pub horizon: Nanos,
    /// Σ over fresh heartbeats of `max(τ − σ, 0)` in seconds — the
    /// worst-case detection-time accumulator.
    pub sum_worst_td: f64,
    /// The sender's heartbeat interval, echoed from the trace.
    pub interval: Span,
}

impl ReplayResult {
    /// Aggregates the QoS metrics of this replay.
    pub fn metrics(&self) -> QosMetrics {
        QosMetrics::from_mistakes(
            &self.mistakes,
            self.horizon.saturating_since(self.first_arrival),
            self.sum_worst_td,
            self.fresh_heartbeats,
            self.interval,
        )
    }

    /// The observation span.
    pub fn observed(&self) -> Span {
        self.horizon.saturating_since(self.first_arrival)
    }
}

/// Replays `trace` through `fd`, reconstructing the output timeline.
///
/// The replay horizon is the trace's end time. Detectors are expected to
/// be freshly constructed; reusing one across replays carries its window
/// state over (occasionally useful, but usually not what you want).
pub fn replay(fd: &mut dyn FailureDetector, trace: &Trace) -> ReplayResult {
    let arrivals = trace.arrivals();
    let horizon = trace.end_time();

    let mut result = ReplayResult {
        detector: fd.name(),
        mistakes: Vec::new(),
        fresh_heartbeats: 0,
        stale_heartbeats: 0,
        first_arrival: arrivals.first().map(|a| a.at).unwrap_or(horizon),
        horizon,
        sum_worst_td: 0.0,
        interval: trace.interval,
    };

    // Timeline state.
    let mut trusting = false;
    let mut open_start: Option<Nanos> = None; // start of the open mistake
    let mut prev: Option<Decision> = None;
    let mut last_fresh_seq = 0u64;
    let mut started = false;

    for a in &arrivals {
        let decision = match fd.on_heartbeat(a.seq, a.at) {
            Some(d) => d,
            None => {
                result.stale_heartbeats += 1;
                continue;
            }
        };
        result.fresh_heartbeats += 1;
        result.sum_worst_td += decision.trust_until.saturating_since(a.send).as_secs_f64();

        if !started {
            started = true;
            if decision.trust_until > a.at {
                trusting = true;
            } else {
                trusting = false;
                open_start = Some(a.at);
            }
            last_fresh_seq = a.seq;
            prev = Some(decision);
            continue;
        }

        // Between the previous fresh arrival and this one, did the
        // previous decision expire?
        if trusting {
            let prev_tu = prev.expect("started implies prev").trust_until;
            if prev_tu < a.at {
                trusting = false;
                open_start = Some(prev_tu);
            }
        }

        // Does this heartbeat restore trust?
        if decision.trust_until > a.at && !trusting {
            result.mistakes.push(Mistake {
                start: open_start.take().expect("suspect period has a start"),
                end: a.at,
                after_seq: last_fresh_seq,
                censored: false,
            });
            trusting = true;
        }
        // else: the heartbeat arrived past its own freshness point — the
        // detector stays suspicious and the mistake remains open.

        last_fresh_seq = a.seq;
        prev = Some(decision);
    }

    // Close out the timeline at the horizon.
    if started {
        if trusting {
            let prev_tu = prev.expect("started implies prev").trust_until;
            if prev_tu < horizon {
                result.mistakes.push(Mistake {
                    start: prev_tu,
                    end: horizon,
                    after_seq: last_fresh_seq,
                    censored: true,
                });
            }
        } else if let Some(start) = open_start {
            result.mistakes.push(Mistake {
                start,
                end: horizon,
                after_seq: last_fresh_seq,
                censored: true,
            });
        }
    }

    result
}

/// Measures the actual detection time of a crash: replays a trace whose
/// sender crashed at `crash_at` and returns how long after the crash the
/// detector's final S-transition occurs (zero if it was already
/// suspecting). Returns `None` if the trace delivered no heartbeat.
pub fn detect_crash(fd: &mut dyn FailureDetector, trace: &Trace, crash_at: Nanos) -> Option<Span> {
    let arrivals = trace.arrivals();
    let mut last_decision = None;
    for a in &arrivals {
        if let Some(d) = fd.on_heartbeat(a.seq, a.at) {
            last_decision = Some(d);
        }
    }
    last_decision.map(|d| d.trust_until.saturating_since(crash_at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chen::ChenFd;
    use crate::detector::FreshnessState;
    use twofd_trace::HeartbeatRecord;

    const DI: Span = Span(100_000_000); // 100 ms

    fn rec(seq: u64, delay_ms: u64) -> HeartbeatRecord {
        HeartbeatRecord {
            seq,
            send: Nanos(seq * DI.0),
            arrival: Some(Nanos(seq * DI.0 + delay_ms * 1_000_000)),
        }
    }

    fn lost(seq: u64) -> HeartbeatRecord {
        HeartbeatRecord {
            seq,
            send: Nanos(seq * DI.0),
            arrival: None,
        }
    }

    fn trace(records: Vec<HeartbeatRecord>) -> Trace {
        Trace::new("test", DI, records)
    }

    /// A scripted detector that returns pre-programmed trust horizons.
    struct Scripted {
        state: FreshnessState,
        /// Relative trust horizon (ms after arrival) per fresh heartbeat,
        /// negative meaning "do not restore trust".
        horizons: Vec<i64>,
        next: usize,
    }

    impl Scripted {
        fn new(horizons: Vec<i64>) -> Self {
            Scripted {
                state: FreshnessState::default(),
                horizons,
                next: 0,
            }
        }
    }

    impl FailureDetector for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }
        fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
            if !self.state.accept(seq) {
                return None;
            }
            let h = self.horizons[self.next.min(self.horizons.len() - 1)];
            self.next += 1;
            let trust_until = if h >= 0 {
                arrival + Span::from_millis(h as u64)
            } else {
                arrival.saturating_sub(Span::from_millis((-h) as u64))
            };
            let d = Decision { trust_until };
            self.state.decision = Some(d);
            Some(d)
        }
        fn current_decision(&self) -> Option<Decision> {
            self.state.decision
        }
        fn last_seq(&self) -> Option<u64> {
            self.state.last_seq
        }
    }

    #[test]
    fn clean_periodic_trace_produces_no_mistakes_for_generous_margin() {
        let records: Vec<_> = (1..=100).map(|s| rec(s, 10)).collect();
        let t = trace(records);
        let mut fd = ChenFd::new(10, DI, Span::from_millis(500));
        let r = replay(&mut fd, &t);
        assert_eq!(r.fresh_heartbeats, 100);
        assert_eq!(r.stale_heartbeats, 0);
        // A censored tail mistake at the horizon is possible but nothing
        // else: the horizon equals the last arrival here, so none at all.
        assert!(r.mistakes.is_empty(), "{:?}", r.mistakes);
        assert_eq!(r.metrics().mistakes, 0);
        assert_eq!(r.metrics().query_accuracy, 1.0);
    }

    #[test]
    fn lost_heartbeat_causes_one_mistake_with_tight_margin() {
        // Heartbeats 1..5 arrive with 10 ms delay; 6 is lost; 7..10 fine.
        let mut records: Vec<_> = (1..=5).map(|s| rec(s, 10)).collect();
        records.push(lost(6));
        records.extend((7..=10).map(|s| rec(s, 10)));
        let t = trace(records);
        let mut fd = ChenFd::new(100, DI, Span::from_millis(10));
        let r = replay(&mut fd, &t);
        assert_eq!(r.mistakes.len(), 1);
        let m = r.mistakes[0];
        // τ_6 = EA_6 + 10 ms = 6·Δi + 20 ms; corrected by m_7 at 7·Δi+10ms.
        assert_eq!(m.start, Nanos(6 * DI.0 + 20_000_000));
        assert_eq!(m.end, Nanos(7 * DI.0 + 10_000_000));
        assert_eq!(m.after_seq, 5);
        assert!(!m.censored);
    }

    #[test]
    fn late_heartbeat_closes_mistake_at_its_arrival() {
        let records = vec![rec(1, 10), rec(2, 10), rec(3, 250)]; // 3 very late
        let t = trace(records);
        // Window 1: the late heartbeat itself pushes EA_4 far enough out
        // that trust is restored at its arrival. (A large window would
        // average the spike away, leaving the freshness point in the
        // past — the m_3 arrival then does NOT restore trust.)
        let mut fd = ChenFd::new(1, DI, Span::from_millis(20));
        let r = replay(&mut fd, &t);
        assert_eq!(r.mistakes.len(), 1);
        let m = r.mistakes[0];
        // S at τ_3 = 3·Δi + 10 + 20 ms; T at arrival of m_3.
        assert_eq!(m.start, Nanos(3 * DI.0 + 30_000_000));
        assert_eq!(m.end, Nanos(3 * DI.0 + 250_000_000));
        assert!(!m.censored);
    }

    #[test]
    fn heartbeat_arriving_past_its_own_freshness_point_keeps_suspecting() {
        // Scripted: first heartbeat trusts 50 ms; second arrives but its
        // horizon is in the past (never restores trust); third restores.
        let records = vec![rec(1, 0), rec(2, 0), rec(3, 0)];
        let t = trace(records);
        let mut fd = Scripted::new(vec![50, -1, 100]);
        let r = replay(&mut fd, &t);
        // One mistake: S at arrival1+50ms, T at arrival3.
        assert_eq!(r.mistakes.len(), 1);
        let m = r.mistakes[0];
        assert_eq!(m.start, Nanos(DI.0 + 50_000_000));
        assert_eq!(m.end, Nanos(3 * DI.0));
        assert!(!m.censored);
    }

    #[test]
    fn first_heartbeat_already_expired_opens_mistake_immediately() {
        let records = vec![rec(1, 0), rec(2, 0)];
        let t = trace(records);
        let mut fd = Scripted::new(vec![-10, 100]);
        let r = replay(&mut fd, &t);
        assert_eq!(r.mistakes.len(), 1);
        assert_eq!(r.mistakes[0].start, Nanos(DI.0)); // at first arrival
        assert_eq!(r.mistakes[0].end, Nanos(2 * DI.0));
    }

    #[test]
    fn censored_tail_mistake_when_trust_expires_before_horizon() {
        // Last record is lost, pushing the horizon past the last arrival's
        // trust window.
        let records = vec![rec(1, 10), rec(2, 10), lost(3), lost(4), lost(5)];
        let t = trace(records);
        let mut fd = ChenFd::new(100, DI, Span::from_millis(10));
        let r = replay(&mut fd, &t);
        assert_eq!(r.mistakes.len(), 1);
        let m = r.mistakes[0];
        assert!(m.censored);
        assert_eq!(m.end, t.end_time());
        assert_eq!(m.after_seq, 2);
    }

    #[test]
    fn reordered_duplicates_count_as_stale() {
        let records = vec![rec(1, 10), rec(2, 10), rec(3, 10)];
        let mut t = trace(records);
        // Make m_2 arrive after m_3.
        t.records[1].arrival = Some(Nanos(3 * DI.0 + 50_000_000));
        let mut fd = ChenFd::new(100, DI, Span::from_millis(100));
        let r = replay(&mut fd, &t);
        assert_eq!(r.fresh_heartbeats, 2);
        assert_eq!(r.stale_heartbeats, 1);
    }

    #[test]
    fn worst_td_accumulates_tau_minus_send() {
        let records = vec![rec(1, 10)];
        let t = trace(records);
        let mut fd = ChenFd::new(1, DI, Span::from_millis(30));
        let r = replay(&mut fd, &t);
        // τ_2 = 2Δi + 40 ms; σ_1 = Δi → worst TD = Δi + 40 ms = 0.14 s.
        assert!((r.sum_worst_td - 0.140).abs() < 1e-9);
        let m = r.metrics();
        assert!((m.worst_detection_time - 0.140).abs() < 1e-9);
        assert!((m.detection_time - 0.090).abs() < 1e-9);
    }

    #[test]
    fn replay_on_empty_trace() {
        let t = trace(vec![]);
        let mut fd = ChenFd::new(1, DI, Span::ZERO);
        let r = replay(&mut fd, &t);
        assert_eq!(r.fresh_heartbeats, 0);
        assert!(r.mistakes.is_empty());
        assert_eq!(r.metrics().query_accuracy, 1.0);
    }

    #[test]
    fn detect_crash_measures_final_suspicion() {
        // Sender crashes at 550 ms: heartbeats 1..5 delivered, none after.
        let records: Vec<_> = (1..=5).map(|s| rec(s, 10)).collect();
        let t = trace(records);
        let crash = Nanos::from_millis(550);
        let mut fd = ChenFd::new(10, DI, Span::from_millis(30));
        let td = detect_crash(&mut fd, &t, crash).unwrap();
        // τ_6 = 6·Δi + 10 + 30 ms = 640 ms → TD = 90 ms.
        assert_eq!(td, Span::from_millis(90));
    }

    #[test]
    fn detect_crash_on_empty_trace_is_none() {
        let t = trace(vec![lost(1)]);
        let mut fd = ChenFd::new(10, DI, Span::from_millis(30));
        assert_eq!(detect_crash(&mut fd, &t, Nanos::from_millis(100)), None);
    }

    #[test]
    fn metrics_pa_accounts_for_suspect_time() {
        let records = vec![rec(1, 10), rec(2, 10), lost(3), rec(4, 10)];
        let t = trace(records);
        let mut fd = ChenFd::new(100, DI, Span::from_millis(10));
        let r = replay(&mut fd, &t);
        let m = r.metrics();
        assert_eq!(m.mistakes, 1);
        assert!(m.query_accuracy < 1.0);
        assert!(m.query_accuracy > 0.5);
    }
}
