//! Chen's failure detector (NFD-E variant, §II-B1 of the paper).
//!
//! On every fresh heartbeat `m_l`, the next freshness point is
//! `τ_{l+1} = EA_{l+1} + Δto` (Eq. 1), with `EA_{l+1}` estimated over a
//! sliding window of the last `n` arrivals (Eq. 2). The detector trusts
//! the monitored process exactly while some received message is still
//! fresh, i.e. until `τ_{l+1}`.
//!
//! `Δto` is the constant safety margin chosen from the application's
//! detection-time requirement; sweeping it produces the detection-time
//! axis of Figures 4–7.

use crate::detector::{Decision, FailureDetector, FreshnessState};
use crate::estimator::ChenEstimator;
use twofd_sim::time::{Nanos, Span};

/// Chen's QoS failure detector.
#[derive(Debug, Clone)]
pub struct ChenFd {
    estimator: ChenEstimator,
    safety_margin: Span,
    state: FreshnessState,
}

impl ChenFd {
    /// Creates the detector.
    ///
    /// * `window` — number of past arrivals used by Eq. 2 (the paper's
    ///   comparison uses 1 and 1000).
    /// * `interval` — the sender's heartbeat interval Δi.
    /// * `safety_margin` — the constant Δto of Eq. 1.
    pub fn new(window: usize, interval: Span, safety_margin: Span) -> Self {
        ChenFd {
            estimator: ChenEstimator::new(window, interval),
            safety_margin,
            state: FreshnessState::default(),
        }
    }

    /// The configured sliding-window size.
    pub fn window(&self) -> usize {
        self.estimator.window()
    }

    /// The configured safety margin Δto.
    pub fn safety_margin(&self) -> Span {
        self.safety_margin
    }

    /// The next freshness point `τ_{l+1}`, if any heartbeat was seen.
    pub fn next_freshness_point(&self) -> Option<Nanos> {
        self.state.decision.map(|d| d.trust_until)
    }
}

impl FailureDetector for ChenFd {
    fn name(&self) -> String {
        format!("chen({})", self.estimator.window())
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        if !self.state.accept(seq) {
            return None;
        }
        self.estimator.observe(seq, arrival);
        let ea = self
            .estimator
            .expected_next_arrival()
            .expect("estimator has at least one sample");
        let d = Decision {
            trust_until: ea + self.safety_margin,
        };
        self.state.decision = Some(d);
        Some(d)
    }

    fn current_decision(&self) -> Option<Decision> {
        self.state.decision
    }

    fn last_seq(&self) -> Option<u64> {
        self.state.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::FdOutput;

    const DI: Span = Span(100_000_000); // 100 ms
    const DTO: Span = Span(30_000_000); // 30 ms

    fn arrival(seq: u64, delay_ms: u64) -> Nanos {
        Nanos(seq * DI.0 + delay_ms * 1_000_000)
    }

    #[test]
    fn freshness_point_is_ea_plus_margin() {
        let mut fd = ChenFd::new(10, DI, DTO);
        let d = fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        // EA_2 = 2·Δi + 10 ms; τ_2 = EA_2 + 30 ms.
        assert_eq!(d.trust_until, Nanos(2 * DI.0 + 40_000_000));
        assert_eq!(fd.next_freshness_point(), Some(d.trust_until));
    }

    #[test]
    fn trusts_until_freshness_point_then_suspects() {
        let mut fd = ChenFd::new(10, DI, DTO);
        let d = fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        assert_eq!(fd.output_at(arrival(1, 10)), FdOutput::Trust);
        assert_eq!(fd.output_at(d.trust_until - Span(1)), FdOutput::Trust);
        assert_eq!(fd.output_at(d.trust_until), FdOutput::Suspect);
    }

    #[test]
    fn late_heartbeat_restores_trust() {
        let mut fd = ChenFd::new(10, DI, DTO);
        fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        // Heartbeat 2 is very late (arrives 80 ms after its send).
        let d2 = fd.on_heartbeat(2, arrival(2, 80)).unwrap();
        assert!(d2.trust_until > arrival(2, 80));
        assert_eq!(fd.output_at(arrival(2, 80)), FdOutput::Trust);
    }

    #[test]
    fn window_one_adapts_instantly_window_large_slowly() {
        let mut small = ChenFd::new(1, DI, DTO);
        let mut large = ChenFd::new(1000, DI, DTO);
        for seq in 1..=100u64 {
            small.on_heartbeat(seq, arrival(seq, 10));
            large.on_heartbeat(seq, arrival(seq, 10));
        }
        // Sudden delay jump to 60 ms.
        let ds = small.on_heartbeat(101, arrival(101, 60)).unwrap();
        let dl = large.on_heartbeat(101, arrival(101, 60)).unwrap();
        // Small window projects the full 60 ms forward; the large window
        // has barely moved from 10 ms.
        assert_eq!(ds.trust_until, Nanos(102 * DI.0 + 90_000_000));
        assert!(dl.trust_until < ds.trust_until);
        assert!(dl.trust_until >= Nanos(102 * DI.0 + 40_000_000));
    }

    #[test]
    fn stale_messages_do_not_move_the_freshness_point() {
        let mut fd = ChenFd::new(10, DI, DTO);
        fd.on_heartbeat(5, arrival(5, 10)).unwrap();
        let tau = fd.next_freshness_point().unwrap();
        assert!(fd.on_heartbeat(4, arrival(5, 20)).is_none());
        assert_eq!(fd.next_freshness_point(), Some(tau));
    }

    #[test]
    fn zero_margin_is_allowed() {
        let mut fd = ChenFd::new(1, DI, Span::ZERO);
        let d = fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        assert_eq!(d.trust_until, Nanos(2 * DI.0 + 10_000_000));
    }

    #[test]
    fn name_includes_window() {
        assert_eq!(ChenFd::new(1000, DI, DTO).name(), "chen(1000)");
    }
}
