//! Chen's QoS configuration procedure (§V-A of the paper).
//!
//! Applications express their requirements as a tuple
//! `(T_Dᵁ, T_MRᵁ, T_Mᵁ)` — an upper bound on detection time, a lower
//! bound on mean mistake *recurrence* time (equivalently an upper bound
//! on mistake rate), and an upper bound on mean mistake duration. Given
//! the network's probabilistic behaviour — loss probability `pL` and
//! delay variance `V(D)` — the procedure computes the largest heartbeat
//! interval `Δi` (to minimize network load) and the safety margin
//! `Δto = T_Dᵁ − Δi` such that the detector meets the requirements.
//!
//! The published steps (Eqs. 14–16) specialize Chen's NFD-U analysis with
//! one-sided Chebyshev bounds:
//!
//! * **Step 1** — achievability of the mistake-duration bound. A mistake
//!   is corrected by the first subsequent heartbeat that arrives in time,
//!   which happens per period with probability at least
//!   `γ′ = (1 − pL)·(T_Mᵁ)² / (V(D) + (T_Mᵁ)²)` (Chebyshev at `T_Mᵁ`),
//!   so `E[T_M] ≤ Δi/γ′` and `Δi ≤ γ′·T_Mᵁ` suffices. `Δi` is further
//!   capped at `T_Dᵁ` so the safety margin stays non-negative.
//! * **Step 2** — the mistake-recurrence bound. A mistake at a freshness
//!   point requires *every* heartbeat whose timely arrival would have
//!   prevented it to be late or lost; message `j` (counting back from
//!   the deadline) is late-or-lost with probability at most
//!   `p_j = (V(D) + pL·(T_Dᵁ − j·Δi)²) / (V(D) + (T_Dᵁ − j·Δi)²)`,
//!   giving `E[T_MR] ≥ f(Δi) = Δi / Π_j p_j` (Eq. 16). The procedure
//!   finds the largest `Δi ≤ Δi_max` with `f(Δi) ≥ T_MRᵁ` numerically.
//! * **Step 3** — `Δto = T_Dᵁ − Δi`.

use serde::{Deserialize, Serialize};
use std::fmt;
use twofd_sim::time::Span;
use twofd_trace::{Trace, TraceStats};

/// An application's QoS requirement tuple `(T_Dᵁ, T_MRᵁ, T_Mᵁ)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Upper bound on detection time `T_Dᵁ`, seconds.
    pub detection_time: f64,
    /// Lower bound on average mistake recurrence time `T_MRᵁ`, seconds
    /// (one mistake per at most this often).
    pub mistake_recurrence: f64,
    /// Upper bound on average mistake duration `T_Mᵁ`, seconds.
    pub mistake_duration: f64,
}

impl QosSpec {
    /// Creates a spec, validating positivity.
    pub fn new(detection_time: f64, mistake_recurrence: f64, mistake_duration: f64) -> Self {
        assert!(detection_time > 0.0, "T_D^U must be positive");
        assert!(mistake_recurrence > 0.0, "T_MR^U must be positive");
        assert!(mistake_duration > 0.0, "T_M^U must be positive");
        QosSpec {
            detection_time,
            mistake_recurrence,
            mistake_duration,
        }
    }

    /// The equivalent upper bound on mistake *rate*, per second.
    pub fn max_mistake_rate(&self) -> f64 {
        1.0 / self.mistake_recurrence
    }
}

/// The network's probabilistic behaviour as seen by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkBehavior {
    /// Message loss probability `pL`.
    pub loss_prob: f64,
    /// Message delay variance `V(D)`, seconds².
    pub delay_var: f64,
}

impl NetworkBehavior {
    /// Creates a behaviour description, validating ranges.
    pub fn new(loss_prob: f64, delay_var: f64) -> Self {
        assert!((0.0..1.0).contains(&loss_prob), "pL must be in [0,1)");
        assert!(delay_var >= 0.0, "V(D) must be non-negative");
        NetworkBehavior {
            loss_prob,
            delay_var,
        }
    }

    /// Estimates `pL` and `V(D)` from a recorded trace (§V-A.1: count
    /// missing sequence numbers; take the variance of `A − S`, which is
    /// skew-independent).
    pub fn from_trace(trace: &Trace) -> Self {
        let stats = TraceStats::compute(trace);
        NetworkBehavior {
            loss_prob: stats.loss_rate.min(0.999_999),
            delay_var: stats.delay_var,
        }
    }
}

/// The failure-detector parameters output by the procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdConfig {
    /// Heartbeat inter-sending interval Δi.
    pub interval: Span,
    /// Constant safety margin Δto.
    pub safety_margin: Span,
}

impl FdConfig {
    /// The detection-time budget `Δi + Δto` this configuration consumes.
    pub fn detection_budget(&self) -> Span {
        self.interval + self.safety_margin
    }
}

/// Why a QoS specification cannot be met.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Step 1 produced a non-positive maximum interval: the network is
    /// too lossy/noisy for the requested mistake duration.
    Unachievable {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Unachievable { reason } => {
                write!(f, "QoS specification unachievable: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Eq. 16: the lower bound `f(Δi)` on the average mistake recurrence
/// time, in seconds. When no heartbeat deadline falls inside the
/// detection window (`Δi ≥ T_Dᵁ`), the empty product means the mistake
/// probability bound is 1 and `f(Δi) = Δi` — one mistake per period.
pub fn recurrence_lower_bound(delta_i: f64, spec: &QosSpec, net: &NetworkBehavior) -> f64 {
    match log_recurrence_bound(delta_i, spec, net, 700.0) {
        Some(log_f) if log_f <= 700.0 => log_f.exp(),
        _ => f64::INFINITY,
    }
}

/// Natural log of `f(Δi)`, or `None` for `+∞`.
///
/// The factors `p_j ≤ 1` make the partial value of `ln f` monotone
/// non-decreasing in the number of factors processed, so the loop stops
/// as soon as the partial value exceeds `early_exit` (the caller only
/// needs to know "at least this big"). A hard cap on the factor count
/// guards degenerate inputs (`Δi` smaller than `T_Dᵁ/10⁶` would mean
/// over a million heartbeat deadlines inside one detection window);
/// truncation *under*-estimates `f`, which is the conservative
/// direction for the configuration search.
fn log_recurrence_bound(
    delta_i: f64,
    spec: &QosSpec,
    net: &NetworkBehavior,
    early_exit: f64,
) -> Option<f64> {
    debug_assert!(delta_i > 0.0);
    const MAX_FACTORS: i64 = 1_000_000;
    let td = spec.detection_time;
    let k = (td / delta_i).ceil() as i64 - 1;
    if k < 1 {
        // Empty product: no message sent inside the detection window can
        // avert the mistake, so the mistake-probability bound is 1 and
        // the recurrence bound is one mistake per sending period.
        let log_f = delta_i.ln();
        return if log_f > early_exit {
            None
        } else {
            Some(log_f)
        };
    }
    // Π_j p_j computed in log space: the factors get astronomically
    // small for small Δi and would underflow a plain product.
    let mut log_f = delta_i.ln();
    for j in 1..=k.min(MAX_FACTORS) {
        let x = td - j as f64 * delta_i;
        debug_assert!(x > 0.0);
        let p = (net.delay_var + net.loss_prob * x * x) / (net.delay_var + x * x);
        if p <= 0.0 {
            return None; // lossless, zero-variance: never late
        }
        log_f -= p.ln();
        if log_f > early_exit {
            return None;
        }
    }
    Some(log_f)
}

/// The smallest heartbeat interval the procedure will emit (100 µs).
/// Below this, "satisfying" a QoS tuple by heartbeating at megahertz
/// rates is a mathematical artifact, not a deployable configuration —
/// the paper's Step 1 declares such specs unachievable.
pub const MIN_INTERVAL_SECS: f64 = 1e-4;

/// Runs the three-step configuration procedure.
///
/// ```
/// use twofd_core::{configure, NetworkBehavior, QosSpec};
///
/// // Detect within 1 s, ≤1 mistake/hour, corrected within 1 s,
/// // on a link with 1% loss and 20 ms delay std-dev.
/// let spec = QosSpec::new(1.0, 3600.0, 1.0);
/// let net = NetworkBehavior::new(0.01, 0.02 * 0.02);
/// let cfg = configure(&spec, &net).unwrap();
/// // Δi + Δto = T_D^U exactly.
/// assert_eq!(cfg.detection_budget().as_secs_f64(), 1.0);
/// ```
pub fn configure(spec: &QosSpec, net: &NetworkBehavior) -> Result<FdConfig, ConfigError> {
    // ---- Step 1 (Eqs. 14–15): the largest interval compatible with the
    // mistake-duration bound.
    let tm = spec.mistake_duration;
    let gamma = (1.0 - net.loss_prob) * tm * tm / (net.delay_var + tm * tm);
    let delta_i_max = (gamma * tm).min(spec.detection_time);
    if delta_i_max < MIN_INTERVAL_SECS {
        return Err(ConfigError::Unachievable {
            reason: format!(
                "step 1: Δi_max = {delta_i_max:.3e}s is below the practical minimum \
                 interval (pL={}, V(D)={})",
                net.loss_prob, net.delay_var
            ),
        });
    }

    // ---- Step 2: largest Δi ≤ Δi_max with f(Δi) ≥ T_MRᵁ.
    // f is piecewise-smooth and, over the relevant range, decreasing in
    // Δi (each extra heartbeat deadline multiplies the recurrence bound
    // by 1/p_j ≫ 1). Scan a geometric grid downward over six decades,
    // then refine by bisection between the first passing point and its
    // failing neighbour.
    let log_target = spec.mistake_recurrence.ln();
    let meets = |di: f64| match log_recurrence_bound(di, spec, net, log_target) {
        None => true, // +∞, or the partial value already passed the target
        Some(log_f) => log_f >= log_target,
    };

    if meets(delta_i_max) {
        return Ok(finish(spec, delta_i_max));
    }
    let mut passing: Option<f64> = None;
    let mut failing = delta_i_max;
    let mut di = delta_i_max * 0.98;
    let floor = MIN_INTERVAL_SECS;
    while di > floor {
        if meets(di) {
            passing = Some(di);
            break;
        }
        failing = di;
        di *= 0.98;
    }
    let Some(mut lo) = passing else {
        return Err(ConfigError::Unachievable {
            reason: format!(
                "step 2: no Δi in ({floor:.3e}, {delta_i_max:.4}s] gives mistake recurrence ≥ {}s",
                spec.mistake_recurrence
            ),
        });
    };
    // Bisection refinement: invariant lo passes, failing fails, lo < failing.
    let mut hi = failing;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(finish(spec, lo))
}

/// Step 3: assemble the output with `Δto = T_Dᵁ − Δi`.
fn finish(spec: &QosSpec, delta_i: f64) -> FdConfig {
    let delta_i = delta_i.min(spec.detection_time);
    FdConfig {
        interval: Span::from_secs_f64(delta_i),
        safety_margin: Span::from_secs_f64(spec.detection_time - delta_i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wan_net() -> NetworkBehavior {
        // ~1% loss, 20 ms delay std-dev.
        NetworkBehavior::new(0.01, 0.02f64 * 0.02)
    }

    fn spec(td: f64, tmr: f64, tm: f64) -> QosSpec {
        QosSpec::new(td, tmr, tm)
    }

    #[test]
    fn budget_identity_always_holds() {
        // Δi + Δto = T_D^U exactly (Step 3).
        for td in [0.2, 0.5, 1.0, 5.0] {
            let cfg = configure(&spec(td, 3600.0, 1.0), &wan_net()).unwrap();
            let budget = cfg.detection_budget().as_secs_f64();
            assert!((budget - td).abs() < 1e-6, "td {td}: budget {budget}");
        }
    }

    #[test]
    fn interval_positive_and_margin_non_negative() {
        let cfg = configure(&spec(1.0, 3600.0, 1.0), &wan_net()).unwrap();
        assert!(cfg.interval > Span::ZERO);
        assert!(cfg.safety_margin >= Span::ZERO);
    }

    #[test]
    fn stricter_recurrence_shrinks_interval() {
        // Figure 11's shape: as the recurrence requirement grows (fewer
        // mistakes allowed), Δi decreases and Δto grows.
        let net = wan_net();
        let td = 1.0;
        let weak = configure(&spec(td, 60.0, 1.0), &net).unwrap();
        let strong = configure(&spec(td, 86_400.0 * 30.0, 1.0), &net).unwrap();
        assert!(
            strong.interval <= weak.interval,
            "strong {:?} vs weak {:?}",
            strong.interval,
            weak.interval
        );
        assert!(strong.safety_margin >= weak.safety_margin);
    }

    #[test]
    fn larger_detection_budget_grows_both_parameters() {
        // Figure 10's shape.
        let net = wan_net();
        let small = configure(&spec(0.3, 3600.0, 0.5), &net).unwrap();
        let large = configure(&spec(3.0, 3600.0, 0.5), &net).unwrap();
        assert!(large.interval >= small.interval);
        assert!(large.safety_margin >= small.safety_margin);
    }

    #[test]
    fn looser_mistake_duration_grows_interval_until_saturation() {
        // Figure 12's shape: Δi grows with T_M^U, then plateaus once the
        // recurrence constraint binds.
        let net = wan_net();
        let tight = configure(&spec(1.0, 3600.0, 0.05), &net).unwrap();
        let loose = configure(&spec(1.0, 3600.0, 5.0), &net).unwrap();
        assert!(loose.interval >= tight.interval);
    }

    #[test]
    fn interval_never_exceeds_mistake_duration_allowance() {
        // Step 1: Δi ≤ γ'·T_M^U ≤ T_M^U.
        let net = wan_net();
        let cfg = configure(&spec(5.0, 60.0, 0.2), &net).unwrap();
        assert!(cfg.interval.as_secs_f64() <= 0.2 + 1e-9);
    }

    #[test]
    fn recurrence_bound_decreases_with_interval() {
        let net = wan_net();
        let s = spec(1.0, 3600.0, 1.0);
        let f_small = recurrence_lower_bound(0.05, &s, &net);
        let f_large = recurrence_lower_bound(0.45, &s, &net);
        assert!(
            f_small > f_large,
            "f(0.05)={f_small:.3e} should exceed f(0.45)={f_large:.3e}"
        );
    }

    #[test]
    fn recurrence_bound_degenerates_to_delta_i_without_deadlines() {
        // Δi = T_D^U: no averting message fits in the window, the
        // mistake-probability bound is 1, and f = Δi.
        let net = wan_net();
        let s = spec(1.0, 3600.0, 1.0);
        assert!((recurrence_lower_bound(1.0, &s, &net) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn output_satisfies_the_recurrence_requirement() {
        let net = wan_net();
        let s = spec(1.0, 86_400.0, 1.0);
        let cfg = configure(&s, &net).unwrap();
        let f = recurrence_lower_bound(cfg.interval.as_secs_f64(), &s, &net);
        assert!(
            f >= s.mistake_recurrence * 0.999,
            "f = {f:.3e} < required {}",
            s.mistake_recurrence
        );
    }

    #[test]
    fn very_lossy_network_with_tight_duration_is_unachievable() {
        // pL = 99.9%: a mistake essentially can't be corrected within a
        // tiny T_M^U no matter the interval... Step 2 cannot find any Δi.
        let net = NetworkBehavior::new(0.999, 1.0);
        let s = spec(0.1, 1e9, 0.001);
        assert!(configure(&s, &net).is_err());
    }

    #[test]
    fn lossless_zero_variance_network_is_trivial() {
        let net = NetworkBehavior::new(0.0, 0.0);
        let cfg = configure(&spec(1.0, 1e12, 1.0), &net).unwrap();
        // Mistakes are impossible: the interval goes as high as allowed.
        assert!(cfg.interval.as_secs_f64() > 0.9);
    }

    #[test]
    fn from_trace_estimates_behaviour() {
        use twofd_trace::WanTraceConfig;
        let trace = WanTraceConfig::small(20_000, 9).generate();
        let net = NetworkBehavior::from_trace(&trace);
        assert!(net.loss_prob > 0.0 && net.loss_prob < 0.2);
        assert!(net.delay_var > 0.0);
    }

    #[test]
    #[should_panic(expected = "pL must be in [0,1)")]
    fn rejects_certain_loss() {
        NetworkBehavior::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "T_D^U must be positive")]
    fn rejects_zero_detection_time() {
        QosSpec::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn max_mistake_rate_is_reciprocal() {
        let s = spec(1.0, 50.0, 1.0);
        assert!((s.max_mistake_rate() - 0.02).abs() < 1e-12);
    }
}
