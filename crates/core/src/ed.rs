//! The Exponential Distribution failure detector (§II-B4 of the paper).
//!
//! Same accrual principle as the φ FD, but the inter-arrival distribution
//! is modelled as exponential (Eqs. 10–11):
//!
//! ```text
//! e_d = F(T_now − T_last),   F(t) = 1 − e^{−t/μ}
//! ```
//!
//! with `μ` the windowed mean inter-arrival time. Suspicion starts when
//! `e_d` reaches a threshold `E ∈ (0, 1)`. To put ED on the same sweep
//! axis as the φ FD, the threshold is expressed here as an exponent
//! `κ` with `E = 1 − 10^{−κ}`, giving the closed-form timeout
//! `Δ = −μ·ln(1 − E) = μ·κ·ln 10`.

use crate::detector::{Decision, FailureDetector, FreshnessState};
use crate::window::MomentsWindow;
use twofd_sim::time::{Nanos, Span};

/// Configuration of the ED detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdConfig {
    /// Inter-arrival sampling-window size (paper: 1000).
    pub window: usize,
    /// Threshold exponent κ; the suspicion threshold is `E = 1 − 10^{−κ}`.
    pub kappa: f64,
    /// Timeout granted after the very first heartbeat.
    pub bootstrap: Span,
}

/// The Exponential Distribution accrual failure detector.
#[derive(Debug, Clone)]
pub struct EdFd {
    config: EdConfig,
    interarrivals: MomentsWindow,
    last_arrival: Option<Nanos>,
    state: FreshnessState,
}

impl EdFd {
    /// Creates the detector.
    ///
    /// # Panics
    /// If `kappa` is not positive.
    pub fn new(config: EdConfig) -> Self {
        assert!(config.kappa > 0.0, "kappa must be positive");
        EdFd {
            interarrivals: MomentsWindow::new(config.window),
            config,
            last_arrival: None,
            state: FreshnessState::default(),
        }
    }

    /// Convenience constructor with the paper's window default.
    pub fn with_kappa(window: usize, kappa: f64) -> Self {
        EdFd::new(EdConfig {
            window,
            kappa,
            bootstrap: Span::from_secs(2),
        })
    }

    /// The suspicion level `e_d` at time `now` (Eq. 10); `None` before
    /// the first heartbeat, 0 before the first inter-arrival sample.
    pub fn suspicion(&self, now: Nanos) -> Option<f64> {
        let last = self.last_arrival?;
        let mean = match self.interarrivals.mean() {
            Some(m) if m > 0.0 => m,
            _ => return Some(0.0),
        };
        let elapsed = now.saturating_since(last).as_secs_f64();
        Some(1.0 - (-elapsed / mean).exp())
    }

    /// The configured threshold exponent κ.
    pub fn kappa(&self) -> f64 {
        self.config.kappa
    }

    /// The effective threshold `E = 1 − 10^{−κ}`.
    pub fn threshold(&self) -> f64 {
        1.0 - 10f64.powf(-self.config.kappa)
    }
}

impl FailureDetector for EdFd {
    fn name(&self) -> String {
        format!(
            "ed({},κ={:.2})",
            self.interarrivals.capacity(),
            self.config.kappa
        )
    }

    fn on_heartbeat(&mut self, seq: u64, arrival: Nanos) -> Option<Decision> {
        if !self.state.accept(seq) {
            return None;
        }
        if let Some(last) = self.last_arrival {
            self.interarrivals
                .push(arrival.saturating_since(last).as_secs_f64());
        }
        self.last_arrival = Some(arrival);
        let trust_until = match self.interarrivals.mean() {
            Some(mean) if mean > 0.0 => {
                // Δ = −μ ln(1 − E) = μ·κ·ln(10).
                let timeout = mean * self.config.kappa * core::f64::consts::LN_10;
                arrival + Span::from_secs_f64(timeout)
            }
            _ => arrival + self.config.bootstrap,
        };
        let d = Decision { trust_until };
        self.state.decision = Some(d);
        Some(d)
    }

    fn current_decision(&self) -> Option<Decision> {
        self.state.decision
    }

    fn last_seq(&self) -> Option<u64> {
        self.state.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DI: Span = Span(100_000_000); // 100 ms

    fn arrival(seq: u64, delay_ms: u64) -> Nanos {
        Nanos(seq * DI.0 + delay_ms * 1_000_000)
    }

    fn warmed_up(kappa: f64) -> EdFd {
        let mut fd = EdFd::with_kappa(1000, kappa);
        for seq in 1..=200u64 {
            fd.on_heartbeat(seq, arrival(seq, 10));
        }
        fd
    }

    #[test]
    fn bootstrap_applies_before_any_interarrival() {
        let mut fd = EdFd::new(EdConfig {
            window: 10,
            kappa: 1.0,
            bootstrap: Span::from_secs(5),
        });
        let d = fd.on_heartbeat(1, arrival(1, 10)).unwrap();
        assert_eq!(d.trust_until, arrival(1, 10) + Span::from_secs(5));
    }

    #[test]
    fn timeout_is_mu_kappa_ln10() {
        let mut fd = warmed_up(2.0);
        let a = arrival(201, 10);
        let d = fd.on_heartbeat(201, a).unwrap();
        // μ = 100 ms exactly (periodic arrivals with constant delay).
        let expected = 0.1 * 2.0 * core::f64::consts::LN_10;
        let got = (d.trust_until - a).as_secs_f64();
        assert!(
            (got - expected).abs() < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn suspicion_crosses_threshold_at_trust_until() {
        let kappa = 1.5;
        let mut fd = warmed_up(kappa);
        let d = fd.on_heartbeat(201, arrival(201, 10)).unwrap();
        let e = fd.threshold();
        let before = fd
            .suspicion(d.trust_until - Span::from_micros(100))
            .unwrap();
        let after = fd
            .suspicion(d.trust_until + Span::from_micros(100))
            .unwrap();
        assert!(before < e);
        assert!(after >= e * 0.9999);
    }

    #[test]
    fn suspicion_monotone_and_bounded() {
        let fd = warmed_up(1.0);
        let last = arrival(200, 10);
        let mut prev = -1.0;
        for ms in [0u64, 50, 100, 500, 5_000] {
            let s = fd.suspicion(last + Span::from_millis(ms)).unwrap();
            assert!(s >= prev);
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
    }

    #[test]
    fn larger_kappa_is_more_conservative() {
        let mut a = warmed_up(0.5);
        let mut c = warmed_up(5.0);
        let da = a.on_heartbeat(201, arrival(201, 10)).unwrap();
        let dc = c.on_heartbeat(201, arrival(201, 10)).unwrap();
        assert!(dc.trust_until > da.trust_until);
    }

    #[test]
    fn lost_heartbeats_inflate_mu_and_timeout() {
        let mut steady = warmed_up(1.0);
        let mut lossy = warmed_up(1.0);
        // Feed `lossy` every other heartbeat only: inter-arrivals double.
        for seq in 201..=400u64 {
            steady.on_heartbeat(seq, arrival(seq, 10));
            if seq % 2 == 0 {
                lossy.on_heartbeat(seq, arrival(seq, 10));
            }
        }
        let ds = steady.on_heartbeat(401, arrival(401, 10)).unwrap();
        let dl = lossy.on_heartbeat(401, arrival(401, 10)).unwrap();
        let ts = (ds.trust_until - arrival(401, 10)).as_secs_f64();
        let tl = (dl.trust_until - arrival(401, 10)).as_secs_f64();
        // The lossy window holds ~200 normal gaps (warm-up) plus ~100
        // doubled gaps, so μ grows by a third; the timeout must follow.
        assert!(tl > 1.25 * ts, "lossy timeout {tl} vs steady {ts}");
    }

    #[test]
    #[should_panic(expected = "kappa must be positive")]
    fn rejects_non_positive_kappa() {
        EdFd::with_kappa(10, -1.0);
    }
}
