//! Dense-slot struct-of-arrays storage for monitored streams.
//!
//! A fleet-scale [`crate::ProcessSet`] answers two very different kinds
//! of questions: the *apply* path (one heartbeat → one detector update)
//! and the *scan* path (`counts`, `statuses`, `suspected` — the obs
//! gauges walk every stream). Storing 192-byte [`crate::AnyDetector`]
//! entries in a `HashMap` serves both badly: every scan chases hash
//! buckets across the heap and drags whole detectors through the cache
//! to read one comparison's worth of state.
//!
//! [`StreamSlab`] splits the state by temperature:
//!
//! * **hot** — one [`HotSlot`] (24 bytes) per stream: `trust_until`,
//!   last sequence, a generation counter and status flags. Everything a
//!   scan or an expiry check needs, in a dense parallel array a scan
//!   walks at cache-line speed.
//! * **cold** — the detector itself and the stream key, in parallel
//!   arrays touched only by the apply path (detector) or when
//!   materializing results (key).
//!
//! Keys are interned to dense `u32` slots at registration; slots are
//! recycled through a free list, and each recycle bumps the slot's
//! *generation* so stale references (e.g. timing-wheel entries queued
//! for a deregistered stream — see [`crate::wheel`]) can never alias a
//! new occupant, even one with a coincidentally equal horizon.
//!
//! The hot mirror is exact because every detector in the suite derives
//! its output via the default [`crate::FailureDetector::output_at`] —
//! `Trust` iff `t < trust_until` — so `HotSlot::output_at` is the same
//! function over mirrored state. The wheel-vs-heap differential suite in
//! `tests/shard_equivalence.rs` cross-checks this against detector-side
//! outputs on random traces.

use std::collections::HashMap;
use std::hash::Hash;
use twofd_sim::time::Nanos;

use crate::detector::FdOutput;

/// Slot flag: the slot holds a registered stream.
const OCCUPIED: u8 = 1;
/// Slot flag: at least one fresh heartbeat was processed
/// (`trust_until` is meaningful).
const HAS_DECISION: u8 = 1 << 1;
/// Slot flag: `last_seq` is meaningful.
const HAS_SEQ: u8 = 1 << 2;
/// Slot flag: the last published transition was `Trust`.
const PUBLISHED_TRUST: u8 = 1 << 3;

/// How far the generation counter is shifted inside the packed
/// `gen_flags` word (the low byte holds the status flags).
const GEN_SHIFT: u32 = 8;

/// The hot per-stream state: everything scans and expiry checks read,
/// packed into 24 bytes so a cache line holds more than two streams.
/// The generation counter and the status flags share one `u32` (flags
/// in the low byte, a 24-bit generation above them) to make room for
/// the crash-recovery incarnation without growing the slot.
#[derive(Debug, Clone, Copy)]
pub struct HotSlot {
    /// Mirror of the current decision's `trust_until` (valid iff
    /// `HAS_DECISION`).
    trust_until: Nanos,
    /// Mirror of the detector's largest seen sequence number (valid iff
    /// `HAS_SEQ`).
    last_seq: u64,
    /// Low byte: `OCCUPIED | HAS_DECISION | HAS_SEQ | PUBLISHED_TRUST`.
    /// High 24 bits: generation, bumped (wrapping) every time the slot
    /// is vacated; guards recycled slots against stale references.
    gen_flags: u32,
    /// The stream's current incarnation (boot counter). A heartbeat
    /// with a higher incarnation resets the stream — see
    /// [`crate::ProcessSet::on_heartbeat_incarnated`].
    incarnation: u32,
}

impl HotSlot {
    const VACANT: HotSlot = HotSlot {
        trust_until: Nanos::ZERO,
        last_seq: 0,
        gen_flags: 0,
        incarnation: 0,
    };

    fn flags(&self) -> u8 {
        (self.gen_flags & 0xFF) as u8
    }

    fn set_flags(&mut self, flags: u8) {
        self.gen_flags = (self.gen_flags & !0xFF) | u32::from(flags);
    }

    /// Whether the slot currently holds a stream.
    pub fn occupied(&self) -> bool {
        self.flags() & OCCUPIED != 0
    }

    /// The slot's current generation (24-bit, wrapping).
    pub fn gen(&self) -> u32 {
        self.gen_flags >> GEN_SHIFT
    }

    /// The stream's current incarnation (0 until a heartbeat carries a
    /// higher one).
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Records the stream's incarnation.
    pub fn set_incarnation(&mut self, incarnation: u32) {
        self.incarnation = incarnation;
    }

    /// The stream's current trust horizon, if any fresh heartbeat was
    /// processed.
    pub fn trust_until(&self) -> Option<Nanos> {
        (self.flags() & HAS_DECISION != 0).then_some(self.trust_until)
    }

    /// Largest heartbeat sequence number seen, if any.
    pub fn last_seq(&self) -> Option<u64> {
        (self.flags() & HAS_SEQ != 0).then_some(self.last_seq)
    }

    /// The stream's output at `t` — identical to the detector suite's
    /// default [`crate::FailureDetector::output_at`], computed from hot
    /// state alone.
    pub fn output_at(&self, t: Nanos) -> FdOutput {
        if self.flags() & HAS_DECISION != 0 && t < self.trust_until {
            FdOutput::Trust
        } else {
            FdOutput::Suspect
        }
    }

    /// Whether the last published transition for this stream was `Trust`.
    pub fn published_trust(&self) -> bool {
        self.flags() & PUBLISHED_TRUST != 0
    }

    /// Records the last published transition.
    pub fn set_published(&mut self, trust: bool) {
        let flags = if trust {
            self.flags() | PUBLISHED_TRUST
        } else {
            self.flags() & !PUBLISHED_TRUST
        };
        self.set_flags(flags);
    }

    /// Mirrors a fresh decision's trust horizon.
    pub fn set_decision(&mut self, trust_until: Nanos) {
        self.trust_until = trust_until;
        self.set_flags(self.flags() | HAS_DECISION);
    }

    /// Mirrors the detector's last-seen sequence number.
    pub fn set_seq(&mut self, seq: u64) {
        self.last_seq = seq;
        self.set_flags(self.flags() | HAS_SEQ);
    }

    /// Clears the decision/sequence mirrors (and the incarnation-free
    /// published bit is left untouched) when a higher incarnation
    /// resets the stream's detector: the fresh detector has seen no
    /// heartbeat yet, so neither mirror is meaningful.
    pub fn reset_stream_state(&mut self) {
        self.trust_until = Nanos::ZERO;
        self.last_seq = 0;
        self.set_flags(self.flags() & !(HAS_DECISION | HAS_SEQ));
    }
}

/// Interns stream keys to dense `u32` slots and stores their state as
/// parallel hot/cold arrays. See the module docs for the layout.
pub struct StreamSlab<K, D> {
    /// Key → slot lookup (apply-path entry point).
    index: HashMap<K, u32>,
    /// Hot parallel array — the only thing scans touch.
    hot: Vec<HotSlot>,
    /// Cold: the interned key per slot (`None` when vacant).
    keys: Vec<Option<K>>,
    /// Cold: the detector per slot (`None` when vacant).
    detectors: Vec<Option<D>>,
    /// Vacated slots available for reuse.
    free: Vec<u32>,
    /// Number of occupied slots.
    live: usize,
}

impl<K, D> StreamSlab<K, D>
where
    K: Eq + Hash + Clone,
{
    /// An empty slab.
    //
    // hotpath:allow(alloc) — construction path: `new` runs once per
    // shard at startup, never per heartbeat. `Vec::new` here is the
    // deliberate empty state; growth is amortised by `register`, which
    // is control-plane, not the apply/sweep path.
    pub fn new() -> Self {
        StreamSlab {
            index: HashMap::new(),
            hot: Vec::new(),
            keys: Vec::new(),
            detectors: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no stream is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots allocated (occupied + free-listed). Churn
    /// (deregister/re-register cycles) must not grow this: recycled
    /// slots are reused before new ones are minted.
    pub fn capacity(&self) -> usize {
        self.hot.len()
    }

    /// The slot a key is interned at, if registered.
    pub fn slot_of(&self, key: &K) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// Interns `key`, building its detector with `build` if it is not
    /// yet registered, and returns its dense slot. Re-interning an
    /// existing key is a no-op returning the existing slot — state is
    /// preserved and no storage is duplicated.
    pub fn intern_with(&mut self, key: K, build: impl FnOnce(&K) -> D) -> u32 {
        if let Some(&slot) = self.index.get(&key) {
            return slot;
        }
        let fd = build(&key);
        let slot = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                // The generation was already bumped when the slot was
                // vacated.
                self.hot[i].set_flags(OCCUPIED);
                self.keys[i] = Some(key.clone());
                self.detectors[i] = Some(fd);
                slot
            }
            None => {
                // hotpath:allow(panic) — unreachable by capacity math:
                // 2^32 slots would need >170 GiB of hot+cold state per
                // shard, far past the 1M-streams-per-shard design
                // ceiling; and `register` is control-plane, not the
                // per-heartbeat apply path.
                let slot = u32::try_from(self.hot.len()).expect("more than u32::MAX streams");
                let mut h = HotSlot::VACANT;
                h.set_flags(OCCUPIED);
                self.hot.push(h);
                self.keys.push(Some(key.clone()));
                self.detectors.push(Some(fd));
                slot
            }
        };
        self.index.insert(key, slot);
        self.live += 1;
        slot
    }

    /// Vacates `key`'s slot: drops the detector, bumps the generation
    /// (so queued wheel entries can never alias the next occupant) and
    /// recycles the slot. Returns the vacated slot.
    pub fn remove(&mut self, key: &K) -> Option<u32> {
        let slot = self.index.remove(key)?;
        let i = slot as usize;
        self.keys[i] = None;
        self.detectors[i] = None;
        let h = &mut self.hot[i];
        *h = HotSlot {
            gen_flags: h.gen().wrapping_add(1) << GEN_SHIFT,
            ..HotSlot::VACANT
        };
        self.free.push(slot);
        self.live -= 1;
        Some(slot)
    }

    /// Replaces the detector of an occupied `slot` with a freshly built
    /// one and clears the slot's decision/sequence mirrors — the
    /// crash-recovery reset: a higher incarnation means the old
    /// detector's sampled history describes a dead boot. The slot, its
    /// key, its generation and its published state are all preserved
    /// (the *stream* did not churn; its process restarted).
    pub fn reset_detector(&mut self, slot: u32, build: impl FnOnce(&K) -> D) {
        let i = slot as usize;
        // hotpath:allow(panic) — invariant, not input: callers resolve
        // `slot` through the live `index` map immediately before this
        // call, so a vacant slot here means slab corruption; crashing
        // loudly beats silently resetting someone else's stream.
        let key = self.keys[i].as_ref().expect("reset on vacant slot");
        self.detectors[i] = Some(build(key));
        self.hot[i].reset_stream_state();
    }

    /// The hot state of `slot` (must be in bounds).
    pub fn hot(&self, slot: u32) -> &HotSlot {
        &self.hot[slot as usize]
    }

    /// Disjoint mutable access for the apply path: the hot mirror, the
    /// detector and the interned key of an occupied `slot`.
    pub fn apply(&mut self, slot: u32) -> (&mut HotSlot, &mut D, &K) {
        let i = slot as usize;
        // hotpath:allow(panic) — invariant, not input: the worker only
        // calls `apply` for slots it resolved via the index or whose
        // `(slot, gen)` reference passed `entry_is_current`, both of
        // which imply OCCUPIED. A vacant slot here is slab corruption;
        // fail-stop is the correct reaction (DESIGN.md §17).
        (
            &mut self.hot[i],
            self.detectors[i].as_mut().expect("apply on vacant slot"),
            self.keys[i].as_ref().expect("apply on vacant slot"),
        )
    }

    /// Whether a `(slot, gen, deadline)` reference still describes a
    /// registered stream whose *current* trust horizon is `deadline` —
    /// the timing wheel's liveness predicate.
    pub fn entry_is_live(&self, slot: u32, gen: u32, deadline: Nanos) -> bool {
        match self.hot.get(slot as usize) {
            Some(h) => h.occupied() && h.gen() == gen && h.trust_until() == Some(deadline),
            None => false,
        }
    }

    /// Publishes the expiry of a harvested wheel entry: if the entry is
    /// still live (see [`StreamSlab::entry_is_live`]) and the stream's
    /// last published transition was `Trust`, flips it to `Suspect` and
    /// returns the key to stamp the event with.
    pub fn publish_expiry(&mut self, slot: u32, gen: u32, deadline: Nanos) -> Option<&K> {
        if !self.entry_is_live(slot, gen, deadline) || !self.hot[slot as usize].published_trust() {
            return None;
        }
        self.hot[slot as usize].set_published(false);
        self.keys[slot as usize].as_ref()
    }

    /// Calls `f` for every registered stream's key and hot state.
    pub fn for_each(&self, mut f: impl FnMut(&K, &HotSlot)) {
        for (h, k) in self.hot.iter().zip(&self.keys) {
            if let Some(k) = k {
                f(k, h);
            }
        }
    }

    /// Calls `f` for every registered stream's hot state — the pure
    /// scan path: no key, no detector, just the dense hot array.
    pub fn for_each_hot(&self, mut f: impl FnMut(&HotSlot)) {
        for h in &self.hot {
            if h.occupied() {
                f(h);
            }
        }
    }
}

impl<K, D> Default for StreamSlab<K, D>
where
    K: Eq + Hash + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab() -> StreamSlab<u64, &'static str> {
        StreamSlab::new()
    }

    #[test]
    fn hot_slot_is_compact() {
        assert!(
            std::mem::size_of::<HotSlot>() <= 24,
            "HotSlot grew past 24 bytes: {}",
            std::mem::size_of::<HotSlot>()
        );
    }

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut s = slab();
        let a = s.intern_with(100, |_| "a");
        let b = s.intern_with(200, |_| "b");
        assert_eq!((a, b), (0, 1));
        // Re-interning neither rebuilds nor reallocates.
        assert_eq!(s.intern_with(100, |_| panic!("rebuilt")), 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn recycled_slots_bump_generation() {
        let mut s = slab();
        let a = s.intern_with(1, |_| "x");
        let g0 = s.hot(a).gen();
        assert_eq!(s.remove(&1), Some(a));
        let b = s.intern_with(2, |_| "y");
        assert_eq!(b, a, "the freed slot is reused");
        assert_eq!(s.hot(b).gen(), g0 + 1);
        assert_eq!(s.capacity(), 1, "no new slot was minted");
    }

    #[test]
    fn stale_references_are_dead_after_recycling() {
        let mut s = slab();
        let slot = s.intern_with(1, |_| "x");
        let (h, _, _) = s.apply(slot);
        h.set_decision(Nanos(500));
        let gen = s.hot(slot).gen();
        assert!(s.entry_is_live(slot, gen, Nanos(500)));
        s.remove(&1);
        s.intern_with(2, |_| "y");
        let (h, _, _) = s.apply(slot);
        h.set_decision(Nanos(500)); // coincidentally equal horizon
        assert!(
            !s.entry_is_live(slot, gen, Nanos(500)),
            "old-generation reference must not alias the new occupant"
        );
    }

    #[test]
    fn publish_expiry_fires_once_and_only_when_live() {
        let mut s = slab();
        let slot = s.intern_with(7, |_| "x");
        let gen = s.hot(slot).gen();
        let (h, _, _) = s.apply(slot);
        h.set_decision(Nanos(1000));
        h.set_published(true);
        // Superseded deadline: no publish.
        assert_eq!(s.publish_expiry(slot, gen, Nanos(900)), None);
        // Live: publishes exactly once.
        assert_eq!(s.publish_expiry(slot, gen, Nanos(1000)), Some(&7));
        assert_eq!(s.publish_expiry(slot, gen, Nanos(1000)), None);
    }

    #[test]
    fn reset_detector_clears_mirrors_but_keeps_slot_identity() {
        let mut s = slab();
        let slot = s.intern_with(9, |_| "old");
        let gen = s.hot(slot).gen();
        {
            let (h, _, _) = s.apply(slot);
            h.set_decision(Nanos(800));
            h.set_seq(42);
            h.set_published(true);
            h.set_incarnation(0);
        }
        s.reset_detector(slot, |_| "new");
        let h = *s.hot(slot);
        assert!(h.occupied());
        assert_eq!(h.gen(), gen, "reset is not churn: generation kept");
        assert_eq!(h.trust_until(), None);
        assert_eq!(h.last_seq(), None);
        assert!(
            h.published_trust(),
            "published state survives the reset so the Suspect synthesis stays exact"
        );
        let (_, fd, _) = s.apply(slot);
        assert_eq!(*fd, "new");
    }

    #[test]
    fn incarnation_and_generation_do_not_alias() {
        let mut s = slab();
        let slot = s.intern_with(1, |_| "x");
        {
            let (h, _, _) = s.apply(slot);
            h.set_incarnation(7);
        }
        let g0 = s.hot(slot).gen();
        assert_eq!(s.hot(slot).incarnation(), 7);
        s.remove(&1);
        let again = s.intern_with(1, |_| "x");
        assert_eq!(again, slot);
        assert_eq!(s.hot(slot).gen(), g0 + 1);
        assert_eq!(
            s.hot(slot).incarnation(),
            0,
            "a recycled slot starts at incarnation 0"
        );
    }

    #[test]
    fn scans_cover_exactly_the_occupied_slots() {
        let mut s = slab();
        s.intern_with(1, |_| "a");
        s.intern_with(2, |_| "b");
        s.intern_with(3, |_| "c");
        s.remove(&2);
        let mut keys = Vec::new();
        s.for_each(|k, _| keys.push(*k));
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3]);
        let mut n = 0;
        s.for_each_hot(|_| n += 1);
        assert_eq!(n, 2);
    }
}
