//! The monitored process `p`: a periodic UDP heartbeat emitter.
//!
//! Mirrors Algorithm 1's sender side — "at time `i·Δi` send heartbeat
//! `m_i` to `q`" — on a real socket. The sender runs on its own thread,
//! can be paused (to simulate transient network partitions) and crashed
//! (stops for ever), which is how the live examples and integration
//! tests exercise actual failure detection end to end.

use crate::clock::{MonotonicClock, TimeSource};
use crate::transport::{SenderTransport, UdpSenderTransport};
use crate::wire::{Heartbeat, WIRE_SIZE};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use twofd_sim::time::{Nanos, Span};

/// Longest single nap while waiting for the next beat deadline, so
/// [`HeartbeatSender::crash`] takes effect within this bound even for
/// very long heartbeat intervals.
const MAX_NAP: Duration = Duration::from_millis(20);

/// Control block shared with the sender thread.
#[derive(Debug)]
struct Shared {
    crashed: AtomicBool,
    paused: AtomicBool,
    sent: AtomicU64,
}

/// Handle to a running heartbeat sender.
///
/// Dropping the handle crashes the sender and joins the thread.
#[derive(Debug)]
pub struct HeartbeatSender {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
    local_addr: SocketAddr,
}

impl HeartbeatSender {
    /// Spawns a sender emitting heartbeats for `stream` every `interval`
    /// to `target`, timed by a fresh [`MonotonicClock`] (its own origin,
    /// deliberately unsynchronized with the monitor's — the paper's
    /// clock model).
    pub fn spawn(stream: u64, interval: Span, target: SocketAddr) -> io::Result<HeartbeatSender> {
        Self::spawn_with_clock(stream, interval, target, Arc::new(MonotonicClock::new()))
    }

    /// Like [`HeartbeatSender::spawn`] with an explicit [`TimeSource`]
    /// timing the beats — e.g. a [`crate::clock::SkewedClock`] to script
    /// this sender's clock running fast, slow, or offset from every
    /// other node's.
    pub fn spawn_with_clock(
        stream: u64,
        interval: Span,
        target: SocketAddr,
        clock: Arc<dyn TimeSource>,
    ) -> io::Result<HeartbeatSender> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local_addr = socket.local_addr()?;
        socket.connect(target)?;
        Self::spawn_on_at(
            stream,
            interval,
            UdpSenderTransport::new(socket),
            clock,
            local_addr,
        )
    }

    /// Spawns the sender over an arbitrary [`SenderTransport`] — the
    /// seam that lets tests emit heartbeats into an in-memory
    /// [`crate::transport::SimSender`] inbox instead of a socket. The
    /// returned handle's [`HeartbeatSender::local_addr`] is the
    /// unspecified `127.0.0.1:0`, since a non-socket transport has no
    /// address.
    pub fn spawn_on<T: SenderTransport + 'static>(
        stream: u64,
        interval: Span,
        transport: T,
        clock: Arc<dyn TimeSource>,
    ) -> io::Result<HeartbeatSender> {
        Self::spawn_on_at(
            stream,
            interval,
            transport,
            clock,
            ([127, 0, 0, 1], 0).into(),
        )
    }

    fn spawn_on_at<T: SenderTransport + 'static>(
        stream: u64,
        interval: Span,
        mut transport: T,
        clock: Arc<dyn TimeSource>,
        local_addr: SocketAddr,
    ) -> io::Result<HeartbeatSender> {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        let shared = Arc::new(Shared {
            crashed: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            sent: AtomicU64::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let period = Duration::from_nanos(interval.0);

        let thread = thread::Builder::new()
            .name(format!("twofd-sender-{stream}"))
            .spawn(move || {
                // Algorithm 1 sends `m_i` at absolute time `i·Δi`. Sleep
                // against those deadlines, not for `period` per loop: a
                // relative sleep accumulates its overshoot into every
                // later beat, while sleeping the *residual* to the next
                // multiple keeps each beat within one scheduler overshoot
                // of its nominal instant no matter how many came before.
                let mut buf = [0u8; WIRE_SIZE];
                let mut seq = 0u64;
                loop {
                    seq += 1;
                    let deadline = Nanos(interval.0.saturating_mul(seq));
                    loop {
                        let residual = deadline.saturating_since(clock.now());
                        if residual.is_zero() {
                            break;
                        }
                        // Cap each nap so a crash is honored promptly
                        // even with very long heartbeat intervals.
                        thread::sleep(Duration::from_nanos(residual.0).min(period).min(MAX_NAP));
                        if thread_shared.crashed.load(Ordering::Acquire) {
                            return;
                        }
                    }
                    if thread_shared.crashed.load(Ordering::Acquire) {
                        return;
                    }
                    if thread_shared.paused.load(Ordering::Acquire) {
                        // Paused senders still consume sequence numbers:
                        // to the monitor this is indistinguishable from
                        // network loss, which is the point.
                        continue;
                    }
                    // The live sender is a crash-stop process: a crash()
                    // is final, so it never sends a second incarnation.
                    // Restart scripting (incarnation bumps) lives in the
                    // cluster simulator's sender model.
                    let hb = Heartbeat {
                        stream,
                        seq,
                        sent_at: clock.now(),
                        incarnation: 0,
                    };
                    hb.encode_into(&mut buf);
                    // Send errors (e.g. monitor socket gone) are treated
                    // as losses; the detector's whole job is surviving
                    // those.
                    let _ = transport.send(&buf);
                    // ordering: Relaxed — standalone stat counter; no
                    // reader infers other memory from its value.
                    thread_shared.sent.fetch_add(1, Ordering::Relaxed);
                }
            })?;

        Ok(HeartbeatSender {
            shared,
            thread: Mutex::new(Some(thread)),
            local_addr,
        })
    }

    /// Crashes the monitored process: no further heartbeat will ever be
    /// sent. Idempotent.
    pub fn crash(&self) {
        self.shared.crashed.store(true, Ordering::Release);
    }

    /// Pauses emission (simulates a network partition); heartbeats sent
    /// while paused are lost, not delayed.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes emission after [`HeartbeatSender::pause`].
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
    }

    /// Heartbeats actually handed to the socket so far.
    pub fn sent(&self) -> u64 {
        // ordering: Relaxed — standalone stat counter, see the add site.
        self.shared.sent.load(Ordering::Relaxed)
    }

    /// Whether [`HeartbeatSender::crash`] was called.
    pub fn is_crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::Acquire)
    }

    /// The sender's local socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for HeartbeatSender {
    fn drop(&mut self) {
        self.crash();
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::time::Instant;

    fn bound_socket() -> (UdpSocket, SocketAddr) {
        let s = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let addr = s.local_addr().unwrap();
        (s, addr)
    }

    #[test]
    fn sender_emits_increasing_sequence_numbers() {
        let (socket, addr) = bound_socket();
        let sender = HeartbeatSender::spawn(1, Span::from_millis(5), addr).unwrap();
        let mut buf = [0u8; 64];
        let mut seqs = Vec::new();
        for _ in 0..5 {
            let n = socket.recv(&mut buf).unwrap();
            let hb = Heartbeat::decode(&buf[..n]).unwrap();
            assert_eq!(hb.stream, 1);
            seqs.push(hb.seq);
        }
        // Under parallel-test scheduler pressure the kernel may coalesce
        // wakeups; require distinct, overall-increasing sequence numbers
        // rather than strict per-datagram ordering.
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seqs.len(), "duplicate seqs in {seqs:?}");
        assert!(*sorted.last().unwrap() >= 5);
        // The counter increments after the send syscall, so the receiver
        // can observe the 5th datagram a beat before `sent()` reflects
        // it; wait out that window instead of asserting instantly.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while sender.sent() < 5 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        assert!(sender.sent() >= 5);
    }

    #[test]
    fn crash_stops_emission() {
        let (socket, addr) = bound_socket();
        let sender = HeartbeatSender::spawn(2, Span::from_millis(5), addr).unwrap();
        let mut buf = [0u8; 64];
        socket.recv(&mut buf).unwrap(); // at least one arrived
        sender.crash();
        assert!(sender.is_crashed());
        // Drain anything in flight, then verify silence.
        thread::sleep(Duration::from_millis(30));
        while socket.recv(&mut buf).is_ok() {}
        socket
            .set_read_timeout(Some(Duration::from_millis(60)))
            .unwrap();
        assert!(socket.recv(&mut buf).is_err(), "heartbeat after crash");
    }

    #[test]
    fn pause_skips_sequence_numbers() {
        let (socket, addr) = bound_socket();
        let sender = HeartbeatSender::spawn(3, Span::from_millis(5), addr).unwrap();
        let mut buf = [0u8; 64];
        let n = socket.recv(&mut buf).unwrap();
        let before = Heartbeat::decode(&buf[..n]).unwrap().seq;
        sender.pause();
        thread::sleep(Duration::from_millis(40));
        sender.resume();
        // The next received heartbeat must have skipped several numbers.
        let deadline = Instant::now() + Duration::from_secs(1);
        let after = loop {
            let n = socket.recv(&mut buf).unwrap();
            let hb = Heartbeat::decode(&buf[..n]).unwrap();
            if hb.seq > before {
                break hb.seq;
            }
            assert!(Instant::now() < deadline);
        };
        assert!(
            after >= before + 4,
            "expected a gap: before {before}, after {after}"
        );
    }

    /// Beat `i` must be sent at its absolute deadline `i·Δi`, not `Δi`
    /// after the previous send: the old relative sleep accumulated its
    /// overshoot into every later beat, so send times drifted ever
    /// further past `i·Δi`. Every observed beat must sit within one
    /// period of its nominal instant, however many beats preceded it.
    #[test]
    fn beats_track_absolute_deadlines_without_drift() {
        let (socket, addr) = bound_socket();
        let interval = Span::from_millis(40);
        let sender = HeartbeatSender::spawn(5, interval, addr).unwrap();
        let mut buf = [0u8; 64];
        for _ in 0..12 {
            let n = socket.recv(&mut buf).unwrap();
            let hb = Heartbeat::decode(&buf[..n]).unwrap();
            let deadline = interval.0 * hb.seq;
            assert!(
                hb.sent_at.0 >= deadline,
                "beat {} sent early: {} < {}",
                hb.seq,
                hb.sent_at.0,
                deadline
            );
            let overshoot = hb.sent_at.0 - deadline;
            assert!(
                overshoot < interval.0,
                "beat {} drifted {}ns past its {}ns deadline",
                hb.seq,
                overshoot,
                deadline
            );
        }
        drop(sender);
    }

    #[test]
    fn drop_joins_the_thread() {
        let (_socket, addr) = bound_socket();
        let sender = HeartbeatSender::spawn(4, Span::from_millis(5), addr).unwrap();
        drop(sender); // must not hang
    }
}
