//! The monitoring process `q`: a UDP receiver feeding failure detectors.
//!
//! A [`Monitor`] owns a socket and a receive thread. Each valid heartbeat
//! datagram is timestamped on arrival with the monitor's own clock and
//! fed to every registered [`FailureDetector`] (one per application in
//! the shared-service deployment) plus a [`NetworkEstimator`] for
//! `(pL, V(D))`. Clients query outputs at any time; an optional
//! crossbeam channel streams Trust/Suspect transitions. The channel is
//! *bounded*: if no one drains it, transitions beyond its capacity are
//! dropped (newest-first) and counted in
//! [`Monitor::events_dropped`] rather than growing memory without limit.

use crate::clock::{MonotonicClock, TimeSource};
use crate::wire::Heartbeat;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use twofd_core::{AnyDetector, DetectorConfig, FailureDetector, FdOutput, NetworkEstimator};
use twofd_obs::{Counter, Registry};
use twofd_sim::time::Nanos;

/// A Trust/Suspect transition event for one registered detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// Index of the detector (registration order).
    pub detector: usize,
    /// The new output.
    pub output: FdOutput,
    /// Monitor-clock time at which the event was observed.
    pub at: Nanos,
}

struct Inner {
    /// Inline, statically dispatched detectors — one per registered
    /// spec, in registration order.
    detectors: Vec<AnyDetector>,
    estimator: NetworkEstimator,
    last_outputs: Vec<FdOutput>,
}

/// Shared state between the monitor handle and its receive thread.
///
/// The counters are free-standing [`Counter`] cells: they cost one
/// relaxed atomic increment whether or not anyone scrapes them, and
/// [`Monitor::install_metrics`] can adopt them into a [`Registry`]
/// after the fact without touching the receive path.
struct Shared {
    inner: Mutex<Inner>,
    stop: AtomicBool,
    received: Counter,
    rejected: Counter,
    clock: Arc<dyn TimeSource>,
    events: Sender<TransitionEvent>,
    events_dropped: Counter,
}

/// Default capacity of the transition-event channel.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Handle to a running heartbeat monitor.
///
/// Dropping the handle stops the receive thread.
pub struct Monitor {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
    local_addr: SocketAddr,
    event_rx: Receiver<TransitionEvent>,
}

impl Monitor {
    /// Binds a fresh localhost socket and starts receiving, building one
    /// detector per spec-based recipe (at least one required). The event
    /// channel holds up to [`DEFAULT_EVENT_CAPACITY`] undrained
    /// transitions.
    pub fn spawn(detectors: Vec<DetectorConfig>) -> io::Result<Monitor> {
        Self::spawn_with_event_capacity(detectors, DEFAULT_EVENT_CAPACITY)
    }

    /// Like [`Monitor::spawn`] with an explicit event-channel capacity.
    /// Transitions that would overflow the channel are dropped and
    /// counted in [`Monitor::events_dropped`].
    pub fn spawn_with_event_capacity(
        detectors: Vec<DetectorConfig>,
        event_capacity: usize,
    ) -> io::Result<Monitor> {
        Self::spawn_with_clock(detectors, event_capacity, Arc::new(MonotonicClock::new()))
    }

    /// Like [`Monitor::spawn_with_event_capacity`] with an explicit
    /// [`TimeSource`] stamping arrivals and timing queries — the clock
    /// seam that lets a deterministic driver put the monitor on a
    /// virtual time axis. The default constructors pass a fresh
    /// [`MonotonicClock`] (its own origin, deliberately unsynchronized
    /// with any sender's, as in the paper).
    pub fn spawn_with_clock(
        detectors: Vec<DetectorConfig>,
        event_capacity: usize,
        clock: Arc<dyn TimeSource>,
    ) -> io::Result<Monitor> {
        assert!(!detectors.is_empty(), "monitor needs at least one detector");
        let detectors: Vec<AnyDetector> = detectors.iter().map(DetectorConfig::build).collect();
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local_addr = socket.local_addr()?;
        // Short read timeout so the thread notices stop requests.
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;

        let (tx, rx) = bounded(event_capacity.max(1));
        let n = detectors.len();
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                detectors,
                estimator: NetworkEstimator::new(1000),
                last_outputs: vec![FdOutput::Suspect; n],
            }),
            stop: AtomicBool::new(false),
            received: Counter::new(),
            rejected: Counter::new(),
            clock,
            events: tx,
            events_dropped: Counter::new(),
        });

        let thread_shared = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name("twofd-monitor".into())
            .spawn(move || {
                let mut buf = [0u8; 128];
                loop {
                    if thread_shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let len = match socket.recv(&mut buf) {
                        Ok(len) => len,
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            // Timeout tick: publish S-transitions that
                            // happened silently (no datagram involved).
                            thread_shared.tick();
                            continue;
                        }
                        Err(_) => return,
                    };
                    let arrival = thread_shared.clock.now();
                    match Heartbeat::decode(&buf[..len]) {
                        Ok(hb) => {
                            thread_shared.received.inc();
                            thread_shared.deliver(hb, arrival);
                        }
                        Err(_) => thread_shared.rejected.inc(),
                    }
                }
            })?;

        Ok(Monitor {
            shared,
            thread: Mutex::new(Some(thread)),
            local_addr,
            event_rx: rx,
        })
    }

    /// The socket address heartbeats should be sent to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Output of detector `idx` right now.
    pub fn output(&self, idx: usize) -> Option<FdOutput> {
        let now = self.shared.clock.now();
        let inner = self.shared.inner.lock();
        inner.detectors.get(idx).map(|d| d.output_at(now))
    }

    /// Outputs of all detectors right now.
    pub fn outputs(&self) -> Vec<FdOutput> {
        let now = self.shared.clock.now();
        let inner = self.shared.inner.lock();
        inner.detectors.iter().map(|d| d.output_at(now)).collect()
    }

    /// Detector names (e.g. `"2w-fd(1,1000)"`), in registration order.
    pub fn detector_names(&self) -> Vec<String> {
        let inner = self.shared.inner.lock();
        inner.detectors.iter().map(|d| d.name()).collect()
    }

    /// Current `(pL, V(D))` estimate from observed heartbeats.
    pub fn network_estimate(&self) -> twofd_core::NetworkBehavior {
        self.shared.inner.lock().estimator.behavior()
    }

    /// Valid heartbeats received so far.
    pub fn received(&self) -> u64 {
        self.shared.received.get()
    }

    /// Malformed datagrams dropped so far.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.get()
    }

    /// Exposes this monitor's counters in `registry` under
    /// `twofd_monitor_received_total`, `twofd_monitor_rejected_total`
    /// and `twofd_events_dropped_total`. The receive path is untouched:
    /// the registry adopts the very cells the thread already increments.
    ///
    /// # Panics
    /// If `registry` already holds conflicting families (e.g. from a
    /// second `install_metrics` call on the same registry).
    pub fn install_metrics(&self, registry: &Registry) {
        registry.adopt_counter(
            "twofd_monitor_received_total",
            "Valid heartbeats received",
            &self.shared.received,
        );
        registry.adopt_counter(
            "twofd_monitor_rejected_total",
            "Malformed datagrams dropped by the receive thread",
            &self.shared.rejected,
        );
        registry.adopt_counter(
            "twofd_events_dropped_total",
            "Transition events dropped because the event channel was full",
            &self.shared.events_dropped,
        );
    }

    /// The stream of Trust/Suspect transitions.
    pub fn events(&self) -> &Receiver<TransitionEvent> {
        &self.event_rx
    }

    /// Transitions dropped because the bounded event channel was full
    /// (i.e. nobody drained [`Monitor::events`] fast enough).
    pub fn events_dropped(&self) -> u64 {
        self.shared.events_dropped.get()
    }

    /// The monitor's clock (for interpreting event timestamps).
    pub fn now(&self) -> Nanos {
        self.shared.clock.now()
    }
}

impl Shared {
    fn deliver(&self, hb: Heartbeat, arrival: Nanos) {
        let mut inner = self.inner.lock();
        inner.estimator.observe(hb.seq, hb.sent_at, arrival);
        for d in inner.detectors.iter_mut() {
            d.on_heartbeat(hb.seq, arrival);
        }
        drop(inner);
        self.publish_transitions(arrival);
    }

    fn tick(&self) {
        self.publish_transitions(self.clock.now());
    }

    fn publish_transitions(&self, now: Nanos) {
        let mut inner = self.inner.lock();
        let Inner {
            detectors,
            last_outputs,
            ..
        } = &mut *inner;
        for (i, d) in detectors.iter().enumerate() {
            let out = d.output_at(now);
            if out != last_outputs[i] {
                last_outputs[i] = out;
                let event = TransitionEvent {
                    detector: i,
                    output: out,
                    at: now,
                };
                if let Err(TrySendError::Full(_)) = self.events.try_send(event) {
                    self.events_dropped.inc();
                }
            }
        }
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_core::DetectorSpec;
    use twofd_sim::time::Span;

    fn detectors(interval: Span) -> Vec<DetectorConfig> {
        vec![
            DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, interval, 0.04),
            DetectorConfig::new(DetectorSpec::Chen { window: 100 }, interval, 0.04),
        ]
    }

    #[test]
    fn monitor_starts_suspecting() {
        let m = Monitor::spawn(detectors(Span::from_millis(10))).unwrap();
        assert_eq!(m.outputs(), vec![FdOutput::Suspect, FdOutput::Suspect]);
        assert_eq!(m.detector_names(), vec!["2w-fd(1,100)", "chen(100)"]);
        assert_eq!(m.received(), 0);
    }

    #[test]
    fn heartbeats_establish_trust() {
        let m = Monitor::spawn(detectors(Span::from_millis(10))).unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let clock = MonotonicClock::new();
        for seq in 1..=10u64 {
            let hb = Heartbeat {
                stream: 1,
                seq,
                sent_at: clock.now(),
                incarnation: 0,
            };
            sock.send_to(&hb.encode(), m.local_addr()).unwrap();
            thread::sleep(Duration::from_millis(10));
        }
        // Give the receive thread a beat to process the last datagram.
        thread::sleep(Duration::from_millis(10));
        assert!(m.received() >= 9);
        assert_eq!(m.output(0), Some(FdOutput::Trust));
        assert_eq!(m.output(1), Some(FdOutput::Trust));
    }

    #[test]
    fn silence_turns_trust_into_suspicion_and_emits_events() {
        let m = Monitor::spawn(detectors(Span::from_millis(10))).unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let clock = MonotonicClock::new();
        for seq in 1..=10u64 {
            let hb = Heartbeat {
                stream: 1,
                seq,
                sent_at: clock.now(),
                incarnation: 0,
            };
            sock.send_to(&hb.encode(), m.local_addr()).unwrap();
            thread::sleep(Duration::from_millis(10));
        }
        // Stop sending: both detectors must S-transition.
        thread::sleep(Duration::from_millis(300));
        assert_eq!(m.output(0), Some(FdOutput::Suspect));
        // The event stream saw, for each detector, at least one T and
        // one (final) S transition.
        let events: Vec<_> = m.events().try_iter().collect();
        for det in 0..2 {
            assert!(events
                .iter()
                .any(|e| e.detector == det && e.output == FdOutput::Trust));
            assert!(events
                .iter()
                .any(|e| e.detector == det && e.output == FdOutput::Suspect));
        }
    }

    #[test]
    fn install_metrics_adopts_the_live_counters() {
        let m = Monitor::spawn(detectors(Span::from_millis(10))).unwrap();
        let registry = Registry::new();
        m.install_metrics(&registry);
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.send_to(b"garbage", m.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.rejected() == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let text = registry.render();
        assert!(text.contains("twofd_monitor_rejected_total 1"), "{text}");
        assert!(text.contains("twofd_monitor_received_total 0"), "{text}");
    }

    #[test]
    fn malformed_datagrams_are_counted_not_fatal() {
        let m = Monitor::spawn(detectors(Span::from_millis(10))).unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.send_to(b"garbage", m.local_addr()).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(m.rejected(), 1);
        assert_eq!(m.received(), 0);
    }

    #[test]
    fn network_estimator_sees_the_stream() {
        let m = Monitor::spawn(detectors(Span::from_millis(5))).unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let clock = MonotonicClock::new();
        // Send 1..=20 but skip half: pL ≈ 0.5.
        for seq in 1..=20u64 {
            if seq % 2 == 0 {
                continue;
            }
            let hb = Heartbeat {
                stream: 1,
                seq,
                sent_at: clock.now(),
                incarnation: 0,
            };
            sock.send_to(&hb.encode(), m.local_addr()).unwrap();
            thread::sleep(Duration::from_millis(5));
        }
        thread::sleep(Duration::from_millis(50));
        let est = m.network_estimate();
        assert!(est.loss_prob > 0.3, "pL estimate {}", est.loss_prob);
    }

    #[test]
    #[should_panic(expected = "at least one detector")]
    fn rejects_empty_detector_list() {
        let _ = Monitor::spawn(vec![]);
    }

    #[test]
    fn undrained_event_channel_drops_and_counts() {
        // Capacity 1 and two detectors: the simultaneous T-transitions on
        // the first heartbeats overflow the channel, which must drop the
        // excess and count it rather than block or grow.
        let m = Monitor::spawn_with_event_capacity(detectors(Span::from_millis(10)), 1).unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let clock = MonotonicClock::new();
        for seq in 1..=10u64 {
            let hb = Heartbeat {
                stream: 1,
                seq,
                sent_at: clock.now(),
                incarnation: 0,
            };
            sock.send_to(&hb.encode(), m.local_addr()).unwrap();
            thread::sleep(Duration::from_millis(10));
        }
        thread::sleep(Duration::from_millis(20));
        assert_eq!(m.outputs(), vec![FdOutput::Trust, FdOutput::Trust]);
        assert_eq!(m.events().len(), 1, "channel holds exactly its capacity");
        assert!(
            m.events_dropped() >= 1,
            "overflowing transition must be counted, got {}",
            m.events_dropped()
        );
    }
}
