//! # twofd-net — live UDP heartbeat transport
//!
//! The paper's experiments exchange heartbeats over UDP/IP; this crate
//! provides that substrate for the live examples and end-to-end tests:
//!
//! * [`wire`] — the versioned heartbeat datagram format (40 bytes in
//!   v2, carrying the sender's incarnation; 32-byte v1 frames still
//!   decode).
//! * [`clock`] — monotonic per-process clocks (deliberately
//!   unsynchronized between sender and monitor, as in the paper).
//! * [`sender`] — the monitored process `p`: a periodic emitter thread
//!   with crash and pause (partition) injection.
//! * [`monitor`] — the monitoring process `q`: a receiver thread feeding
//!   any set of [`twofd_core::FailureDetector`]s and an online
//!   `(pL, V(D))` estimator, with a transition event stream.
//! * [`shard`] — the sharded monitor runtime: per-stream detectors
//!   partitioned across bounded-queue shard workers with proactive
//!   freshness sweeping and drop-oldest backpressure.
//! * [`intake`] — batch UDP receive: `recvmmsg(2)` on Linux (raw FFI,
//!   no extra crates), portable single-`recv` fallback elsewhere.
//! * [`transport`] — the send/recv seam: UDP (batched or per-datagram)
//!   and an in-memory pair for deterministic, socket-free runs.
//! * [`fleet`] — one socket monitoring many senders, demultiplexed by
//!   the wire format's stream id into the sharded runtime.
//!
//! The runtime is instrumented with [`twofd_obs`]: its accounting
//! counters are registry cells exported over `/metrics`
//! ([`fleet::FleetMonitor::serve_metrics`]), and
//! [`shard::ObsOptions`] opts streams into inter-arrival histograms
//! and online QoS tracking against contracted bounds.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the [`intake`] module opts back in for
// the `recvmmsg(2)` FFI; every other module stays unsafe-free.
#![deny(unsafe_code)]

pub mod clock;
pub mod fleet;
pub mod intake;
pub mod monitor;
pub mod sender;
pub mod shard;
pub mod transport;
pub mod wire;

pub use clock::{ManualClock, MonotonicClock, SkewedClock, TimeSource};
pub use fleet::{FleetMonitor, IntakeMode};
pub use intake::BatchReceiver;
pub use monitor::{Monitor, TransitionEvent};
pub use sender::HeartbeatSender;
pub use shard::{
    DetectorPlan, FleetEvent, Job, ObsOptions, RuntimeStats, ShardConfig, ShardRuntime, ShardStats,
};
pub use transport::{
    sim_channel, SenderTransport, SimSender, SimTransport, Transport, UdpDatagramTransport,
    UdpSenderTransport, UdpTransport,
};
pub use wire::{Heartbeat, WireError, WIRE_SIZE, WIRE_SIZE_V1};
