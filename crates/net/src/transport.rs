//! The transport seam: a trait over the datagram send/recv surface.
//!
//! The fleet ingest loop and the heartbeat sender used to talk to
//! `UdpSocket` directly, which welded the whole live stack to real
//! sockets (and therefore to real time). This module lifts the two
//! surfaces they actually use into traits:
//!
//! * [`Transport`] — the receive side: batch-oriented, mirroring
//!   [`crate::intake::BatchReceiver`]'s borrow-the-arena shape so the
//!   UDP fast path stays allocation-free.
//! * [`SenderTransport`] — the send side: one encoded datagram out.
//!
//! Three receive implementations exist: [`UdpTransport`] (batched
//! `recvmmsg`, the production default), [`UdpDatagramTransport`] (one
//! `recv(2)` per datagram, kept for differential tests), and
//! [`SimTransport`] (an in-memory inbox fed by [`SimSender`] handles —
//! no socket, no kernel, so a deterministic driver can carry heartbeats
//! between simulated nodes in virtual time).
//!
//! ## The idle contract
//!
//! `recv_batch` must *block bounded* and surface idleness as
//! [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`]: the
//! ingest loop re-checks its stop flag on every such error, which is
//! how a [`crate::fleet::FleetMonitor`] drop terminates the thread.
//! Any other error is fatal to the loop.

use crate::intake::{BatchReceiver, BATCH};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::io;
use std::net::UdpSocket;
use std::time::Duration;

/// Receive half of the heartbeat transport. See the module docs for the
/// idle contract `recv_batch` must honor.
pub trait Transport: Send {
    /// Pulls the next batch of datagrams into the transport's internal
    /// buffers, replacing the previous batch. Returns how many arrived
    /// (possibly zero); idle periods surface as `WouldBlock`/`TimedOut`.
    fn recv_batch(&mut self) -> io::Result<usize>;

    /// Borrows datagram `i` of the current batch (`i` < the last
    /// `recv_batch` return value).
    fn datagram(&self, i: usize) -> &[u8];
}

/// Send half of the heartbeat transport: one encoded datagram out.
/// Errors are advisory — the sender treats them as network loss, which
/// is exactly the failure detectors' job to survive.
pub trait SenderTransport: Send {
    /// Emits one encoded heartbeat datagram.
    fn send(&mut self, datagram: &[u8]) -> io::Result<()>;
}

/// The production receive path: batched UDP intake via
/// [`BatchReceiver`] (`recvmmsg(2)` on Linux, single-`recv` fallback
/// elsewhere). Honors the socket's read timeout.
pub struct UdpTransport {
    socket: UdpSocket,
    receiver: BatchReceiver,
}

impl UdpTransport {
    /// Wraps a bound (and read-timeout-configured) socket.
    pub fn new(socket: UdpSocket) -> Self {
        UdpTransport {
            socket,
            receiver: BatchReceiver::new(),
        }
    }
}

impl Transport for UdpTransport {
    fn recv_batch(&mut self) -> io::Result<usize> {
        self.receiver.recv_batch(&self.socket)
    }

    fn datagram(&self, i: usize) -> &[u8] {
        self.receiver.datagram(i)
    }
}

/// The original one-`recv(2)`-per-datagram path, kept behind
/// [`crate::fleet::IntakeMode::PerDatagram`] for differential tests and
/// before/after benchmarks.
pub struct UdpDatagramTransport {
    socket: UdpSocket,
    buf: [u8; 128],
    len: usize,
}

impl UdpDatagramTransport {
    /// Wraps a bound (and read-timeout-configured) socket.
    pub fn new(socket: UdpSocket) -> Self {
        UdpDatagramTransport {
            socket,
            buf: [0u8; 128],
            len: 0,
        }
    }
}

impl Transport for UdpDatagramTransport {
    fn recv_batch(&mut self) -> io::Result<usize> {
        self.len = self.socket.recv(&mut self.buf)?;
        Ok(1)
    }

    fn datagram(&self, i: usize) -> &[u8] {
        assert_eq!(i, 0, "per-datagram transport holds one datagram");
        &self.buf[..self.len]
    }
}

/// Send half over a connected UDP socket — what
/// [`crate::sender::HeartbeatSender::spawn`] uses.
pub struct UdpSenderTransport {
    socket: UdpSocket,
}

impl UdpSenderTransport {
    /// Wraps a socket already `connect`ed to the monitor.
    pub fn new(socket: UdpSocket) -> Self {
        UdpSenderTransport { socket }
    }
}

impl SenderTransport for UdpSenderTransport {
    fn send(&mut self, datagram: &[u8]) -> io::Result<()> {
        self.socket.send(datagram)?;
        Ok(())
    }
}

/// How long [`SimTransport::recv_batch`] waits for a first datagram
/// before reporting `TimedOut` — the same stop-flag re-check cadence
/// the UDP sockets use via their read timeout.
const SIM_RECV_TIMEOUT: Duration = Duration::from_millis(20);

/// In-memory receive half: an inbox of encoded datagrams delivered by
/// [`SimSender`] handles. [`sim_channel`] builds the pair.
pub struct SimTransport {
    rx: Receiver<Vec<u8>>,
    batch: Vec<Vec<u8>>,
}

/// In-memory send half, cloneable so many simulated senders can share
/// one monitor inbox. A full inbox drops the datagram — the in-memory
/// analogue of a full kernel receive buffer.
#[derive(Clone)]
pub struct SimSender {
    tx: Sender<Vec<u8>>,
}

/// Creates a connected in-memory transport pair with the given inbox
/// capacity (datagrams beyond it are dropped, like a full UDP receive
/// buffer).
pub fn sim_channel(capacity: usize) -> (SimSender, SimTransport) {
    let (tx, rx) = bounded(capacity.max(1));
    (
        SimSender { tx },
        SimTransport {
            rx,
            batch: Vec::with_capacity(BATCH),
        },
    )
}

impl SenderTransport for SimSender {
    fn send(&mut self, datagram: &[u8]) -> io::Result<()> {
        match self.tx.try_send(datagram.to_vec()) {
            Ok(()) => Ok(()),
            // Overflow = loss, disconnect = monitor gone; both are
            // "the network ate it" from the sender's point of view.
            Err(TrySendError::Full(_)) => Ok(()),
            Err(TrySendError::Disconnected(_)) => {
                Err(io::Error::new(io::ErrorKind::NotConnected, "inbox closed"))
            }
        }
    }
}

impl Transport for SimTransport {
    fn recv_batch(&mut self) -> io::Result<usize> {
        self.batch.clear();
        match self.rx.recv_timeout(SIM_RECV_TIMEOUT) {
            Ok(first) => self.batch.push(first),
            Err(RecvTimeoutError::Timeout) => {
                return Err(io::ErrorKind::TimedOut.into());
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "all senders dropped",
                ));
            }
        }
        // Opportunistically drain whatever else is already queued, up
        // to one intake batch — same shape as `recvmmsg` returning the
        // socket buffer's backlog in one crossing.
        while self.batch.len() < BATCH {
            match self.rx.try_recv() {
                Ok(d) => self.batch.push(d),
                Err(_) => break,
            }
        }
        Ok(self.batch.len())
    }

    fn datagram(&self, i: usize) -> &[u8] {
        &self.batch[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_pair_carries_datagrams_in_order() {
        let (mut tx, mut rx) = sim_channel(16);
        tx.send(b"one").unwrap();
        tx.send(b"two").unwrap();
        let n = rx.recv_batch().unwrap();
        assert_eq!(n, 2);
        assert_eq!(rx.datagram(0), b"one");
        assert_eq!(rx.datagram(1), b"two");
    }

    #[test]
    fn sim_recv_times_out_when_idle() {
        let (_tx, mut rx) = sim_channel(4);
        let err = rx.recv_batch().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn sim_overflow_drops_like_a_full_socket_buffer() {
        let (mut tx, mut rx) = sim_channel(2);
        for _ in 0..5 {
            tx.send(b"hb").unwrap(); // overflow is loss, not an error
        }
        assert_eq!(rx.recv_batch().unwrap(), 2);
    }

    #[test]
    fn sim_recv_reports_disconnect_when_senders_drop() {
        let (tx, mut rx) = sim_channel(4);
        drop(tx);
        let err = rx.recv_batch().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
    }

    #[test]
    fn udp_transports_shuttle_real_datagrams() {
        let recv_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        recv_socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let target = recv_socket.local_addr().unwrap();
        let send_socket = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        send_socket.connect(target).unwrap();
        let mut tx = UdpSenderTransport::new(send_socket);
        tx.send(b"payload").unwrap();
        let mut rx = UdpTransport::new(recv_socket);
        let n = rx.recv_batch().unwrap();
        assert_eq!(n, 1);
        assert_eq!(rx.datagram(0), b"payload");
    }
}
