//! Monitoring a fleet of senders on one socket.
//!
//! The wire format carries a stream id precisely so that one monitoring
//! endpoint can watch many monitored processes — the deployment shape of
//! a failure-detection *service*. [`FleetMonitor`] demultiplexes
//! incoming heartbeats by stream id into a
//! [`twofd_core::ProcessSet`], building a detector per stream on first
//! contact via a user-supplied factory.

use crate::clock::MonotonicClock;
use crate::wire::Heartbeat;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use twofd_core::{FailureDetector, FdOutput, ProcessSet, ProcessStatus};

/// Builds the detector for a newly seen stream.
pub type DetectorFactory = Box<dyn FnMut(&u64) -> Box<dyn FailureDetector + Send> + Send>;

struct Shared {
    set: Mutex<ProcessSet<u64, DetectorFactory>>,
    stop: AtomicBool,
    received: AtomicU64,
    rejected: AtomicU64,
    clock: MonotonicClock,
}

/// Handle to a running fleet monitor. Dropping it stops the thread.
pub struct FleetMonitor {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
    local_addr: SocketAddr,
}

impl FleetMonitor {
    /// Binds a localhost socket and starts demultiplexing heartbeats.
    pub fn spawn(factory: DetectorFactory) -> io::Result<FleetMonitor> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local_addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;

        let shared = Arc::new(Shared {
            set: Mutex::new(ProcessSet::new(factory)),
            stop: AtomicBool::new(false),
            received: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            clock: MonotonicClock::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name("twofd-fleet-monitor".into())
            .spawn(move || {
                let mut buf = [0u8; 128];
                loop {
                    if thread_shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let len = match socket.recv(&mut buf) {
                        Ok(len) => len,
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => return,
                    };
                    let arrival = thread_shared.clock.now();
                    match Heartbeat::decode(&buf[..len]) {
                        Ok(hb) => {
                            thread_shared.received.fetch_add(1, Ordering::Relaxed);
                            thread_shared
                                .set
                                .lock()
                                .on_heartbeat(hb.stream, hb.seq, arrival);
                        }
                        Err(_) => {
                            thread_shared.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })?;

        Ok(FleetMonitor {
            shared,
            thread: Mutex::new(Some(thread)),
            local_addr,
        })
    }

    /// The socket address senders should target.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Pre-registers a stream so it is reported (as suspect) before its
    /// first heartbeat.
    pub fn register(&self, stream: u64) {
        self.shared.set.lock().register(stream);
    }

    /// Current output for one stream (`None` if never seen/registered).
    pub fn output(&self, stream: u64) -> Option<FdOutput> {
        let now = self.shared.clock.now();
        self.shared.set.lock().output(&stream, now)
    }

    /// Status snapshot of every monitored stream.
    pub fn statuses(&self) -> Vec<ProcessStatus<u64>> {
        let now = self.shared.clock.now();
        self.shared.set.lock().statuses(now)
    }

    /// Streams currently suspected.
    pub fn suspected(&self) -> Vec<u64> {
        let now = self.shared.clock.now();
        self.shared.set.lock().suspected(now)
    }

    /// Valid heartbeats received so far.
    pub fn received(&self) -> u64 {
        self.shared.received.load(Ordering::Relaxed)
    }

    /// Malformed datagrams dropped so far.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Number of streams currently monitored.
    pub fn len(&self) -> usize {
        self.shared.set.lock().len()
    }

    /// True when no stream is monitored.
    pub fn is_empty(&self) -> bool {
        self.shared.set.lock().is_empty()
    }
}

impl Drop for FleetMonitor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::HeartbeatSender;
    use std::time::Instant;
    use twofd_core::TwoWindowFd;
    use twofd_sim::time::Span;

    fn fleet(interval: Span, margin: Span) -> FleetMonitor {
        FleetMonitor::spawn(Box::new(move |_stream| {
            Box::new(TwoWindowFd::new(1, 100, interval, margin))
        }))
        .expect("bind fleet monitor")
    }

    fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn demultiplexes_streams() {
        let interval = Span::from_millis(10);
        let monitor = fleet(interval, Span::from_millis(50));
        let s1 = HeartbeatSender::spawn(1, interval, monitor.local_addr()).unwrap();
        let s2 = HeartbeatSender::spawn(2, interval, monitor.local_addr()).unwrap();
        assert!(wait_for(
            || monitor.len() == 2
                && monitor.output(1) == Some(FdOutput::Trust)
                && monitor.output(2) == Some(FdOutput::Trust),
            Duration::from_secs(3)
        ));
        drop((s1, s2));
    }

    #[test]
    fn crash_of_one_stream_does_not_affect_another() {
        let interval = Span::from_millis(10);
        let monitor = fleet(interval, Span::from_millis(50));
        let alive = HeartbeatSender::spawn(10, interval, monitor.local_addr()).unwrap();
        let doomed = HeartbeatSender::spawn(20, interval, monitor.local_addr()).unwrap();
        assert!(wait_for(
            || monitor.suspected().is_empty() && monitor.len() == 2,
            Duration::from_secs(3)
        ));
        doomed.crash();
        assert!(wait_for(
            || monitor.suspected() == vec![20],
            Duration::from_secs(3)
        ));
        assert_eq!(monitor.output(10), Some(FdOutput::Trust));
        drop(alive);
    }

    #[test]
    fn registered_streams_start_suspect() {
        let monitor = fleet(Span::from_millis(10), Span::from_millis(50));
        monitor.register(99);
        assert_eq!(monitor.output(99), Some(FdOutput::Suspect));
        assert_eq!(monitor.output(100), None);
        let statuses = monitor.statuses();
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].key, 99);
    }

    #[test]
    fn garbage_does_not_create_streams() {
        let monitor = fleet(Span::from_millis(10), Span::from_millis(50));
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.send_to(b"not a heartbeat", monitor.local_addr()).unwrap();
        assert!(wait_for(|| monitor.rejected() == 1, Duration::from_secs(2)));
        assert!(monitor.is_empty());
    }
}
