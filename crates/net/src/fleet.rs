//! Monitoring a fleet of senders on one socket.
//!
//! The wire format carries a stream id precisely so that one monitoring
//! endpoint can watch many monitored processes — the deployment shape of
//! a failure-detection *service*. [`FleetMonitor`] binds the UDP socket,
//! decodes and timestamps each datagram on an ingestion thread, and
//! routes it into a [`ShardRuntime`]: per-stream detectors partitioned
//! across shard workers behind bounded queues, each shard proactively
//! sweeping its expiry heap (see [`crate::shard`] for the architecture).
//!
//! Compared to the original single-`Mutex<ProcessSet>` design, queries
//! only contend with the one shard that owns the queried stream,
//! ingestion never blocks (overload drops-oldest and counts), and
//! Trust→Suspect transitions are *pushed* on the [`FleetMonitor::events`]
//! channel at their exact expiry instants instead of being discovered by
//! polling.

use crate::clock::{MonotonicClock, TimeSource};
use crate::intake::BATCH;
use crate::shard::{FleetEvent, Job, RuntimeStats, ShardConfig, ShardRuntime};
use crate::transport::{Transport, UdpDatagramTransport, UdpTransport};
use crate::wire::Heartbeat;
use crossbeam::channel::Receiver;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use twofd_core::{DetectorConfig, FdOutput, ProcessStatus, QosMetrics};
use twofd_obs::{Counter, MetricsServer, QosVerdict, Registry};

pub use crate::shard::DetectorPlan;

/// How the ingestion thread pulls datagrams off the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntakeMode {
    /// Batch receive ([`crate::intake::BatchReceiver`]): one kernel
    /// crossing and one clock read per batch of up to
    /// [`crate::intake::BATCH`] datagrams, handed to the runtime via
    /// [`ShardRuntime::ingest_batch`]. The default.
    #[default]
    Batched,
    /// One `recv(2)`, one clock read, one [`ShardRuntime::ingest`] per
    /// datagram — the original path, kept for differential tests and
    /// before/after benchmarks.
    PerDatagram,
}

/// Handle to a running fleet monitor. Dropping it stops the ingestion
/// thread and all shard workers.
pub struct FleetMonitor {
    runtime: Arc<ShardRuntime>,
    stop: Arc<AtomicBool>,
    rejected: Counter,
    thread: Mutex<Option<JoinHandle<()>>>,
    local_addr: SocketAddr,
}

impl FleetMonitor {
    /// Binds a localhost socket and starts demultiplexing heartbeats
    /// with the default [`ShardConfig`]: every stream gets `detector`
    /// (a `DetectorSpec` recipe — the paper's `2w-fd(1,1000)` if you
    /// pass `DetectorConfig::default()`).
    pub fn spawn(detector: DetectorConfig) -> io::Result<FleetMonitor> {
        Self::spawn_with(ShardConfig {
            detector: detector.into(),
            ..ShardConfig::default()
        })
    }

    /// Binds a localhost socket and starts demultiplexing heartbeats
    /// into a sharded runtime tuned by `config` (including its
    /// [`DetectorPlan`]), using the default batched intake.
    pub fn spawn_with(config: ShardConfig) -> io::Result<FleetMonitor> {
        Self::spawn_with_intake(config, IntakeMode::default())
    }

    /// Like [`FleetMonitor::spawn_with`] with an explicit [`IntakeMode`].
    pub fn spawn_with_intake(config: ShardConfig, mode: IntakeMode) -> io::Result<FleetMonitor> {
        Self::spawn_with_clock(config, mode, Arc::new(MonotonicClock::new()))
    }

    /// Like [`FleetMonitor::spawn_with_intake`] with an explicit
    /// [`TimeSource`] stamping arrivals and driving the sweepers. The
    /// default constructors pass a fresh [`MonotonicClock`]; a
    /// [`crate::clock::ManualClock`] here puts the whole UDP monitor on
    /// a virtual time axis.
    pub fn spawn_with_clock(
        config: ShardConfig,
        mode: IntakeMode,
        clock: Arc<dyn TimeSource>,
    ) -> io::Result<FleetMonitor> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local_addr = socket.local_addr()?;
        // Short read timeout so the thread notices stop requests.
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        if mode == IntakeMode::Batched {
            // The other half of batch intake: a deep kernel buffer rides
            // out bursts between intake-thread time slices, so the next
            // recvmmsg finds a full batch instead of a tail of drops.
            // Best-effort — the kernel caps it at net.core.rmem_max.
            let _ = crate::intake::set_recv_buffer(&socket, 4 << 20);
        }
        match mode {
            IntakeMode::Batched => {
                Self::spawn_with_transport_at(config, UdpTransport::new(socket), clock, local_addr)
            }
            IntakeMode::PerDatagram => Self::spawn_with_transport_at(
                config,
                UdpDatagramTransport::new(socket),
                clock,
                local_addr,
            ),
        }
    }

    /// Spawns the monitor over an arbitrary [`Transport`] — the seam the
    /// deterministic tests thread an in-memory
    /// [`crate::transport::SimTransport`] through. The returned
    /// handle's [`FleetMonitor::local_addr`] is the unspecified
    /// `127.0.0.1:0`, since a non-socket transport has no address.
    pub fn spawn_with_transport<T: Transport + 'static>(
        config: ShardConfig,
        transport: T,
        clock: Arc<dyn TimeSource>,
    ) -> io::Result<FleetMonitor> {
        Self::spawn_with_transport_at(config, transport, clock, ([127, 0, 0, 1], 0).into())
    }

    fn spawn_with_transport_at<T: Transport + 'static>(
        config: ShardConfig,
        transport: T,
        clock: Arc<dyn TimeSource>,
        local_addr: SocketAddr,
    ) -> io::Result<FleetMonitor> {
        let runtime = Arc::new(ShardRuntime::new(config, Arc::clone(&clock)));
        let rejected = runtime.registry().counter(
            "twofd_monitor_rejected_total",
            "Malformed datagrams dropped by the ingestion thread",
        );
        let intake_batches = runtime.registry().counter(
            "twofd_intake_batches_total",
            "Transport receive calls that returned at least one datagram",
        );
        let intake_datagrams = runtime.registry().counter(
            "twofd_intake_datagrams_total",
            "Datagrams pulled off the transport (valid or not)",
        );
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let runtime = Arc::clone(&runtime);
            let stop = Arc::clone(&stop);
            let rejected = rejected.clone();
            thread::Builder::new()
                .name("twofd-fleet-ingest".into())
                .spawn(move || {
                    ingest_loop(
                        transport,
                        runtime,
                        clock,
                        stop,
                        rejected,
                        intake_batches,
                        intake_datagrams,
                    )
                })?
        };

        Ok(FleetMonitor {
            runtime,
            stop,
            rejected,
            thread: Mutex::new(Some(thread)),
            local_addr,
        })
    }

    /// The socket address senders should target.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Pre-registers a stream so it is reported (as suspect) before its
    /// first heartbeat. Streams are interned to dense per-shard slots;
    /// re-registering a known stream is a no-op.
    pub fn register(&self, stream: u64) {
        self.runtime.register(stream);
    }

    /// Removes a stream from monitoring; returns whether it existed.
    /// Later heartbeats (or a re-`register`) start a fresh incarnation
    /// with no memory — and no queued expiries — of the old one.
    pub fn deregister(&self, stream: u64) -> bool {
        self.runtime.deregister(stream)
    }

    /// Current output for one stream (`None` if never seen/registered).
    pub fn output(&self, stream: u64) -> Option<FdOutput> {
        self.runtime.output(stream)
    }

    /// Status snapshot of every monitored stream.
    pub fn statuses(&self) -> Vec<ProcessStatus<u64>> {
        self.runtime.statuses()
    }

    /// Streams currently suspected.
    pub fn suspected(&self) -> Vec<u64> {
        self.runtime.suspected()
    }

    /// Valid heartbeats received so far (including any later dropped by
    /// shard backpressure; see [`FleetMonitor::stats`]).
    pub fn received(&self) -> u64 {
        self.runtime.stats().received()
    }

    /// Malformed datagrams dropped so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// The registry holding every metric of this monitor (the runtime's
    /// per-shard counters plus `twofd_monitor_rejected_total`).
    pub fn registry(&self) -> &Registry {
        self.runtime.registry()
    }

    /// Starts a metrics endpoint on an ephemeral localhost port serving
    /// `GET /metrics` (this monitor's registry) and `GET /healthz`
    /// (healthy while the ingestion thread is running). The server stops
    /// when the returned handle is dropped.
    pub fn serve_metrics(&self) -> io::Result<MetricsServer> {
        self.serve_metrics_on(("127.0.0.1", 0))
    }

    /// Like [`FleetMonitor::serve_metrics`] on an explicit address.
    pub fn serve_metrics_on(&self, addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        let stop = Arc::clone(&self.stop);
        MetricsServer::spawn_with_health(
            addr,
            self.registry().clone(),
            Arc::new(move || !stop.load(Ordering::Acquire)),
        )
    }

    /// Online QoS estimates for one stream, if QoS tracking is enabled
    /// in the [`ShardConfig`]'s [`crate::shard::ObsOptions`].
    pub fn qos_metrics(&self, stream: u64) -> Option<QosMetrics> {
        self.runtime.qos_metrics(stream)
    }

    /// Live verdict of one stream against its configured QoS bound, if
    /// QoS tracking is enabled.
    pub fn qos_verdict(&self, stream: u64) -> Option<QosVerdict> {
        self.runtime.qos_verdict(stream)
    }

    /// Number of streams currently monitored.
    pub fn len(&self) -> usize {
        self.runtime.len()
    }

    /// True when no stream is monitored.
    pub fn is_empty(&self) -> bool {
        self.runtime.is_empty()
    }

    /// The stream of Trust/Suspect transitions, stamped with exact
    /// transition times (sweeper-published, no query required).
    pub fn events(&self) -> &Receiver<FleetEvent> {
        self.runtime.events()
    }

    /// Observability snapshot: per-shard received/dropped/stale counts,
    /// queue depths, live/suspect tallies and transition totals.
    pub fn stats(&self) -> RuntimeStats {
        self.runtime.stats()
    }

    /// Transition events dropped because the event channel was full.
    pub fn events_dropped(&self) -> u64 {
        self.runtime.events_dropped()
    }
}

impl Drop for FleetMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The one ingest loop, generic over the [`Transport`] seam: one
/// `recv_batch`, one clock read, and one [`ShardRuntime::ingest_batch`]
/// per batch. Decoding borrows the transport's buffers, so the UDP path
/// is allocation-free after the initial `jobs` reservation. The old
/// per-datagram loop is this loop over a batch of one — feeding the
/// same datagrams through either produces the identical transition
/// timeline (batching is invisible to detector semantics; see
/// [`ShardRuntime::ingest_batch`]).
fn ingest_loop<T: Transport>(
    mut transport: T,
    runtime: Arc<ShardRuntime>,
    clock: Arc<dyn TimeSource>,
    stop: Arc<AtomicBool>,
    rejected: Counter,
    intake_batches: Counter,
    intake_datagrams: Counter,
) {
    let mut jobs: Vec<Job> = Vec::with_capacity(BATCH);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let n = match transport.recv_batch() {
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        if n == 0 {
            continue;
        }
        // One arrival timestamp for the whole batch: every datagram in
        // it was already queued in the transport's buffer at this
        // instant, so a shared "now" is at least as accurate as serially
        // reading the clock while the rest of the batch waits.
        let arrival = clock.now();
        jobs.clear();
        for i in 0..n {
            match Heartbeat::decode(transport.datagram(i)) {
                Ok(hb) => jobs.push((hb.stream, hb.seq, arrival, hb.incarnation)),
                Err(_) => rejected.inc(),
            }
        }
        intake_batches.inc();
        intake_datagrams.add(n as u64);
        runtime.ingest_batch(&jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::HeartbeatSender;
    use std::time::Instant;
    use twofd_core::{DetectorBuilder, DetectorSpec, FailureDetector};
    use twofd_sim::time::Span;

    fn config(interval: Span, margin: Span) -> DetectorConfig {
        DetectorConfig::new(
            DetectorSpec::TwoWindow { n1: 1, n2: 100 },
            interval,
            margin.as_secs_f64(),
        )
    }

    fn fleet(interval: Span, margin: Span) -> FleetMonitor {
        FleetMonitor::spawn(config(interval, margin)).expect("bind fleet monitor")
    }

    /// Regression test: the default plan must be the paper's
    /// `2w-fd(1,1000)` configuration, not an ad-hoc window pair. (An
    /// earlier revision hardcoded `(1, 100)` here, silently diverging
    /// from the paper's evaluation setup.)
    #[test]
    fn default_shard_config_uses_papers_two_window() {
        let config = ShardConfig::default();
        assert_eq!(config.detector.build(&7).name(), "2w-fd(1,1000)");
        assert_eq!(
            config.detector.config_for(&7).spec,
            DetectorSpec::TwoWindow { n1: 1, n2: 1000 }
        );
        // ...and it is overridable via config.
        let custom = ShardConfig {
            detector: DetectorConfig::new(
                DetectorSpec::Chen { window: 500 },
                Span::from_millis(10),
                0.05,
            )
            .into(),
            ..ShardConfig::default()
        };
        assert_eq!(custom.detector.build(&7).name(), "chen(500)");
    }

    fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn demultiplexes_streams() {
        let interval = Span::from_millis(10);
        let monitor = fleet(interval, Span::from_millis(50));
        let s1 = HeartbeatSender::spawn(1, interval, monitor.local_addr()).unwrap();
        let s2 = HeartbeatSender::spawn(2, interval, monitor.local_addr()).unwrap();
        assert!(wait_for(
            || monitor.len() == 2
                && monitor.output(1) == Some(FdOutput::Trust)
                && monitor.output(2) == Some(FdOutput::Trust),
            Duration::from_secs(3)
        ));
        drop((s1, s2));
    }

    #[test]
    fn crash_of_one_stream_does_not_affect_another() {
        let interval = Span::from_millis(10);
        let monitor = fleet(interval, Span::from_millis(50));
        let alive = HeartbeatSender::spawn(10, interval, monitor.local_addr()).unwrap();
        let doomed = HeartbeatSender::spawn(20, interval, monitor.local_addr()).unwrap();
        assert!(wait_for(
            || monitor.suspected().is_empty() && monitor.len() == 2,
            Duration::from_secs(3)
        ));
        doomed.crash();
        assert!(wait_for(
            || monitor.suspected() == vec![20],
            Duration::from_secs(3)
        ));
        assert_eq!(monitor.output(10), Some(FdOutput::Trust));
        drop(alive);
    }

    #[test]
    fn registered_streams_start_suspect() {
        let monitor = fleet(Span::from_millis(10), Span::from_millis(50));
        monitor.register(99);
        assert_eq!(monitor.output(99), Some(FdOutput::Suspect));
        assert_eq!(monitor.output(100), None);
        let statuses = monitor.statuses();
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].key, 99);
        // Deregistering forgets the stream entirely; re-registering
        // starts a clean incarnation (and slots/gauges reconcile).
        assert!(monitor.deregister(99));
        assert!(!monitor.deregister(99));
        assert_eq!(monitor.output(99), None);
        assert!(monitor.statuses().is_empty());
        monitor.register(99);
        assert_eq!(monitor.output(99), Some(FdOutput::Suspect));
    }

    #[test]
    fn garbage_does_not_create_streams() {
        let monitor = fleet(Span::from_millis(10), Span::from_millis(50));
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.send_to(b"not a heartbeat", monitor.local_addr())
            .unwrap();
        assert!(wait_for(|| monitor.rejected() == 1, Duration::from_secs(2)));
        assert!(monitor.is_empty());
    }

    #[test]
    fn stats_cover_the_fleet() {
        let interval = Span::from_millis(10);
        let monitor = fleet(interval, Span::from_millis(50));
        let senders: Vec<_> = (0..4u64)
            .map(|s| HeartbeatSender::spawn(s, interval, monitor.local_addr()).unwrap())
            .collect();
        assert!(wait_for(
            || monitor.stats().live() == 4,
            Duration::from_secs(3)
        ));
        let stats = monitor.stats();
        assert_eq!(stats.streams(), 4);
        assert_eq!(stats.suspect(), 0);
        assert!(stats.received() >= 4);
        assert_eq!(stats.dropped(), 0);
        // Default config: four shards, one stream each under modulo
        // routing of ids 0..4.
        assert_eq!(stats.shards.len(), 4);
        assert!(stats.shards.iter().all(|s| s.streams == 1), "{stats:?}");
        // Each stream published its Suspect→Trust transition.
        assert_eq!(stats.shards.iter().map(|s| s.to_trust).sum::<u64>(), 4);
        drop(senders);
    }
}
